"""Figure 20 (Appendix D.3): merge time with coarser pre-aggregation.

Rebuilds the Figure 4 merge measurement with cells of 2000 elements (and a
Gaussian workload at 10000 per cell).  Reproduction target: the moments
sketch's per-merge time is unchanged by cell size (its state is
data-independent) while the capacity-bound summaries get slower because
their per-cell summaries are now full-sized.
"""

import numpy as np
import pytest

from repro.summaries import (
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    SamplingSummary,
    TDigestSummary,
)
from repro.workload import build_cells, time_merges

from _harness import print_table, run_once, scaled

FACTORIES = {
    "M-Sketch": lambda: MomentsSummary(k=10),
    "Merge12": lambda: Merge12Summary(k=32, seed=0),
    "GK": lambda: GKSummary(epsilon=1 / 50),
    "T-Digest": lambda: TDigestSummary(delta=100.0),
    "Sampling": lambda: SamplingSummary(capacity=1000, seed=0),
}


def _per_merge_times(data, cell_size):
    return {name: time_merges(build_cells(data, factory, cell_size=cell_size))
            for name, factory in FACTORIES.items()}


def test_fig20_cell_size_2000(benchmark, milan_data):
    data = milan_data[:scaled(80_000)]

    def experiment():
        small = _per_merge_times(data, 200)
        large = _per_merge_times(data, 2000)
        return small, large

    small, large = run_once(benchmark, experiment)
    rows = [[name, small[name] * 1e6, large[name] * 1e6]
            for name in FACTORIES]
    print_table("Figure 20 (milan): per-merge time (us) by cell size",
                ["summary", "cells of 200", "cells of 2000"], rows)

    # M-Sketch per-merge cost is cell-size independent (within noise)...
    assert large["M-Sketch"] < small["M-Sketch"] * 3
    # ...and remains the fastest at the coarser pre-aggregation.
    others = [v for k, v in large.items() if k != "M-Sketch"]
    assert large["M-Sketch"] < min(others)


def test_fig20_gaussian_10000(benchmark):
    rng = np.random.default_rng(0)
    data = rng.normal(0, 1, scaled(200_000))

    def experiment():
        return _per_merge_times(data, 10_000)

    times = run_once(benchmark, experiment)
    rows = [[name, value * 1e6] for name, value in times.items()]
    print_table("Figure 20 (gaussian): per-merge time (us), cells of 10000",
                ["summary", "per-merge (us)"], rows)
    others = [v for k, v in times.items() if k != "M-Sketch"]
    assert times["M-Sketch"] < min(others)
