"""Batched vs per-sketch max-entropy group solves (repro.core.batch_solver).

Measures what the batched estimation layer buys on the paper's dominant
high-cardinality cost (Figure 5 / Section 5.2): a group-by over N packed
cells pays either N scalar Newton solves (``batched=False``) or one
stacked solve for all groups (``batched=True``, the default everywhere).
The run also asserts the layer's correctness contract:

* quantile estimates within 1e-6 (relative) of the scalar path,
* top-N rankings bit-identical between the two paths,
* threshold-cascade counts *and per-group deciding stages* bit-identical,
* the batched solve reported once (``solve_calls == 1``), not per cell.

Usage::

    python benchmarks/bench_group_solve.py                   # gate at 1024
    python benchmarks/bench_group_solve.py --quick           # CI smoke
    python benchmarks/bench_group_solve.py --full            # adds N=4096
    python benchmarks/bench_group_solve.py --require-speedup 3

Exits non-zero when the gate size misses the required speedup or any
decision/estimate check fails.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import PackedStoreBackend, QueryService, QuerySpec, qkey  # noqa: E402
from repro.workload import build_packed_cells, run_group_query  # noqa: E402

CELL_SIZE = 200
GATE_CELLS = 1024


def _services(cells, n):
    keys = [(int(i),) for i in range(cells.num_cells)]
    backend = PackedStoreBackend(cells.store, keys=keys, dimensions=("cell",),
                                 config=cells.config,
                                 rows=np.arange(n))
    return (QueryService(cells=backend, batched=True),
            QueryService(cells=backend, batched=False))


def check_decisions(cells, n: int) -> list[str]:
    """Bit-exactness of decisions + 1e-6 estimates, batched vs scalar."""
    failures: list[str] = []
    batched, scalar = _services(cells, n)

    group = QuerySpec(kind="group_by", quantiles=(0.5, 0.99),
                      group_dimension="cell")
    rb, rs = batched.execute(group), scalar.execute(group)
    if rb.timings.solve_route != "batched" or rb.timings.solve_calls != 1:
        failures.append(
            f"group_by must report one batched solve, got route="
            f"{rb.timings.solve_route!r} calls={rb.timings.solve_calls}")
    rel = max(abs(rb.groups[g][key] - rs.groups[g][key])
              / max(abs(rs.groups[g][key]), 1e-300)
              for g in rs.groups for key in (qkey(0.5), qkey(0.99)))
    if rel > 1e-6:
        failures.append(f"group_by estimates diverge: rel err {rel:.3g} > 1e-6")

    top = QuerySpec(kind="top_n", quantiles=(0.99,), n=10,
                    group_dimension="cell")
    tb, ts = batched.execute(top), scalar.execute(top)
    if [value for value, _ in tb.top] != [value for value, _ in ts.top]:
        failures.append("top_n ranking differs between batched and scalar")

    data = cells.data[: n * CELL_SIZE]
    for t in np.quantile(data, (0.5, 0.95, 0.999)):
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(float(t),), group_dimension="cell")
        cb, cs = batched.execute(spec), scalar.execute(spec)
        if cb.value != cs.value:
            failures.append(f"threshold count differs at t={t:.4g}: "
                            f"{cb.value} vs {cs.value}")
        stages_b = {g: o[qkey(float(t))]["stage"] for g, o in cb.groups.items()}
        stages_s = {g: o[qkey(float(t))]["stage"] for g, o in cs.groups.items()}
        if stages_b != stages_s:
            failures.append(f"cascade deciding stages differ at t={t:.4g}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: N=256 and the 1024-cell gate only")
    parser.add_argument("--full", action="store_true",
                        help="also run N=64 and N=4096")
    parser.add_argument("--require-speedup", type=float, default=3.0,
                        help="minimum batched-vs-scalar solve speedup at "
                             f"{GATE_CELLS} cells (default 3)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per (size, path); the best run "
                             "counts, shielding the gate from transient "
                             "scheduler noise on shared CI runners")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.full:
        sizes = (64, 256, 1024, 4096)
    elif args.quick:
        sizes = (256, 1024)
    else:
        sizes = (64, 256, 1024)
    rng = np.random.default_rng(args.seed)
    data = rng.lognormal(1.0, 1.0, max(sizes) * CELL_SIZE)
    cells = build_packed_cells(data, cell_size=CELL_SIZE, k=10)
    # Warm both paths (grid/coefficient caches) before timing.
    run_group_query(cells, q=0.99, num_cells=64, batched=True)
    run_group_query(cells, q=0.99, num_cells=64, batched=False)

    print(f"{'cells':>6} {'batched_s':>10} {'scalar_s':>10} {'speedup':>8} "
          f"{'solve_calls':>12}")
    gate_speedup = None
    repeats = max(args.repeats, 1)
    for n in sizes:
        batched = min(
            (run_group_query(cells, q=0.99, num_cells=n, batched=True)
             for _ in range(repeats)), key=lambda t: t.solve_seconds)
        scalar = min(
            (run_group_query(cells, q=0.99, num_cells=n, batched=False)
             for _ in range(repeats)), key=lambda t: t.solve_seconds)
        speedup = (scalar.solve_seconds / batched.solve_seconds
                   if batched.solve_seconds else float("inf"))
        if n == GATE_CELLS:
            gate_speedup = speedup
        print(f"{n:>6} {batched.solve_seconds:>10.4f} "
              f"{scalar.solve_seconds:>10.4f} {speedup:>7.2f}x "
              f"{batched.solve_calls:>12}")

    failures = check_decisions(cells, min(256, max(sizes)))
    if gate_speedup is not None and gate_speedup < args.require_speedup:
        failures.append(
            f"batched group solve at {GATE_CELLS} cells is only "
            f"{gate_speedup:.2f}x the scalar path "
            f"(required >= {args.require_speedup}x)")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(f"OK: >= {args.require_speedup}x at {GATE_CELLS} cells; "
          "decisions bit-identical; estimates within 1e-6")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
