"""Figures 21-22 (Appendix D.4): the production telemetry workload.

Synthesizes the Microsoft-like workload (variable-size heterogeneous
cells, long-tailed integer values), prints the Figure 21 shape summary,
then measures per-merge time and merged accuracy per summary (Figure 22).
Reproduction targets: the moments sketch stays fastest-to-merge and
reaches eps_avg < 0.01 with integer rounding, while GK's tuple count grows
markedly when merging heterogeneous cells.
"""

import numpy as np

from repro.datasets import all_values, generate_cells
from repro.summaries import (
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    StreamingHistogramSummary,
)
from repro.workload import PHI_GRID, merge_cells, quantile_errors

from _harness import print_table, run_once, scaled

FACTORIES = {
    "M-Sketch": lambda: MomentsSummary(k=10),
    "Merge12": lambda: Merge12Summary(k=32, seed=0),
    "RandomW": lambda: RandomSummary(buffer_size=256, seed=0),
    "GK": lambda: GKSummary(epsilon=1 / 50),
    "S-Hist": lambda: StreamingHistogramSummary(max_bins=100),
}


def test_fig21_22_production_workload(benchmark):
    cells = generate_cells(num_cells=max(scaled(2_000) // 1, 500), seed=0,
                           mean_cell_size=100.0)
    everything = all_values(cells)
    data_sorted = np.sort(everything)
    sizes = np.asarray([c.values.size for c in cells])

    def experiment():
        import time
        rows = []
        metrics = {}
        for name, factory in FACTORIES.items():
            summaries = []
            for cell in cells:
                summary = factory()
                summary.accumulate(cell.values)
                summaries.append(summary)
            start = time.perf_counter()
            merged = merge_cells(summaries)
            merge_seconds = time.perf_counter() - start
            estimates = np.round(merged.quantiles(PHI_GRID))
            error = float(np.mean(quantile_errors(data_sorted, estimates,
                                                  PHI_GRID)))
            per_merge = merge_seconds / (len(summaries) - 1)
            rows.append([name, per_merge * 1e6, error, merged.size_bytes()])
            metrics[name] = (per_merge, error, merged.size_bytes())
        return rows, metrics

    rows, metrics = run_once(benchmark, experiment)
    print(f"\nFigure 21 shape: {len(cells)} cells, sizes min={sizes.min()} "
          f"mean={sizes.mean():.0f} max={sizes.max()}, "
          f"values in [{everything.min():.0f}, {everything.max():.0f}]")
    print_table("Figure 22: production workload, merge time and accuracy",
                ["summary", "per-merge (us)", "eps_avg", "merged size (B)"],
                rows)

    per_merge_ms, error_ms, _ = metrics["M-Sketch"]
    assert error_ms < 0.01
    assert per_merge_ms < min(v[0] for k, v in metrics.items() if k != "M-Sketch")
    # GK grows on heterogeneous merges (the "not strictly mergeable" point):
    # its merged footprint exceeds a fresh pointwise summary's.  The paper
    # observes dramatic growth at 400k cells; at laptop cell counts the
    # effect is present but smaller.
    pointwise = GKSummary.from_data(everything, epsilon=1 / 50)
    assert metrics["GK"][2] > 1.25 * pointwise.size_bytes()
