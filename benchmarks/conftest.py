"""pytest plumbing for the benchmark suite.

Fixtures and helpers live in :mod:`_harness`; importing them here registers
the fixtures with pytest.  Keeping the real content out of ``conftest.py``
lets benchmark modules do ``from _harness import ...`` without colliding
with the test suite's own conftest when both directories run in one pytest
invocation.
"""

from _harness import (  # noqa: F401
    exponential_data,
    hepmass_data,
    milan_data,
    phi_grid,
)
