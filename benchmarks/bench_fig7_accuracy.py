"""Figure 7: accuracy vs summary size on all six evaluation datasets.

For each dataset and summary, sweeps the size parameter and reports the
merged-aggregation eps_avg.  Reproduction targets: the moments sketch
reaches eps_avg <= 0.015 under ~200 bytes on every dataset except the
heavily discretized retail (where estimates are integer-rounded as in the
paper), and EW-Hist degrades badly on the long-tailed milan/retail.
"""

import numpy as np

from repro.datasets import EVALUATION_DATASETS, load
from repro.summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)
from repro.workload import PHI_GRID, build_cells, merge_cells, quantile_errors

from _harness import print_table, run_once, scaled

LADDERS = {
    "M-Sketch": [("k=4", lambda: MomentsSummary(k=4)),
                 ("k=10", lambda: MomentsSummary(k=10))],
    "Merge12": [("k=16", lambda: Merge12Summary(k=16, seed=0)),
                ("k=64", lambda: Merge12Summary(k=64, seed=0))],
    "RandomW": [("b=64", lambda: RandomSummary(buffer_size=64, seed=0)),
                ("b=256", lambda: RandomSummary(buffer_size=256, seed=0))],
    "GK": [("e=1/20", lambda: GKSummary(epsilon=1 / 20)),
           ("e=1/80", lambda: GKSummary(epsilon=1 / 80))],
    "T-Digest": [("d=20", lambda: TDigestSummary(delta=20.0)),
                 ("d=100", lambda: TDigestSummary(delta=100.0))],
    "Sampling": [("s=250", lambda: SamplingSummary(capacity=250, seed=0)),
                 ("s=2000", lambda: SamplingSummary(capacity=2000, seed=0))],
    "S-Hist": [("b=32", lambda: StreamingHistogramSummary(max_bins=32)),
               ("b=256", lambda: StreamingHistogramSummary(max_bins=256))],
    "EW-Hist": [("b=32", lambda: EquiWidthHistogramSummary(max_bins=32)),
                ("b=256", lambda: EquiWidthHistogramSummary(max_bins=256))],
}

INTEGER_DATASETS = {"retail"}


def _accuracy(dataset: str):
    data = np.asarray(load(dataset, scaled(40_000)))
    data_sorted = np.sort(data)
    results = {}
    for name, ladder in LADDERS.items():
        for label, factory in ladder:
            merged = merge_cells(build_cells(data, factory, cell_size=200).summaries)
            estimates = merged.quantiles(PHI_GRID)
            if dataset in INTEGER_DATASETS:
                estimates = np.round(estimates)
            error = float(np.mean(quantile_errors(data_sorted, estimates, PHI_GRID)))
            results[(name, label)] = (error, merged.size_bytes())
    return results


def test_fig7_accuracy_all_datasets(benchmark):
    def experiment():
        return {dataset: _accuracy(dataset) for dataset in EVALUATION_DATASETS}

    all_results = run_once(benchmark, experiment)
    for dataset, results in all_results.items():
        rows = [[name, label, size, error]
                for (name, label), (error, size) in results.items()]
        print_table(f"Figure 7 ({dataset}): eps_avg by summary size",
                    ["summary", "param", "size (B)", "eps_avg"], rows)

    # Headline: M-Sketch k=10 achieves <= 0.015 in < 200 bytes everywhere
    # except the discretized retail dataset.
    for dataset in EVALUATION_DATASETS:
        error, size = all_results[dataset][("M-Sketch", "k=10")]
        assert size < 200
        budget = 0.04 if dataset in INTEGER_DATASETS else 0.015
        assert error <= budget, f"{dataset}: {error}"

    # EW-Hist collapses on the long-tailed datasets while M-Sketch holds.
    for dataset in ("milan", "retail"):
        ew_error, _ = all_results[dataset][("EW-Hist", "b=256")]
        ms_error, _ = all_results[dataset][("M-Sketch", "k=10")]
        assert ew_error > 3 * ms_error
