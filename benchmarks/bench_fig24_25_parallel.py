"""Figures 24-25 (Appendix F): parallel merge scaling.

Shards pre-aggregated cells across worker threads (strong scaling: fixed
total work; weak scaling: fixed work per thread).  Reproduction targets:
the moments sketch stays faster than Merge12 at every thread count, and
weak scaling holds throughput roughly flat per thread.

Caveat recorded in EXPERIMENTS.md: Python threads only overlap inside
numpy kernels, so absolute speedups are muted compared to the paper's
Java measurements; orderings are the reproduction target.
"""

import numpy as np

from repro.summaries import Merge12Summary, MomentsSummary
from repro.workload import build_cells, strong_scaling, weak_scaling

from _harness import print_table, run_once, scaled

THREADS = (1, 2, 4, 8)


def test_fig24_strong_scaling(benchmark, milan_data):
    data = milan_data[:scaled(100_000)]
    moments = build_cells(data, lambda: MomentsSummary(k=10), 200).summaries
    merge12 = build_cells(data, lambda: Merge12Summary(k=32, seed=0), 200).summaries

    def experiment():
        return {
            "M-Sketch": strong_scaling(moments, THREADS),
            "Merge12": strong_scaling(merge12, THREADS),
        }

    results = run_once(benchmark, experiment)
    rows = [[name] + [r.merges_per_second for r in series]
            for name, series in results.items()]
    print_table("Figure 24: strong scaling, merges/s by thread count",
                ["summary"] + [f"{t} thr" for t in THREADS], rows)
    # Moments cells take the packed vectorized route; report its speedup
    # over the serial object-loop baseline at each thread count.
    packed = results["M-Sketch"]
    print_table("Figure 24b: M-Sketch packed route vs serial loop",
                ["threads", "route", "seconds", "serial_s", "speedup"],
                [[r.threads, r.route, r.seconds, r.serial_seconds,
                  r.speedup] for r in packed])
    assert all(r.route == "packed" for r in packed)
    assert all(r.speedup is not None for r in packed)
    # One vectorized reduction must beat the serial object loop outright;
    # multi-thread counts additionally pay pool overhead, so they are
    # reported but not gated at this laptop-scale cell count.
    assert packed[0].speedup > 1.0
    for i, threads in enumerate(THREADS):
        assert (results["M-Sketch"][i].merges_per_second
                > results["Merge12"][i].merges_per_second), threads


def test_fig25_weak_scaling(benchmark, milan_data):
    data = milan_data[:scaled(100_000)]
    moments = build_cells(data, lambda: MomentsSummary(k=10), 200).summaries
    per_thread = max(len(moments), 200)

    def experiment():
        return weak_scaling(moments, THREADS, merges_per_thread=per_thread)

    series = run_once(benchmark, experiment)
    rows = [[r.threads, r.num_merges, r.merges_per_second, r.route,
             r.speedup] for r in series]
    print_table("Figure 25: weak scaling (M-Sketch)",
                ["threads", "merges", "merges/s", "route", "speedup"], rows)
    assert all(r.route == "packed" for r in series)
    # Moments-sketch merges are microsecond-scale Python calls, so the GIL
    # caps parallel speedup well below the paper's Java scaling; the weak-
    # scaling property asserted here is that throughput does not collapse
    # as total work grows with the thread count.
    assert series[-1].merges_per_second > series[0].merges_per_second / 10
