"""Table 2: smallest summary parameters achieving eps_avg <= 0.01.

Reruns the paper's calibration on the milan and hepmass stand-ins: walk
each summary's size ladder until the merged-cells accuracy target is met,
reporting the chosen parameter and the observed summary size.
"""

import numpy as np

from repro.workload import calibrate_all

from _harness import print_table, run_once, scaled

#: Summaries calibrated here.  The paper's Table 2 lists all eight; the
#: slowest ladder rungs dominate runtime, so the histogram ladders are
#: capped by the default parameter lists in workload.calibrate.
NAMES = ("M-Sketch", "Merge12", "RandomW", "GK", "T-Digest",
         "Sampling", "S-Hist", "EW-Hist")


def _calibrate(data):
    results = calibrate_all(np.asarray(data), target=0.01, cell_size=200,
                            names=NAMES)
    return [[name,
             result.parameter_label,
             result.size_bytes,
             result.mean_error,
             "yes" if result.achieved_target else "NO (best shown)"]
            for name, result in results.items()]


def test_table2_milan(benchmark, milan_data):
    rows = run_once(benchmark, lambda: _calibrate(milan_data[:scaled(40_000)]))
    print_table("Table 2 (milan): smallest parameters for eps_avg <= .01",
                ["summary", "param", "size (B)", "eps_avg", "met target"], rows)
    moments_row = next(r for r in rows if r[0] == "M-Sketch")
    assert moments_row[2] < 500  # the paper's 200-byte headline regime


def test_table2_hepmass(benchmark, hepmass_data):
    rows = run_once(benchmark, lambda: _calibrate(hepmass_data[:scaled(40_000)]))
    print_table("Table 2 (hepmass): smallest parameters for eps_avg <= .01",
                ["summary", "param", "size (B)", "eps_avg", "met target"], rows)
    moments_row = next(r for r in rows if r[0] == "M-Sketch")
    assert moments_row[4] == "yes"
