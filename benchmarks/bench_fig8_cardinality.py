"""Figure 8: max-entropy accuracy on low-cardinality (discretized) data.

Sweeps datasets of n uniformly spaced point masses on [-1, 1].  The
reproduction targets: the solver fails to converge below ~5 distinct
values, error is elevated at low cardinality, and comparison summaries
(designed for discrete data) are unaffected.
"""

import numpy as np

from repro.core import ConvergenceError, MomentsSketch, QuantileEstimator
from repro.datasets import uniform_discrete
from repro.summaries import GKSummary, Merge12Summary
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled

CARDINALITIES = (2, 3, 4, 8, 16, 64, 256, 1024)


def _cardinality_sweep():
    rows = []
    converge_status = {}
    errors = {}
    for cardinality in CARDINALITIES:
        data = uniform_discrete(scaled(50_000), cardinality, seed=7)
        data_sorted = np.sort(data)
        sketch = MomentsSketch.from_data(data, k=10)
        try:
            estimator = QuantileEstimator.fit(sketch)
            estimates = estimator.quantiles(PHI_GRID)
            error = float(np.mean(quantile_errors(data_sorted, estimates, PHI_GRID)))
            status = "ok"
        except ConvergenceError:
            error = float("nan")
            status = "no convergence"
        gk = GKSummary.from_data(data, epsilon=1 / 50)
        gk_error = float(np.mean(quantile_errors(
            data_sorted, gk.quantiles(PHI_GRID), PHI_GRID)))
        m12 = Merge12Summary.from_data(data, k=32, seed=0)
        m12_error = float(np.mean(quantile_errors(
            data_sorted, m12.quantiles(PHI_GRID), PHI_GRID)))
        converge_status[cardinality] = status
        errors[cardinality] = (error, gk_error, m12_error)
        rows.append([cardinality, status, error, gk_error, m12_error])
    return rows, converge_status, errors


def test_fig8_cardinality(benchmark):
    rows, status, errors = run_once(benchmark, _cardinality_sweep)
    print_table("Figure 8: maximum entropy vs dataset cardinality",
                ["cardinality", "M-Sketch status", "M-Sketch eps",
                 "GK eps", "Merge12 eps"], rows)

    # Paper: fails to converge for cardinality < 5.
    assert status[2] == "no convergence"
    assert status[3] == "no convergence"
    # Converges and is accurate once the support is rich enough.
    assert status[256] == "ok" and status[1024] == "ok"
    assert errors[1024][0] < 0.01
    # Comparison summaries handle discrete data at every cardinality.
    assert all(errors[c][1] < 0.05 for c in CARDINALITIES)
