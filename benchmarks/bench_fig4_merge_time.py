"""Figure 4: per-merge latency vs summary size.

pytest-benchmark measures the merge fold per summary type and size setting
on the milan, hepmass, and exponential stand-ins.  Reproduction target:
M-Sketch per-merge time is flat in its size range and the lowest among
summaries of comparable accuracy.
"""

import numpy as np
import pytest

from repro.summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)
from repro.workload import build_cells, merge_cells

from _harness import scaled

CASES = [
    ("M-Sketch", "k=4", lambda: MomentsSummary(k=4)),
    ("M-Sketch", "k=10", lambda: MomentsSummary(k=10)),
    ("M-Sketch", "k=14", lambda: MomentsSummary(k=14)),
    ("Merge12", "k=16", lambda: Merge12Summary(k=16, seed=0)),
    ("Merge12", "k=64", lambda: Merge12Summary(k=64, seed=0)),
    ("RandomW", "b=64", lambda: RandomSummary(buffer_size=64, seed=0)),
    ("RandomW", "b=256", lambda: RandomSummary(buffer_size=256, seed=0)),
    ("GK", "eps=1/50", lambda: GKSummary(epsilon=1 / 50)),
    ("T-Digest", "d=100", lambda: TDigestSummary(delta=100.0)),
    ("Sampling", "s=1000", lambda: SamplingSummary(capacity=1000, seed=0)),
    ("S-Hist", "b=100", lambda: StreamingHistogramSummary(max_bins=100)),
    ("EW-Hist", "b=100", lambda: EquiWidthHistogramSummary(max_bins=100)),
]

DATASETS = ["milan", "hepmass", "exponential"]


@pytest.fixture(scope="module")
def cell_sets(milan_data, hepmass_data, exponential_data):
    data = {"milan": milan_data, "hepmass": hepmass_data,
            "exponential": exponential_data}
    sets = {}
    for dataset in DATASETS:
        values = np.asarray(data[dataset])[:scaled(20_000)]
        for name, label, factory in CASES:
            sets[(dataset, name, label)] = build_cells(
                values, factory, cell_size=200).summaries
    return sets


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("name,label",
                         [(n, lb) for n, lb, _ in CASES],
                         ids=[f"{n}-{lb}" for n, lb, _ in CASES])
def test_fig4_merge_latency(benchmark, cell_sets, dataset, name, label):
    summaries = cell_sets[(dataset, name, label)]
    result = benchmark(merge_cells, summaries)
    assert result.count == sum(s.count for s in summaries)
    benchmark.extra_info["per_merge_us"] = (
        benchmark.stats["mean"] / max(len(summaries) - 1, 1) * 1e6)
    benchmark.extra_info["size_bytes"] = result.size_bytes()


def test_fig4_shape_moments_fastest(benchmark, milan_data):
    """Shape assertion: at Table-2 accuracy parameters, the moments sketch
    merges faster than every alternative on milan."""
    values = milan_data[:scaled(20_000)]
    def measure(factory):
        import time
        summaries = build_cells(values, factory, cell_size=200).summaries
        start = time.perf_counter()
        merge_cells(summaries)
        return (time.perf_counter() - start) / (len(summaries) - 1)

    def experiment():
        return {name: measure(factory) for name, _, factory in CASES
                if name in ("M-Sketch", "Merge12", "RandomW", "GK", "T-Digest")}

    per_merge = benchmark.pedantic(experiment, rounds=1, iterations=1)
    moments = per_merge["M-Sketch"]
    others = [v for k, v in per_merge.items() if k != "M-Sketch"]
    assert moments < min(others)
