"""Figure 23 (Appendix E): guaranteed worst-case error bounds.

For each summary, the *certified* error it can promise for its estimates
(RTT-based bound for the moments sketch, each summary's own guarantee
otherwise) on three datasets.  Reproduction targets: bounds are much
looser than observed error, no summary certifies <= 0.01 at ~100-200
bytes, and the (merge-free) GK offers the tightest guarantees, exactly as
the paper concludes.
"""

import numpy as np

from repro.datasets import load
from repro.summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    TDigestSummary,
)
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled

FACTORIES = {
    "M-Sketch": lambda: MomentsSummary(k=10),
    "Merge12": lambda: Merge12Summary(k=32, seed=0),
    "RandomW": lambda: RandomSummary(buffer_size=256, seed=0),
    "GK": lambda: GKSummary(epsilon=1 / 50),
    "T-Digest": lambda: TDigestSummary(delta=100.0),
    "Sampling": lambda: SamplingSummary(capacity=1000, seed=0),
    "EW-Hist": lambda: EquiWidthHistogramSummary(max_bins=100),
}

DATASETS = ("milan", "hepmass", "exponential")
BOUND_PHIS = np.linspace(0.1, 0.9, 5)


def _bounds_for(dataset):
    data = np.asarray(load(dataset, scaled(40_000)))
    data_sorted = np.sort(data)
    results = {}
    for name, factory in FACTORIES.items():
        summary = factory()
        summary.accumulate(data)
        bounds = [summary.error_upper_bound(float(phi)) for phi in BOUND_PHIS]
        bound = float(np.mean([b for b in bounds if b is not None]))
        observed = float(np.mean(quantile_errors(
            data_sorted, summary.quantiles(PHI_GRID), PHI_GRID)))
        results[name] = (bound, observed, summary.size_bytes())
    return results


def test_fig23_error_upper_bounds(benchmark):
    all_results = run_once(
        benchmark, lambda: {d: _bounds_for(d) for d in DATASETS})
    for dataset, results in all_results.items():
        rows = [[name, bound, observed, size]
                for name, (bound, observed, size) in results.items()]
        print_table(f"Figure 23 ({dataset}): certified vs observed error",
                    ["summary", "certified bound", "observed eps_avg",
                     "size (B)"], rows)

    for dataset, results in all_results.items():
        for name, (bound, observed, _) in results.items():
            # Certified bounds must dominate observed error (with small
            # probabilistic slack for the randomized summaries).
            slack = 0.02 if name in ("RandomW", "Sampling") else 1e-6
            assert observed <= bound + slack, (dataset, name)
        # Nobody certifies 1% at these sizes (the paper's App. E takeaway).
        moments_bound = results["M-Sketch"][0]
        assert moments_bound > 0.01
