"""Table 1: dataset characteristics.

Prints the generated datasets' summary statistics next to the published
values, documenting how faithful the synthetic stand-ins are.
"""

import numpy as np

from repro.datasets import EVALUATION_DATASETS, load, spec, summary_statistics

from _harness import print_table, run_once, scaled


def test_table1_dataset_characteristics(benchmark):
    def experiment():
        rows = []
        for name in EVALUATION_DATASETS:
            data = load(name, scaled(100_000))
            stats = summary_statistics(np.asarray(data))
            published = spec(name)
            rows.append([
                name,
                f"{stats['min']:.3g} / {published.paper_min:.3g}",
                f"{stats['max']:.3g} / {published.paper_max:.3g}",
                f"{stats['mean']:.3g} / {published.paper_mean:.3g}",
                f"{stats['stddev']:.3g} / {published.paper_stddev:.3g}",
                f"{stats['skew']:.3g} / {published.paper_skew:.3g}",
            ])
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Table 1: dataset characteristics (generated / paper)",
                ["dataset", "min", "max", "mean", "stddev", "skew"], rows)
    assert len(rows) == len(EVALUATION_DATASETS)
