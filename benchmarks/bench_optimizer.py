"""Multi-query optimizer vs cold execution on a Zipf-skewed workload.

Production dashboards re-issue the same handful of queries; the
optimizer's response/partial tiers should absorb the repeats while
ingest flushes keep invalidating the hot keys.  This bench replays one
Zipf-skewed query sequence (with interleaved ingest flushes) against
two identically-loaded cubes — one service cold, one with
:class:`~repro.optimizer.Optimizer` — and asserts:

* every optimized payload equals the cold payload bit for bit
  (estimates, merged moments, counts, group maps), and
* the optimized arm is at least ``--min-speedup`` times faster.

Usage::

    python benchmarks/bench_optimizer.py           # full size
    python benchmarks/bench_optimizer.py --quick   # CI smoke
    python benchmarks/bench_optimizer.py --advice-out advisor.json

Exits non-zero on any payload mismatch or a missed speedup gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.ingest import IngestSession  # noqa: E402
from repro.optimizer import Optimizer  # noqa: E402
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402

ZIPF_S = 1.3


def build_side(rows: int, cells: int, k: int, seed: int):
    """One (cube, session) pair preloaded with the shared dataset."""
    rng = np.random.default_rng(seed)
    cube = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=k))
    session = IngestSession(cube, auto_flush=False)
    session.append_columns(rng.lognormal(1.0, 1.2, rows),
                           dims=[rng.integers(0, cells, rows)])
    session.flush()
    return cube, session


def spec_pool(cells: int, tenants: int) -> list[QuerySpec]:
    """Distinct dashboard-style specs; rank 0 is the hottest."""
    pool = [
        QuerySpec(kind="quantile", quantiles=(0.5, 0.95, 0.99),
                  report_moments=True),
        QuerySpec(kind="group_by", quantiles=(0.99,),
                  group_dimension="cell"),
        QuerySpec(kind="top_n", quantiles=(0.95,),
                  group_dimension="cell", n=5),
        QuerySpec(kind="cdf", thresholds=(2.0, 10.0)),
    ]
    for tenant in range(tenants):
        pool.append(QuerySpec(kind="quantile", quantiles=(0.9,),
                              filters={"cell": tenant % cells},
                              report_moments=True))
    return pool


def schedule(pool_size: int, queries: int, flush_every: int,
             seed: int) -> list[int]:
    """Zipf-skewed pool indices; ``-1`` marks an ingest flush."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, pool_size + 1, dtype=float)
    weights = ranks ** -ZIPF_S
    weights /= weights.sum()
    # Pool order is rank order: the expensive dashboard queries (full
    # roll-up, group-by, top-n) are also the most re-issued ones.
    plan: list[int] = []
    for index in range(queries):
        if flush_every and index and index % flush_every == 0:
            plan.append(-1)
        plan.append(int(rng.choice(pool_size, p=weights)))
    return plan


def run_arm(service: QueryService, session: IngestSession,
            pool: list[QuerySpec], plan: list[int], cells: int,
            flush_rows: int):
    """Replay the plan; returns (responses, seconds).

    Flush batches are derived from the flush ordinal only, so both arms
    ingest bit-identical rows at the same points in the sequence.
    """
    responses = []
    flushes = 0
    start = time.perf_counter()
    for op in plan:
        if op < 0:
            flushes += 1
            rng = np.random.default_rng(10_000 + flushes)
            session.append_columns(
                rng.lognormal(1.0, 1.2, flush_rows),
                dims=[rng.integers(0, cells, flush_rows)])
            session.flush()
            continue
        responses.append(service.execute(pool[op]))
    return responses, time.perf_counter() - start


def payload_mismatches(cold, cached) -> int:
    count = 0
    for one, two in zip(cold, cached):
        same = (one.count == two.count
                and one.estimates == two.estimates
                and one.moments == two.moments
                and one.groups == two.groups)
        count += 0 if same else 1
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller cube, fewer queries")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail below this cold/optimized ratio "
                             "(default 3.0)")
    parser.add_argument("--advice-out", default=None, metavar="PATH",
                        help="write the advisor ranking and optimizer "
                             "stats as JSON (CI artifact)")
    args = parser.parse_args(argv)

    rows = 40_000 if args.quick else 200_000
    cells = 256 if args.quick else 1_024
    queries = 120 if args.quick else 400
    flush_every = 25
    flush_rows = 256
    tenants = 8

    pool = spec_pool(cells, tenants)
    plan = schedule(len(pool), queries, flush_every, seed=3)
    flushes = sum(1 for op in plan if op < 0)
    print(f"cube: {rows} rows / {cells} cells; pool of {len(pool)} specs, "
          f"{queries} Zipf(s={ZIPF_S}) queries, {flushes} interleaved "
          f"flushes")

    cold_cube, cold_session = build_side(rows, cells, k=10, seed=1)
    cold_service = QueryService(cube=cold_cube)
    cold_responses, cold_seconds = run_arm(
        cold_service, cold_session, pool, plan, cells, flush_rows)

    opt_cube, opt_session = build_side(rows, cells, k=10, seed=1)
    optimizer = Optimizer()
    opt_service = QueryService(cube=opt_cube, optimizer=optimizer)
    opt_responses, opt_seconds = run_arm(
        opt_service, opt_session, pool, plan, cells, flush_rows)

    ok = True
    mismatches = payload_mismatches(cold_responses, opt_responses)
    if mismatches:
        print(f"FAIL: {mismatches}/{len(cold_responses)} optimized "
              "payloads differ from cold execution")
        ok = False

    stats = optimizer.stats()
    cache = stats["cache"]
    speedup = cold_seconds / opt_seconds if opt_seconds else float("inf")
    print(f"{'queries':>8} {'cold_s':>9} {'opt_s':>9} {'speedup':>8} "
          f"{'hit_rate':>9} {'stale':>6}")
    print(f"{len(cold_responses):>8} {cold_seconds:>9.3f} "
          f"{opt_seconds:>9.3f} {speedup:>7.1f}x "
          f"{cache['hit_rate']:>9.2f} {cache['stale_drops']:>6}")

    if not cache["hits"]:
        print("FAIL: the optimizer cache never hit — the workload is "
              "supposed to be repeat-heavy")
        ok = False
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.1f}x gate")
        ok = False

    if args.advice_out:
        advice = [{key: value for key, value in item.items()
                   if key != "_stats"}
                  for item in optimizer.advisor.rank()]
        payload = {"speedup": speedup, "cold_seconds": cold_seconds,
                   "optimized_seconds": opt_seconds,
                   "queries": len(cold_responses), "flushes": flushes,
                   "stats": stats, "advice": advice}
        path = pathlib.Path(args.advice_out)
        path.write_text(json.dumps(payload, indent=2, default=float) + "\n",
                        encoding="utf-8")
        print(f"advisor output -> {path}")

    if not ok:
        return 1
    print(f"OK: {len(cold_responses)} payloads bit-identical; "
          f"{speedup:.1f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
