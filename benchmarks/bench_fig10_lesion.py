"""Figure 10: lesion study of quantile estimators.

All estimators consume the same k = 10 moments (log-only on milan,
standard-only on hepmass, as in the paper) and report accuracy plus
estimation time.  Reproduction targets: the max-entropy family is the most
accurate; our optimized solver is the fastest max-entropy solve, beating
the naive-integration Newton by orders of magnitude and the generic
convex-solver formulation substantially.
"""

import numpy as np

from repro.core import MomentsSketch
from repro.estimators import LESION_ESTIMATORS, build_problem, make_estimator
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled


def _lesion(data, use_log):
    data = np.asarray(data)
    data_sorted = np.sort(data)
    sketch = MomentsSketch.from_data(data, k=10)
    problem = build_problem(sketch, k=10, use_log=use_log)
    rows = []
    metrics = {}
    for name in LESION_ESTIMATORS:
        estimator = make_estimator(name)
        if hasattr(estimator, "bind"):
            estimator.bind(sketch)
        estimates, seconds = estimator.timed(problem, PHI_GRID)
        error = float(np.mean(quantile_errors(data_sorted, estimates, PHI_GRID)))
        rows.append([name, error * 100, seconds * 1e3])
        metrics[name] = (error, seconds)
    return rows, metrics


def test_fig10_milan(benchmark, milan_data):
    rows, metrics = run_once(
        benchmark, lambda: _lesion(milan_data[:scaled(100_000)], use_log=True))
    print_table("Figure 10 (milan, log moments only)",
                ["estimator", "eps_avg (%)", "t_est (ms)"], rows)
    _assert_shape(metrics)


def test_fig10_hepmass(benchmark, hepmass_data):
    rows, metrics = run_once(
        benchmark, lambda: _lesion(hepmass_data[:scaled(100_000)], use_log=False))
    print_table("Figure 10 (hepmass, standard moments only)",
                ["estimator", "eps_avg (%)", "t_est (ms)"], rows)
    _assert_shape(metrics)
    # On near-Gaussian data the maxent family must beat mnat by >= 5x
    # (the paper's "at least 5x less error than non-maxent estimators").
    assert metrics["opt"][0] * 5 <= metrics["mnat"][0]


def _assert_shape(metrics):
    opt_error, opt_seconds = metrics["opt"]
    # Maxent solutions agree with each other.
    assert abs(metrics["newton"][0] - opt_error) < 5e-3
    assert abs(metrics["bfgs"][0] - opt_error) < 5e-3
    # Our solver is the fastest maxent solve, dramatically so vs the
    # naive-integration Newton and the generic convex formulation.
    assert opt_seconds * 10 < metrics["newton"][1]
    assert opt_seconds < metrics["cvx-maxent"][1]
    assert opt_seconds < metrics["bfgs"][1]
