"""Figures 18 and 19 (Appendix D.1-D.2): skew and outlier robustness.

Figure 18: accuracy across Gamma(ks) distributions (skew = 2/sqrt(ks)) as
the sketch order grows — the max-entropy estimate stays accurate across
three orders of magnitude of shape parameter.

Figure 19: a standard Gaussian contaminated with 1% outliers at growing
magnitude — the moments sketch holds while EW-Hist degrades (its equal
bins stretch to cover the outliers).
"""

import numpy as np

from repro.core import MomentsSketch, safe_estimate_quantiles
from repro.datasets import gamma_skew, gaussian_with_outliers
from repro.summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
)
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled

SHAPES = (0.1, 1.0, 10.0)
ORDERS = (4, 6, 8, 10, 12)
MAGNITUDES = (10.0, 100.0, 1000.0)


def test_fig18_gamma_skew(benchmark):
    def experiment():
        table = {}
        for shape in SHAPES:
            data = gamma_skew(scaled(100_000), shape=shape, seed=0)
            data_sorted = np.sort(data)
            sketch = MomentsSketch.from_data(data, k=max(ORDERS))
            errors = []
            for k in ORDERS:
                trimmed = MomentsSketch.from_data(data, k=k)
                estimates = safe_estimate_quantiles(trimmed, PHI_GRID)
                errors.append(float(np.mean(
                    quantile_errors(data_sorted, estimates, PHI_GRID))))
            table[shape] = errors
        return table

    table = run_once(benchmark, experiment)
    rows = [[f"ks={shape}"] + errors for shape, errors in table.items()]
    print_table("Figure 18: eps_avg on Gamma(ks) vs sketch order",
                ["distribution"] + [f"k={k}" for k in ORDERS], rows)
    # All shapes accurate at the paper's k = 10 (paper: <= 1e-3).
    for shape in SHAPES:
        assert table[shape][ORDERS.index(10)] < 0.01, shape


def test_fig19_outliers(benchmark):
    def experiment():
        rows = []
        results = {}
        for magnitude in MAGNITUDES:
            data = gaussian_with_outliers(scaled(200_000),
                                          outlier_magnitude=magnitude,
                                          outlier_fraction=0.01, seed=0)
            data_sorted = np.sort(data)
            row = [magnitude]
            for label, factory in [
                ("M-Sketch:10", lambda: MomentsSummary(k=10)),
                ("EW-Hist:20", lambda: EquiWidthHistogramSummary(max_bins=20)),
                ("EW-Hist:100", lambda: EquiWidthHistogramSummary(max_bins=100)),
                ("Merge12:32", lambda: Merge12Summary(k=32, seed=0)),
                ("GK:50", lambda: GKSummary(epsilon=1 / 50)),
            ]:
                summary = factory()
                summary.accumulate(data)
                error = float(np.mean(quantile_errors(
                    data_sorted, summary.quantiles(PHI_GRID), PHI_GRID)))
                row.append(error)
                results[(label, magnitude)] = error
            rows.append(row)
        return rows, results

    rows, results = run_once(benchmark, experiment)
    print_table("Figure 19: eps_avg vs outlier magnitude (1% outliers)",
                ["magnitude", "M-Sketch:10", "EW-Hist:20", "EW-Hist:100",
                 "Merge12:32", "GK:50"], rows)
    # The moments sketch stays accurate at every magnitude...
    for magnitude in MAGNITUDES:
        assert results[("M-Sketch:10", magnitude)] < 0.03
    # ...while EW-Hist collapses once outliers stretch its range.
    assert results[("EW-Hist:20", 1000.0)] > 0.1
    assert (results[("EW-Hist:20", 1000.0)]
            > 3 * results[("M-Sketch:10", 1000.0)])
