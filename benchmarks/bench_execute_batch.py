"""Batched declarative execution vs one-query-at-a-time (repro.api).

Measures what :meth:`repro.api.QueryService.execute_batch` buys: N
multi-quantile specs over F distinct filter sets cost F packed merges
and F estimator solves instead of N of each, because the planner keys
specs by their scan signature and shares the merged (estimator-caching)
summary.  The run asserts the sharing invariant — exactly one merge per
distinct cell subset — and that batched answers equal the one-at-a-time
answers, so it doubles as an API regression smoke.

Usage::

    python benchmarks/bench_execute_batch.py           # full size
    python benchmarks/bench_execute_batch.py --quick   # CI smoke

Exits non-zero on any sharing or equivalence violation.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402

QUANTILES = (0.5, 0.9, 0.95, 0.99)


def build_cube(num_tenants: int, cells_per_tenant: int,
               rows_per_cell: int, k: int = 10, seed: int = 0) -> DataCube:
    rng = np.random.default_rng(seed)
    n = num_tenants * cells_per_tenant * rows_per_cell
    values = rng.lognormal(1.0, 1.0, n)
    tenant = np.repeat(np.arange(num_tenants), cells_per_tenant * rows_per_cell)
    shard = np.tile(np.repeat(np.arange(cells_per_tenant), rows_per_cell),
                    num_tenants)
    cube = DataCube(CubeSchema(("tenant", "shard")),
                    lambda: MomentsSummary(k=k))
    cube.ingest([tenant, shard], values)
    return cube


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller cube, fewer specs")
    parser.add_argument("--tenants", type=int, default=None,
                        help="distinct filter sets (default 8; quick 4)")
    args = parser.parse_args(argv)

    tenants = args.tenants or (4 if args.quick else 8)
    cells_per_tenant = 500 if args.quick else 5_000
    rows_per_cell = 20

    cube = build_cube(tenants, cells_per_tenant, rows_per_cell)
    service = QueryService(cube=cube)
    specs = [QuerySpec(kind="quantile", quantiles=(q,),
                       filters={"tenant": t})
             for t in range(tenants) for q in QUANTILES]
    print(f"cube: {cube.num_cells} cells, {tenants} tenants; "
          f"{len(specs)} specs over {tenants} distinct cell subsets")

    start = time.perf_counter()
    batched = service.execute_batch(specs)
    batched_seconds = time.perf_counter() - start
    report = service.last_batch_report

    start = time.perf_counter()
    singles = [service.execute(spec) for spec in specs]
    naive_seconds = time.perf_counter() - start

    ok = True
    if report.merge_calls != tenants or report.distinct_scans != tenants:
        print(f"FAIL: expected {tenants} merges (one per distinct cell "
              f"subset), measured {report.merge_calls} "
              f"across {report.distinct_scans} scans")
        ok = False
    mismatches = sum(1 for one, many in zip(singles, batched)
                     if one.value != many.value)
    if mismatches:
        print(f"FAIL: {mismatches} batched answers differ from "
              "one-at-a-time execution")
        ok = False

    speedup = naive_seconds / batched_seconds if batched_seconds else float("inf")
    print(f"{'n_specs':>8} {'batched_s':>10} {'naive_s':>10} {'speedup':>8} "
          f"{'merges':>7} {'shared':>7}")
    print(f"{len(specs):>8} {batched_seconds:>10.4f} {naive_seconds:>10.4f} "
          f"{speedup:>7.1f}x {report.merge_calls:>7} {report.shared_hits:>7}")
    if not ok:
        return 1
    print("OK: one merge per distinct cell subset; "
          "batched == one-at-a-time")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
