"""Figure 9: the value of log moments under a fixed space budget.

Compares estimates from k standard moments only against estimates from up
to k/2 of each family (same total storage).  Reproduction targets: log
moments cut error dramatically on the long-tailed milan and retail
stand-ins and change little on the bounded occupancy data.
"""

import numpy as np

from repro.core import ConvergenceError, MomentsSketch, QuantileEstimator
from repro.datasets import load
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled

ORDERS = (4, 6, 8, 10)
DATASETS = ("milan", "retail", "occupancy")


def _error(sketch, data_sorted, k1, k2, round_to_int):
    try:
        estimator = QuantileEstimator.fit(sketch, k1=k1, k2=k2)
        estimates = estimator.quantiles(PHI_GRID)
    except ConvergenceError:
        from repro.core import safe_estimate_quantiles
        estimates = safe_estimate_quantiles(sketch, PHI_GRID)
    if round_to_int:
        estimates = np.round(estimates)
    return float(np.mean(quantile_errors(data_sorted, estimates, PHI_GRID)))


def _ablation(dataset):
    data = np.asarray(load(dataset, scaled(60_000)))
    data_sorted = np.sort(data)
    sketch = MomentsSketch.from_data(data, k=max(ORDERS))
    round_to_int = dataset == "retail"
    rows = []
    summary = {}
    for k in ORDERS:
        no_log = _error(sketch, data_sorted, k, 0, round_to_int)
        with_log = _error(sketch, data_sorted, max(k // 2, 1), k // 2, round_to_int)
        rows.append([k, no_log, with_log])
        summary[k] = (no_log, with_log)
    return rows, summary


def test_fig9_log_moment_ablation(benchmark):
    results = run_once(benchmark,
                       lambda: {d: _ablation(d) for d in DATASETS})
    for dataset, (rows, _) in results.items():
        print_table(f"Figure 9 ({dataset}): eps_avg, no-log vs with-log",
                    ["total moments k", "no log", "with log"], rows)

    # milan (multimodal across decades): log moments give a large
    # improvement at k = 10, the paper's headline for this figure.
    no_log, with_log = results["milan"][1][10]
    assert with_log < no_log / 2, f"milan: {no_log} -> {with_log}"
    # retail: with integer rounding and rank-interval scoring both variants
    # are accurate on our stand-in (observed deviation from the paper,
    # recorded in EXPERIMENTS.md); log moments must at least stay accurate.
    assert results["retail"][1][10][1] < 0.02
    # Occupancy: no catastrophic change in either direction.
    no_log, with_log = results["occupancy"][1][10]
    assert with_log < max(2.5 * no_log, 0.05)
