"""Telemetry-plane overhead gates (repro.telemetry).

The telemetry plane must be near-free when disabled and cheap when
enabled.  This benchmark enforces both on the bench_execute_batch
workload (distinct per-tenant multi-quantile specs, so every query pays
a real merge + solve rather than a shared-scan cache hit):

* **disabled gate (≤3%)** — with telemetry off, every instrumentation
  site reduces to one ``TELEMETRY.enabled`` attribute read.  The gate
  measures that guard's cost directly and scales it by a deliberately
  pessimistic sites-per-query count, then compares against the measured
  per-query latency.  (A/B against un-instrumented code is impossible —
  the guards are compiled in — so this bounds the only cost they add.)
* **enabled gate (≤10%)** — alternating disabled/enabled batches,
  min-of-N per arm to shed scheduler noise; the enabled arm pays span
  creation, phase accounting, histogram observes, and slow-query
  consideration on every query.

Usage::

    python benchmarks/bench_telemetry.py           # full size
    python benchmarks/bench_telemetry.py --quick   # CI smoke

Exits non-zero when either gate fails.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry  # noqa: E402
from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402

DISABLED_GATE = 0.03
ENABLED_GATE = 0.10
QUANTILES = (0.5, 0.9, 0.95, 0.99)

#: Pessimistic upper bound on ``TELEMETRY.enabled`` checks one query can
#: hit across service, broker, node, storage, and ingest layers.  The
#: cube path used here actually hits ~2; a cluster query with 32 shards
#: stays well under this.
GUARD_SITES_PER_QUERY = 64


def build_service(tenants: int, cells_per_tenant: int,
                  rows_per_cell: int, k: int = 10,
                  seed: int = 0) -> QueryService:
    rng = np.random.default_rng(seed)
    n = tenants * cells_per_tenant * rows_per_cell
    values = rng.lognormal(1.0, 1.0, n)
    tenant = np.repeat(np.arange(tenants), cells_per_tenant * rows_per_cell)
    shard = np.tile(np.repeat(np.arange(cells_per_tenant), rows_per_cell),
                    tenants)
    cube = DataCube(CubeSchema(("tenant", "shard")),
                    lambda: MomentsSummary(k=k))
    cube.ingest([tenant, shard], values)
    return QueryService(cube=cube)


def run_batch(service: QueryService, specs: list[QuerySpec]) -> float:
    start = time.perf_counter()
    service.execute_batch(specs)
    return time.perf_counter() - start


def measure_guard_seconds(iters: int = 500_000) -> float:
    """Cost of one disabled-site guard: a TELEMETRY.enabled read."""
    runtime = telemetry.TELEMETRY
    sink = 0
    start = time.perf_counter()
    for _ in range(iters):
        if runtime.enabled:
            sink += 1
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iters):
        if False:
            sink += 1
    empty = time.perf_counter() - start
    assert sink == 0
    return max(guarded - empty, 0.0) / iters


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller cube, fewer rounds")
    parser.add_argument("--rounds", type=int, default=None,
                        help="A/B rounds per arm (default 5; quick 3)")
    args = parser.parse_args(argv)

    tenants = 8 if args.quick else 16
    cells_per_tenant = 400 if args.quick else 2_000
    rounds = args.rounds or (3 if args.quick else 5)

    service = build_service(tenants, cells_per_tenant, rows_per_cell=20)
    # Distinct filters per spec: every query pays its own merge + solve.
    specs = [QuerySpec(kind="quantile", quantiles=QUANTILES,
                       filters={"tenant": t, "shard": s})
             for t in range(tenants) for s in range(0, cells_per_tenant,
                                                    cells_per_tenant // 25)]
    print(f"workload: {tenants} tenants x {cells_per_tenant} cells, "
          f"{len(specs)} distinct-filter specs, {rounds} rounds/arm")

    telemetry.disable()
    run_batch(service, specs)  # warm caches before either arm is timed

    off_times, on_times = [], []
    for _ in range(rounds):
        telemetry.disable()
        off_times.append(run_batch(service, specs))
        telemetry.enable(reset=True)
        on_times.append(run_batch(service, specs))
    telemetry.disable()
    telemetry.reset()

    off_best, on_best = min(off_times), min(on_times)
    per_query = off_best / len(specs)
    enabled_overhead = (on_best - off_best) / off_best

    guard = measure_guard_seconds()
    disabled_overhead = (guard * GUARD_SITES_PER_QUERY) / per_query

    print(f"{'arm':>10} {'best_s':>10} {'per_query_us':>13}")
    print(f"{'disabled':>10} {off_best:>10.4f} {per_query * 1e6:>13.2f}")
    print(f"{'enabled':>10} {on_best:>10.4f} "
          f"{on_best / len(specs) * 1e6:>13.2f}")
    print(f"guard cost: {guard * 1e9:.1f}ns/site "
          f"x {GUARD_SITES_PER_QUERY} sites/query")
    print(f"disabled overhead: {disabled_overhead * 100:.3f}% "
          f"(gate {DISABLED_GATE * 100:.0f}%)")
    print(f"enabled overhead:  {enabled_overhead * 100:+.2f}% "
          f"(gate {ENABLED_GATE * 100:.0f}%)")

    ok = True
    if disabled_overhead > DISABLED_GATE:
        print("FAIL: disabled-mode guard cost exceeds the gate")
        ok = False
    if enabled_overhead > ENABLED_GATE:
        print("FAIL: enabled-mode overhead exceeds the gate")
        ok = False
    if not ok:
        return 1
    print("OK: telemetry overhead within gates")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
