"""Figure 11: Druid end-to-end query benchmark.

Ingests a milan-like workload into the Druid-like engine (time x grid x
country cube), then times a full-population 99th-percentile query per
aggregator: native sum (lower bound), momentsSketch@10, and S-Hist at 10 /
100 / 1000 centroids.  Reproduction targets: sum < M-Sketch << S-Hist,
with S-Hist cost growing with centroid count (the paper's 0.27s / 1.7s /
3.65s / 12.1s / 99s ladder).
"""

import numpy as np

from repro.druid import DruidEngine, registry

from _harness import print_table, run_once, scaled

AGGREGATORS = ["sum", "momentsSketch@10", "S-Hist@10", "S-Hist@100", "S-Hist@1000"]


def _build_engine(values: np.ndarray) -> DruidEngine:
    rng = np.random.default_rng(0)
    n = values.size
    engine = DruidEngine(
        dimensions=("grid", "country"),
        aggregators=registry(moment_orders=(10,), histogram_bins=(10, 100, 1000)),
        granularity=3600.0,
        processing_threads=2,
    )
    engine.ingest(rng.uniform(0, 24 * 3600, n),
                  [rng.integers(0, 40, n), rng.choice(["IT", "FR", "DE"], n)],
                  values)
    return engine


def test_fig11_druid_quantile_query(benchmark, milan_data):
    values = milan_data[:scaled(80_000)]

    def experiment():
        engine = _build_engine(values)
        truth = float(np.quantile(values, 0.99))
        rows = []
        times = {}
        for aggregator in AGGREGATORS:
            result = engine.query(aggregator, q=0.99)
            rows.append([aggregator, result.cells_scanned,
                         result.merge_seconds, result.finalize_seconds,
                         result.total_seconds, result.value])
            times[aggregator] = result.total_seconds
        return rows, times, truth, engine.num_cells

    rows, times, truth, cells = run_once(benchmark, experiment)
    print_table(f"Figure 11: Druid end-to-end 99th percentile ({cells} cells, "
                f"truth={truth:.1f})",
                ["aggregator", "cells", "merge (s)", "finalize (s)",
                 "total (s)", "answer"], rows)

    # The paper's ordering: sum is the floor, the moments sketch beats
    # every S-Hist configuration, and S-Hist degrades with centroid count.
    assert times["sum"] < times["momentsSketch@10"]
    assert times["momentsSketch@10"] < times["S-Hist@10"]
    assert times["momentsSketch@10"] * 3 < times["S-Hist@100"]
    assert times["S-Hist@100"] < times["S-Hist@1000"]
