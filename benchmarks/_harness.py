"""Shared infrastructure for the paper-reproduction benchmarks.

Every file here regenerates one table or figure from the paper (see the
per-experiment index in DESIGN.md).  Conventions:

* Each pytest function uses the ``benchmark`` fixture, so the whole suite
  runs under ``pytest benchmarks/ --benchmark-only``.  Timing-critical
  kernels are measured by pytest-benchmark; table-style experiments wrap a
  single run and *print* the paper-style rows (pass ``-s`` to see them
  live; they also print in the captured-output section).
* Dataset sizes are laptop-scale by default and multiply by the
  ``REPRO_BENCH_SCALE`` environment variable (e.g. ``=10`` for longer,
  closer-to-paper runs).
* Absolute times are pure-Python/numpy and therefore ~100x the paper's
  Java numbers; the *relative* orderings and crossovers are the
  reproduction targets (EXPERIMENTS.md records both).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import load

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Apply the global benchmark scale factor to a row count."""
    return max(int(n * SCALE), 1000)


@pytest.fixture(scope="session")
def phi_grid() -> np.ndarray:
    """The evaluation's 21 equally spaced quantiles in [0.01, 0.99]."""
    return np.linspace(0.01, 0.99, 21)


@pytest.fixture(scope="session")
def milan_data() -> np.ndarray:
    return np.asarray(load("milan", scaled(100_000)))


@pytest.fixture(scope="session")
def hepmass_data() -> np.ndarray:
    return np.asarray(load("hepmass", scaled(100_000)))


@pytest.fixture(scope="session")
def exponential_data() -> np.ndarray:
    return np.asarray(load("exponential", scaled(100_000)))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one paper-style results table to stdout."""
    formatted = [[_format(value) for value in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in formatted)) if formatted
              else len(str(h))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in formatted:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def eps_avg(data_sorted: np.ndarray, estimates: np.ndarray,
            phis: np.ndarray) -> float:
    """Mean quantile error (paper Eq. 1) against pre-sorted ground truth."""
    n = data_sorted.size
    ranks = np.searchsorted(data_sorted, estimates, side="left")
    return float(np.mean(np.abs(ranks - np.floor(phis * n)) / n))


def run_once(benchmark, fn):
    """Run a table-style experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
