"""Cluster strong scaling and failover correctness (repro.cluster).

Builds simulated clusters of 1 -> 16 data nodes over the same
pre-aggregated dataset and runs one quantile spec through the
scatter-gather broker on each, reporting the four-phase cost
decomposition (route / scatter / merge / solve).  The per-shard partial
fold makes answers independent of topology, so the run doubles as the
cluster's correctness gate:

* **bit-exactness across node counts** — every cluster returns the
  identical merged moments and estimates;
* **bit-exactness vs single process** — a one-process Druid engine with
  shard-aligned segments returns the same bits;
* **failover** — killing a node on the largest cluster (replication 2),
  with and without repair, leaves the answers bit-identical, and repair
  restores ``replication`` live owners for every shard;
* **scaling shape** — broker-side merge+solve stays roughly flat (it
  folds the same ~200-byte per-shard partials regardless of node
  count); pass ``--require-scaling`` to enforce it.

Usage::

    python benchmarks/bench_cluster_scaling.py             # full sweep
    python benchmarks/bench_cluster_scaling.py --quick     # CI smoke
    python benchmarks/bench_cluster_scaling.py --require-scaling

Exits non-zero on any correctness violation (always) or scaling
violation (with ``--require-scaling``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec, as_backend  # noqa: E402
from repro.cluster import ClusterCoordinator  # noqa: E402
from repro.druid import DruidEngine, MomentsSketchAggregator  # noqa: E402

QUANTILES = (0.5, 0.9, 0.99)


def build_cluster(num_nodes: int, num_shards: int, replication: int,
                  timestamps: np.ndarray, cells: np.ndarray,
                  values: np.ndarray, k: int = 10) -> ClusterCoordinator:
    cluster = ClusterCoordinator(
        dimensions=("cell",),
        aggregators={"value": MomentsSketchAggregator(k=k)},
        num_shards=num_shards, replication=replication, granularity=1.0,
        nodes=[f"node-{i}" for i in range(num_nodes)])
    cluster.ingest(timestamps, [cells], values)
    return cluster


def run_query(service: QueryService, backend_name: str, spec: QuerySpec,
              repeats: int) -> tuple[object, float]:
    """Best-of-``repeats`` execution (returns last response, best seconds)."""
    best = float("inf")
    response = None
    for _ in range(repeats):
        start = time.perf_counter()
        response = service.execute(spec, backend=backend_name)
        best = min(best, time.perf_counter() - start)
    return response, best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller data, fewer clusters")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--threads", type=int, default=8,
                        help="broker fan-out threads")
    parser.add_argument("--require-scaling", action="store_true",
                        help="fail unless broker merge+solve stays sublinear "
                             "in node count")
    args = parser.parse_args(argv)

    node_counts = (1, 2, 4) if args.quick else (1, 2, 4, 8, 16)
    num_shards = 16 if args.quick else 64
    replication = 2
    rows = args.rows or (60_000 if args.quick else 400_000)
    cell_size = 100

    rng = np.random.default_rng(42)
    values = rng.lognormal(1.0, 1.2, rows)
    cells = (np.arange(rows) // cell_size).astype(int)

    # Shard-aligned time chunks: the reference engine's segments coincide
    # with the cluster's shards, so both fold per-shard partials in
    # ascending shard order and the comparison is bit-for-bit.
    probe = ClusterCoordinator(
        dimensions=("cell",),
        aggregators={"value": MomentsSketchAggregator(k=10)},
        num_shards=num_shards, replication=replication, granularity=1.0,
        nodes=["probe"])
    timestamps = probe.shard_ids([cells]).astype(float)

    reference = DruidEngine(dimensions=("cell",),
                            aggregators={"value": MomentsSketchAggregator()},
                            granularity=1.0, processing_threads=1)
    reference.ingest(timestamps, [cells], values)
    spec = QuerySpec(kind="quantile", quantiles=QUANTILES,
                     report_moments=True)
    single = QueryService(druid=reference).execute(spec)

    print(f"{rows} rows, {rows // cell_size} cells, {num_shards} shards, "
          f"replication {replication}, broker threads {args.threads}")
    header = (f"{'nodes':>6} {'route_ms':>9} {'scatter_ms':>11} "
              f"{'merge_ms':>9} {'solve_ms':>9} {'total_ms':>9} "
              f"{'partial_B':>10}")
    print(header)

    ok = True
    repeats = 2 if args.quick else 3
    curve: list[tuple[int, float]] = []
    largest = None
    baseline = None
    for num_nodes in node_counts:
        cluster = build_cluster(num_nodes, num_shards, replication,
                                timestamps, cells, values)
        backend = as_backend(cluster, threads=args.threads)
        service = QueryService(cluster=backend)
        response, _ = run_query(service, "cluster", spec, repeats)
        profile = backend.last_profile
        solve = response.timings.solve_seconds
        total = (profile.route_seconds + profile.scatter_seconds
                 + profile.merge_seconds + solve)
        print(f"{num_nodes:>6} {profile.route_seconds * 1e3:>9.3f} "
              f"{profile.scatter_seconds * 1e3:>11.3f} "
              f"{profile.merge_seconds * 1e3:>9.3f} {solve * 1e3:>9.3f} "
              f"{total * 1e3:>9.3f} {profile.partial_bytes:>10}")
        curve.append((num_nodes, profile.merge_seconds + solve))
        if baseline is None:
            baseline = response
        elif (response.moments != baseline.moments
              or response.estimates != baseline.estimates):
            print(f"FAIL: {num_nodes}-node answers differ from "
                  f"{node_counts[0]}-node answers")
            ok = False
        largest = (cluster, backend, response)

    if (baseline.moments != single.moments
            or baseline.estimates != single.estimates):
        print("FAIL: cluster answers differ from the single-process engine")
        ok = False
    else:
        print("OK: bit-exact across node counts and vs single process")

    # ------------------------------------------------------------------
    # Failover gate: kill a node, answers must not change by one bit.
    # ------------------------------------------------------------------
    cluster, backend, before = largest
    service = QueryService(cluster=backend)
    victim = cluster.live_nodes[-1]
    cluster.fail_node(victim, repair=False)
    degraded = service.execute(spec, backend="cluster")
    if (degraded.moments != before.moments
            or degraded.estimates != before.estimates):
        print(f"FAIL: answers changed after killing {victim} (degraded)")
        ok = False

    survivor = cluster.live_nodes[-1]
    cluster.restore_node(victim)
    cluster.fail_node(survivor, repair=True)
    repaired = service.execute(spec, backend="cluster")
    if (repaired.moments != before.moments
            or repaired.estimates != before.estimates):
        print(f"FAIL: answers changed after repairing around {survivor}")
        ok = False
    if len(cluster.live_nodes) >= replication:
        short = [shard for shard in range(num_shards)
                 if len(cluster.live_owners(shard)) < replication]
        if short:
            print(f"FAIL: {len(short)} shards below replication "
                  f"{replication} after repair")
            ok = False
    if ok:
        moved = cluster.last_rebalance
        print(f"OK: failover bit-exact (degraded + repaired; repair copied "
              f"{moved.copied_shards} shards / {moved.bytes_copied} bytes)")

    # ------------------------------------------------------------------
    # Scaling shape: broker merge+solve folds a node-count-independent
    # set of per-shard partials, so it must not grow with the cluster.
    # ------------------------------------------------------------------
    if args.require_scaling and len(curve) > 1:
        first, last = curve[0][1], curve[-1][1]
        ratio = last / first if first > 0 else 1.0
        if ratio > 3.0:
            print(f"FAIL: broker merge+solve grew {ratio:.1f}x from "
                  f"{curve[0][0]} to {curve[-1][0]} nodes")
            ok = False
        else:
            print(f"OK: broker merge+solve {ratio:.2f}x from "
                  f"{curve[0][0]} to {curve[-1][0]} nodes (sublinear)")

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
