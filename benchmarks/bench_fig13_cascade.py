"""Figure 13: cascade stage anatomy.

(a) threshold-query throughput as stages are added, (b) per-stage
standalone throughput (cheap stages evaluate orders of magnitude faster
than the max-entropy solve), (c) the fraction of queries reaching each
stage (most resolve early).
"""

import numpy as np

from repro.core.cascade import STAGES, ThresholdCascade
from repro.macrobase import MomentsCube

from _harness import print_table, run_once, scaled


def _threshold_workload(n):
    rng = np.random.default_rng(1)
    from repro.datasets import load
    values = np.asarray(load("milan", n))
    dims = [rng.integers(0, 40, n), rng.integers(0, 8, n)]
    cube = MomentsCube.build(dims, values, k=10)
    threshold = float(np.quantile(values, 0.99))
    return cube, threshold


def test_fig13_cascade_stages(benchmark):
    cube, threshold = _threshold_workload(scaled(60_000))
    sketches = list(cube.cells.values())

    def experiment():
        import time
        ladder_rows = []
        throughput = {}
        for label, stages in [("Baseline", ()), ("+Simple", ("simple",)),
                              ("+Markov", ("simple", "markov")),
                              ("+RTT", ("simple", "markov", "rtt"))]:
            cascade = ThresholdCascade(enabled_stages=stages)
            start = time.perf_counter()
            for sketch in sketches:
                cascade.threshold(sketch, threshold, 0.7)
            seconds = time.perf_counter() - start
            throughput[label] = len(sketches) / seconds
            ladder_rows.append([label, len(sketches) / seconds])

        full = ThresholdCascade()
        for sketch in sketches:
            full.threshold(sketch, threshold, 0.7)
        stage_rows = []
        fractions = {}
        for stage in STAGES:
            stats = full.stats
            stage_rows.append([stage,
                               stats.stage_throughput(stage),
                               stats.fraction_entered(stage),
                               stats.stages[stage].resolved])
            fractions[stage] = stats.fraction_entered(stage)
        return ladder_rows, stage_rows, throughput, fractions

    ladder_rows, stage_rows, throughput, fractions = run_once(benchmark, experiment)
    print_table("Figure 13a: threshold throughput as stages are added",
                ["strategy", "queries/s"], ladder_rows)
    print_table("Figure 13b/c: per-stage throughput and reach",
                ["stage", "stage throughput (q/s)", "fraction entered",
                 "resolved"], stage_rows)

    # (a) the full cascade is much faster than computing estimates directly.
    assert throughput["+RTT"] > 5 * throughput["Baseline"]
    # (c) every query passes the simple filter; few reach maxent.
    assert fractions["simple"] == 1.0
    assert fractions["maxent"] < 0.5
    assert fractions["rtt"] <= fractions["markov"] <= fractions["simple"]
