"""Packed columnar batch merge vs the sequential merge loop (Fig. 4 companion).

The paper's Figure 4 measures per-merge time for each summary; Eq. 2 then
prices a query at ``t_merge * n_merge + t_est``.  This benchmark measures
how much of our reproduction's ``t_merge`` is interpreter overhead rather
than float adds: it merges ``n_merge`` pre-aggregated moments-sketch cells
once with the sequential Python loop (``merge_all``) and once with
``PackedSketchStore.batch_merge`` (a single vectorized reduction), for
``n_merge`` in 10^2 .. 10^6, and reports the speedup.  Both paths produce
bit-for-bit identical sketches, which the script asserts on every run.

Usage::

    python benchmarks/bench_batch_merge.py           # full sweep to 1e6
    python benchmarks/bench_batch_merge.py --quick   # CI smoke, up to 1e4

Exits non-zero if the packed and loop merges disagree, so the CI smoke
run doubles as a merge-path regression check.  ``--require-speedup X``
additionally fails the run if the measured speedup at ``n_merge = 10^5``
(the acceptance point; the largest measured size in ``--quick`` mode)
falls below X.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.sketch import MomentsSketch, merge_all  # noqa: E402
from repro.store import PackedSketchStore  # noqa: E402
from repro.workload import build_packed_cells  # noqa: E402

#: Distinct cells are built once up to this many rows; larger n_merge
#: cycles over them (identical arithmetic, bounded memory).
MAX_DISTINCT = 100_000

FULL_SIZES = (100, 1_000, 10_000, 100_000, 1_000_000)
QUICK_SIZES = (100, 1_000, 10_000)


def build_store(num_cells: int, cell_size: int, k: int,
                seed: int = 0) -> PackedSketchStore:
    data = np.random.default_rng(seed).lognormal(1.0, 1.0,
                                                 num_cells * cell_size)
    return build_packed_cells(data, cell_size=cell_size, k=k).store


def time_loop(sketches: list[MomentsSketch], indices: np.ndarray) -> tuple[float, MomentsSketch]:
    start = time.perf_counter()
    merged = merge_all(sketches[i] for i in indices)
    return time.perf_counter() - start, merged


def time_packed(store: PackedSketchStore, indices: np.ndarray,
                repeats: int = 3) -> tuple[float, MomentsSketch]:
    best = np.inf
    merged = None
    for _ in range(repeats):
        start = time.perf_counter()
        merged = store.batch_merge(indices)
        best = min(best, time.perf_counter() - start)
    return best, merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: n_merge up to 1e4")
    parser.add_argument("--k", type=int, default=10,
                        help="moment order (paper default 10)")
    parser.add_argument("--cell-size", type=int, default=20,
                        help="values pre-aggregated per cell")
    parser.add_argument("--require-speedup", type=float, default=0.0,
                        help="fail if speedup at n_merge=1e5 (or the largest "
                             "measured size) is below this")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    distinct = min(max(sizes), MAX_DISTINCT)
    print(f"building {distinct} distinct cells "
          f"(k={args.k}, {args.cell_size} values/cell) ...", flush=True)
    store = build_store(distinct, args.cell_size, args.k)
    sketches = store.sketches(copy=True)

    header = (f"{'n_merge':>9}  {'loop (s)':>10}  {'packed (s)':>10}  "
              f"{'speedup':>8}  {'loop ns/merge':>13}  {'packed ns/merge':>15}")
    print(f"\n=== packed batch_merge vs sequential loop ===\n{header}\n"
          + "-" * len(header))
    speedups: dict[int, float] = {}
    for n in sizes:
        # Cycle over the distinct cells beyond MAX_DISTINCT; both paths see
        # the same index sequence, so results stay bit-for-bit comparable.
        indices = np.resize(np.arange(distinct, dtype=np.intp), n)
        loop_seconds, loop_merged = time_loop(sketches, indices)
        packed_seconds, packed_merged = time_packed(store, indices)
        if not (np.array_equal(loop_merged.power_sums, packed_merged.power_sums)
                and loop_merged.count == packed_merged.count
                and loop_merged.min == packed_merged.min
                and loop_merged.max == packed_merged.max
                and loop_merged.log_valid == packed_merged.log_valid
                and (not loop_merged.log_valid
                     or np.array_equal(loop_merged.log_sums,
                                       packed_merged.log_sums))):
            print(f"FAIL: packed merge diverges from loop at n_merge={n}")
            return 1
        speedups[n] = loop_seconds / packed_seconds
        print(f"{n:>9}  {loop_seconds:>10.5f}  {packed_seconds:>10.5f}  "
              f"{speedups[n]:>7.1f}x  {loop_seconds / n * 1e9:>13.0f}  "
              f"{packed_seconds / n * 1e9:>15.1f}")

    print("\nequivalence: packed == loop bit-for-bit at every size")
    if args.require_speedup:
        gate = 100_000 if 100_000 in speedups else max(speedups)
        if speedups[gate] < args.require_speedup:
            print(f"FAIL: speedup {speedups[gate]:.1f}x at n_merge={gate} "
                  f"below required {args.require_speedup:.1f}x")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
