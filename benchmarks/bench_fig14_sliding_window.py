"""Figure 14: sliding-window alerting query.

The Section 7.2.2 setup: a month-like stream pre-aggregated into panes,
two injected anomaly spikes, and a query for 4-hour (24-pane) windows with
q99 above a threshold.  The moments sketch slides via turnstile
subtract/merge + cascade; Merge12 must re-merge every window.
Reproduction target: the turnstile strategy is several times faster and
both find the spikes.
"""

import numpy as np

from repro.summaries import Merge12Summary
from repro.window import (
    TurnstileWindowProcessor,
    build_panes,
    inject_spikes,
    remerge_windows,
)

from _harness import print_table, run_once, scaled

PANE_SIZE = 200
WINDOW_PANES = 24


def test_fig14_sliding_window(benchmark):
    from repro.datasets import load
    # A long stream keeps alert windows rare (the paper has 4320 panes with
    # two 12-pane spikes), so cascade screening pays off.
    values = np.asarray(load("milan", scaled(500_000))).copy()
    num_panes = values.size // PANE_SIZE
    spike_a = list(range(num_panes // 4, num_panes // 4 + 12))
    spike_b = list(range(num_panes // 2, num_panes // 2 + 12))
    values = inject_spikes(values, PANE_SIZE, spike_a, spike_value=2000.0)
    values = inject_spikes(values, PANE_SIZE, spike_b, spike_value=1000.0, seed=1)
    # The paper's setup verbatim: t = 1500 with spikes at 2000 and 1000 —
    # only the stronger spike crosses the threshold.
    threshold = 1500.0

    def experiment():
        panes = build_panes(values, PANE_SIZE, k=10)
        turnstile = TurnstileWindowProcessor(panes, window_panes=WINDOW_PANES)
        turnstile_result = turnstile.query(threshold=threshold, q=0.99)
        pane_summaries = [
            Merge12Summary.from_data(values[i * PANE_SIZE:(i + 1) * PANE_SIZE],
                                     k=32, seed=0)
            for i in range(num_panes)]
        remerge_result = remerge_windows(pane_summaries, WINDOW_PANES,
                                         threshold, 0.99)
        return turnstile_result, remerge_result

    turnstile_result, remerge_result = run_once(benchmark, experiment)
    rows = [
        ["M-Sketch turnstile + cascade", turnstile_result.merge_seconds,
         turnstile_result.estimation_seconds, turnstile_result.total_seconds,
         len(turnstile_result.alerts)],
        ["Merge12 re-merge", remerge_result.merge_seconds,
         remerge_result.estimation_seconds, remerge_result.total_seconds,
         len(remerge_result.alerts)],
    ]
    print_table(f"Figure 14: sliding window q99 > {threshold} "
                f"({turnstile_result.windows_checked} windows)",
                ["strategy", "merge (s)", "estimation (s)", "total (s)",
                 "alert windows"], rows)

    assert turnstile_result.alerts, "spikes must raise alerts"
    assert remerge_result.alerts
    # The headline: turnstile + cascade is several times faster.
    assert turnstile_result.total_seconds * 2 < remerge_result.total_seconds
