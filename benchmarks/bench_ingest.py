"""Micro-batched columnar ingestion vs row-at-a-time legacy ingest.

Measures what :class:`repro.ingest.IngestSession` buys on the write
path: rows buffered in a structure-of-arrays
:class:`~repro.ingest.WriteBuffer` and flushed as vectorized
micro-batches (one lexsort + one shared-Vandermonde
``batch_accumulate`` per flush) against the same rows pushed through
the legacy entry point one row at a time — the per-call interpreter
overhead the unified API removes.  The run also enforces the PR's two
correctness gates:

* **bit-exact equivalence** — the same batch through the legacy
  entry point and through a session produces identical merged moments
  (and therefore identical QuerySpec answers);
* **idempotent cluster replay** — a replayed sequence-stamped batch is
  a no-op on every replica, before and after a failover repair.

Usage::

    python benchmarks/bench_ingest.py                    # full size
    python benchmarks/bench_ingest.py --quick            # CI smoke
    python benchmarks/bench_ingest.py --require-speedup 5

Exits non-zero on any equivalence/idempotency violation or if the
columnar path is not at least ``--require-speedup`` times faster
(default 5x) than row-at-a-time ingestion.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

# Allow running as a plain script from any working directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.cluster import ClusterCoordinator  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.druid import MomentsSketchAggregator  # noqa: E402
from repro.ingest import (IngestSession, as_write_backend,  # noqa: E402
                          make_batch)
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402

MOMENTS_SPEC = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         report_moments=True)


def fresh_cube(k: int = 10) -> DataCube:
    return DataCube(CubeSchema(("tenant",)), lambda: MomentsSummary(k=k))


def moments_of(target) -> dict:
    return QueryService(t=target).execute(MOMENTS_SPEC).moments


def bench_columnar(values: np.ndarray, tenants: np.ndarray,
                   flush_rows: int) -> float:
    """Rows/second through a micro-batched columnar session."""
    cube = fresh_cube()
    start = time.perf_counter()
    with IngestSession(cube, flush_rows=flush_rows) as session:
        step = max(flush_rows // 4, 1)
        for lo in range(0, values.size, step):
            session.append_columns(values[lo:lo + step],
                                   dims=[tenants[lo:lo + step]])
    elapsed = time.perf_counter() - start
    assert session.total_rows == values.size
    return values.size / elapsed


def bench_row_at_a_time(values: np.ndarray, tenants: np.ndarray) -> float:
    """Rows/second through the legacy entry point, one row per call."""
    cube = fresh_cube()
    start = time.perf_counter()
    for i in range(values.size):
        cube.ingest([tenants[i:i + 1]], values[i:i + 1])
    elapsed = time.perf_counter() - start
    return values.size / elapsed


def check_equivalence(values: np.ndarray, tenants: np.ndarray) -> bool:
    """Same batch, legacy vs session: merged moments must be identical."""
    legacy = fresh_cube()
    legacy.ingest([tenants], values)
    target = fresh_cube()
    with IngestSession(target) as session:
        session.append_columns(values, dims=[tenants])
    if moments_of(target) != moments_of(legacy):
        print("FAIL: session-ingested moments differ from legacy ingest")
        return False
    return True


def check_cluster_replay(values: np.ndarray, tenants: np.ndarray) -> bool:
    """A replayed sequence-stamped batch must be a no-op on every replica."""
    cluster = ClusterCoordinator(
        dimensions=("tenant",),
        aggregators={"m": MomentsSketchAggregator(k=10)},
        num_shards=8, replication=2, granularity=1.0,
        nodes=["n0", "n1", "n2"])
    timestamps = cluster.shard_ids([tenants]).astype(float)
    backend = as_write_backend(cluster)
    batch = make_batch(values, dims=[tenants], timestamps=timestamps,
                       sequence=("bench", 0))
    backend.write(batch)
    before = moments_of(cluster)
    replay = backend.write(batch)
    cluster.fail_node("n2", repair=True)
    replay_after_repair = backend.write(batch)
    ok = True
    if replay.replicas != 0 or replay_after_repair.replicas != 0:
        print(f"FAIL: replayed batch applied on {replay.replicas} + "
              f"{replay_after_repair.replicas} replicas (expected 0)")
        ok = False
    if moments_of(cluster) != before:
        print("FAIL: cluster moments changed after replayed batches")
        ok = False
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer rows")
    parser.add_argument("--require-speedup", type=float, default=5.0,
                        help="fail unless columnar/row-at-a-time rate "
                             "ratio reaches this (default 5)")
    args = parser.parse_args(argv)

    n_columnar = 40_000 if args.quick else 400_000
    n_legacy = 2_000 if args.quick else 10_000
    flush_rows = 10_000 if args.quick else 50_000
    tenants_cardinality = 100

    rng = np.random.default_rng(0)
    values = rng.lognormal(1.0, 1.0, n_columnar)
    tenants = (np.arange(n_columnar) % tenants_cardinality).astype(int)

    columnar_rate = bench_columnar(values, tenants, flush_rows)
    legacy_rate = bench_row_at_a_time(values[:n_legacy], tenants[:n_legacy])
    speedup = columnar_rate / legacy_rate

    print(f"{'path':>14} {'rows':>9} {'rows/s':>12}")
    print(f"{'columnar':>14} {n_columnar:>9} {columnar_rate:>12.0f}")
    print(f"{'row-at-a-time':>14} {n_legacy:>9} {legacy_rate:>12.0f}")
    print(f"micro-batched columnar speedup: {speedup:.1f}x "
          f"(gate: >= {args.require_speedup}x)")

    ok = check_equivalence(values[:20_000], tenants[:20_000])
    ok &= check_cluster_replay(values[:20_000], tenants[:20_000])
    if speedup < args.require_speedup:
        print(f"FAIL: columnar ingest speedup {speedup:.1f}x is below the "
              f"required {args.require_speedup}x")
        ok = False
    if not ok:
        return 1
    print("OK: bit-exact vs legacy; cluster replay idempotent; "
          "speedup gate met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
