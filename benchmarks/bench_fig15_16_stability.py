"""Figures 15 and 16 (Appendix B): floating-point stability of moments.

Figure 15: the Eq. 21 bound on the highest usable moment order versus the
empirically observed stable order for uniform data centered at offset c.
The bound must be conservative (never above the empirical order).

Figure 16: precision loss when converting power sums to Chebyshev moments
on the hepmass (centered, c ~ 0.4) and occupancy (offset, c ~ 1.5)
stand-ins — the offset dataset must lose more precision.
"""

import numpy as np

from repro.core.moments import (
    ScaledSupport,
    max_stable_order,
    power_sums_to_chebyshev_moments,
    raw_moments,
    shifted_scaled_moments,
    stable_order_empirical,
)
from repro.datasets import load

from _harness import print_table, run_once, scaled

OFFSETS = (0.0, 1.0, 2.0, 4.0, 8.0)


def _empirical_stable_order(center_offset: float, order: int = 32) -> int:
    rng = np.random.default_rng(3)
    data = rng.uniform(center_offset - 1.0, center_offset + 1.0, 200_000)
    sums = np.stack([np.sum(data ** i) for i in range(order + 1)])
    support = ScaledSupport(float(data.min()), float(data.max()))
    scaled_mu = shifted_scaled_moments(raw_moments(sums, data.size), support)
    return stable_order_empirical(scaled_mu)


def test_fig15_stable_order_bound(benchmark):
    def experiment():
        rows = []
        for offset in OFFSETS:
            bound = max_stable_order(offset)
            empirical = _empirical_stable_order(offset)
            rows.append([offset, bound, empirical])
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Figure 15: usable moment order vs center offset c",
                ["offset c", "Eq. 21 bound", "empirical stable order"], rows)
    for offset, bound, empirical in rows:
        assert bound <= empirical + 1, f"bound must be conservative at c={offset}"
    bounds = [row[1] for row in rows]
    assert bounds == sorted(bounds, reverse=True)


def _chebyshev_precision_loss(data: np.ndarray, order: int) -> np.ndarray:
    """|Chebyshev moments from power sums - directly computed| per order."""
    support = ScaledSupport(float(data.min()), float(data.max()))
    sums = np.stack([np.sum(data ** i) for i in range(order + 1)])
    from_sums = power_sums_to_chebyshev_moments(sums, data.size, support)
    u = support.scale(data)
    direct = np.asarray([np.mean(np.cos(i * np.arccos(np.clip(u, -1, 1))))
                         for i in range(order + 1)])
    return np.abs(from_sums - direct)


def test_fig16_precision_loss(benchmark, hepmass_data):
    occupancy = np.asarray(load("occupancy", 20_000))
    hepmass = hepmass_data[:scaled(50_000)]

    def experiment():
        orders = range(2, 17, 2)
        hep = _chebyshev_precision_loss(hepmass, 16)
        occ = _chebyshev_precision_loss(occupancy, 16)
        rows = [[k, hep[k], occ[k]] for k in orders]
        return rows, hep, occ

    rows, hep, occ = run_once(benchmark, experiment)
    print_table("Figure 16: Chebyshev-moment precision loss",
                ["order k", "hepmass (c~0.4)", "occupancy (c~1.5)"], rows)
    # The offset dataset loses orders of magnitude more precision at high k.
    assert occ[16] > 10 * hep[16]
    # Both remain usable at the paper's default k = 10.
    assert hep[10] < 1e-6 and occ[10] < 1e-3
