"""Figure 3: total query time at comparable (eps_avg <= .01) accuracy.

Builds per-cell summaries at the Table 2 parameter choices, merges every
cell, estimates 21 quantiles, and reports the total-time decomposition.
The headline reproduction target: M-Sketch total query time is the lowest
of the accurate summaries by an order of magnitude, because merge time
dominates at hundreds-plus of cells.
"""

import numpy as np

from repro.summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)
from repro.workload import build_cells, run_query

from _harness import print_table, run_once, scaled

#: Table 2's parameter choices (paper values; EW-Hist/S-Hist at 100 bins
#: are the paper's "for comparison" entries that do NOT reach the target
#: on milan).
FACTORIES = {
    "milan": {
        "M-Sketch": lambda: MomentsSummary(k=10),
        "Merge12": lambda: Merge12Summary(k=32, seed=0),
        "RandomW": lambda: RandomSummary(buffer_size=256, seed=0),
        "GK": lambda: GKSummary(epsilon=1 / 60),
        "T-Digest": lambda: TDigestSummary(delta=100.0),
        "Sampling": lambda: SamplingSummary(capacity=1000, seed=0),
        "S-Hist": lambda: StreamingHistogramSummary(max_bins=100),
        "EW-Hist": lambda: EquiWidthHistogramSummary(max_bins=100),
    },
    "hepmass": {
        "M-Sketch": lambda: MomentsSummary(k=3),
        "Merge12": lambda: Merge12Summary(k=32, seed=0),
        "RandomW": lambda: RandomSummary(buffer_size=256, seed=0),
        "GK": lambda: GKSummary(epsilon=1 / 40),
        "T-Digest": lambda: TDigestSummary(delta=50.0),
        "Sampling": lambda: SamplingSummary(capacity=1000, seed=0),
        "S-Hist": lambda: StreamingHistogramSummary(max_bins=100),
        "EW-Hist": lambda: EquiWidthHistogramSummary(max_bins=15),
    },
}


def _figure3(data, factories, phis):
    rows = []
    timings = {}
    for name, factory in factories.items():
        cells = build_cells(np.asarray(data), factory, cell_size=200)
        timing = run_query(cells, phis)
        timings[name] = timing
        rows.append([name, cells.num_cells,
                     timing.merge_seconds * 1e3,
                     timing.estimate_seconds * 1e3,
                     timing.total_seconds * 1e3,
                     timing.mean_error,
                     timing.size_bytes])
    return rows, timings


def test_fig3_milan(benchmark, phi_grid):
    from repro.datasets import load
    # Enough cells (1000+) that merge time dominates, the regime Figure 3
    # targets (the paper's milan run merges 406k cells).
    data = np.asarray(load("milan", scaled(240_000)))
    rows, timings = run_once(
        benchmark, lambda: _figure3(data, FACTORIES["milan"], phi_grid))
    print_table("Figure 3 (milan): query time at eps<=.01 params",
                ["summary", "cells", "merge (ms)", "est (ms)", "total (ms)",
                 "eps_avg", "size (B)"], rows)
    # Reproduction targets: the moments sketch is accurate AND the fastest
    # accurate summary overall.
    moments = timings["M-Sketch"]
    assert moments.mean_error <= 0.015
    accurate = [t for n, t in timings.items()
                if n != "M-Sketch" and t.mean_error <= 0.02]
    assert accurate, "some comparison summary must be accurate"
    assert moments.total_seconds < min(t.total_seconds for t in accurate)


def test_fig3_hepmass(benchmark, hepmass_data, phi_grid):
    data = hepmass_data[:scaled(60_000)]
    rows, timings = run_once(
        benchmark, lambda: _figure3(data, FACTORIES["hepmass"], phi_grid))
    print_table("Figure 3 (hepmass): query time at eps<=.01 params",
                ["summary", "cells", "merge (ms)", "est (ms)", "total (ms)",
                 "eps_avg", "size (B)"], rows)
    moments = timings["M-Sketch"]
    assert moments.mean_error <= 0.015
    merge12 = timings["Merge12"]
    assert moments.merge_seconds < merge12.merge_seconds
