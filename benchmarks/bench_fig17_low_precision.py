"""Figure 17 (Appendix C): accuracy of low-precision moments sketches.

Pre-aggregates many cells, stores each sketch's sums with randomized
rounding at reduced significand precision, merges everything, and measures
quantile accuracy as the bits-per-value budget shrinks.  Reproduction
targets: accuracy holds down to a modest bit budget and then degrades, and
higher moment orders need more bits (k=6 survives lower budgets than
k=12).
"""

import numpy as np

from repro.core import MomentsSketch, merge_all, safe_estimate_quantiles
from repro.core.encoding import quantize
from repro.workload import PHI_GRID, quantile_errors

from _harness import print_table, run_once, scaled

#: Total bits per value: 1 sign + 11 exponent + mantissa (the quantize()
#: fast path keeps the full exponent; see encoding.LowPrecisionCodec for
#: the packed format whose narrower exponent fields subtract further bits).
MANTISSA_BITS = (4, 8, 16, 28, 40, 52)
ORDERS = (6, 10, 12)


def _low_precision_error(data, k, mantissa_bits, rng):
    cells = []
    for start in range(0, data.size, 200):
        sketch = MomentsSketch.from_data(data[start:start + 200], k=k)
        sketch.power_sums[1:] = quantize(sketch.power_sums[1:], mantissa_bits, rng)
        sketch.log_sums[1:] = quantize(sketch.log_sums[1:], mantissa_bits, rng)
        cells.append(sketch)
    merged = merge_all(cells)
    estimates = safe_estimate_quantiles(merged, PHI_GRID)
    return float(np.mean(quantile_errors(np.sort(data), estimates, PHI_GRID)))


def test_fig17_low_precision(benchmark, milan_data):
    data = milan_data[:scaled(40_000)]

    def experiment():
        rng = np.random.default_rng(0)
        table = {}
        for k in ORDERS:
            table[k] = [
                _low_precision_error(data, k, bits, rng)
                for bits in MANTISSA_BITS
            ]
        return table

    table = run_once(benchmark, experiment)
    rows = [[f"k={k}"] + errors for k, errors in table.items()]
    print_table("Figure 17 (milan): eps_avg vs bits of significand "
                "(total bits/value = mantissa + 12)",
                ["sketch"] + [f"{b}b" for b in MANTISSA_BITS], rows)

    for k in ORDERS:
        errors = table[k]
        # Full precision is accurate; moderate precision (16-bit mantissa,
        # ~28 bits/value) is indistinguishable from it.
        assert errors[-1] < 0.02
        assert errors[2] < errors[-1] + 0.01
        # Severe truncation degrades accuracy.
        assert errors[0] > errors[-1] or errors[0] > 0.02
