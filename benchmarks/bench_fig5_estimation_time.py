"""Figure 5: quantile estimation time vs summary size.

Measures the time to answer the 21-quantile grid from an already merged
summary.  Reproduction target: the moments sketch estimation is orders of
magnitude slower than the instant-lookup summaries (its known tradeoff —
merge fast, estimate slow) while staying in interactive range.
"""

import numpy as np
import pytest

from repro.summaries import (
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)
from repro.workload import PHI_GRID, time_estimation

from _harness import scaled

CASES = [
    ("M-Sketch", "k=4", lambda: MomentsSummary(k=4)),
    ("M-Sketch", "k=10", lambda: MomentsSummary(k=10)),
    ("Merge12", "k=32", lambda: Merge12Summary(k=32, seed=0)),
    ("RandomW", "b=256", lambda: RandomSummary(buffer_size=256, seed=0)),
    ("GK", "eps=1/50", lambda: GKSummary(epsilon=1 / 50)),
    ("T-Digest", "d=100", lambda: TDigestSummary(delta=100.0)),
    ("Sampling", "s=1000", lambda: SamplingSummary(capacity=1000, seed=0)),
    ("S-Hist", "b=100", lambda: StreamingHistogramSummary(max_bins=100)),
]


def _built(factory, values):
    summary = factory()
    summary.accumulate(values)
    return summary


@pytest.fixture(scope="module")
def merged_summaries(milan_data):
    values = milan_data[:scaled(40_000)]
    return {(name, label): _built(factory, values)
            for name, label, factory in CASES}


@pytest.mark.parametrize("name,label",
                         [(n, lb) for n, lb, _ in CASES],
                         ids=[f"{n}-{lb}" for n, lb, _ in CASES])
def test_fig5_estimation_latency(benchmark, merged_summaries, name, label):
    summary = merged_summaries[(name, label)]

    def estimate():
        fresh = summary.copy()
        return fresh.quantiles(PHI_GRID)

    estimates = benchmark(estimate)
    assert estimates.size == PHI_GRID.size


def test_fig5_shape_interactive_latency(benchmark, milan_data):
    """M-Sketch estimation is the slowest of the lineup but stays within
    interactive bounds (paper: ~1 ms Java; here: tens of ms Python)."""
    summary = _built(lambda: MomentsSummary(k=10), milan_data[:scaled(40_000)])
    seconds = benchmark.pedantic(
        lambda: time_estimation(summary, PHI_GRID, repeats=3),
        rounds=1, iterations=1)
    assert seconds < 0.25, "estimation must stay interactive"
