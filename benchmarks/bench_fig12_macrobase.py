"""Figure 12: MacroBase threshold-query runtimes.

Runs the Section 7.2.1 query (subpopulations whose 70th percentile exceeds
the global 99th percentile) over a milan-like cube with each strategy:
the moments sketch with no cascade / +simple / +Markov / +RTT, plus the
Merge12a (merge-during-query) and Merge12b (precomputed counters)
baselines.  Reproduction targets: every added cascade stage cuts runtime;
the full cascade beats both Merge12 baselines.
"""

import numpy as np

from repro.macrobase import (
    MacroBaseEngine,
    MomentsCube,
    merge12a_query,
    merge12b_query,
)

from _harness import print_table, run_once, scaled

STAGE_LADDER = [
    ("Baseline", ()),
    ("+Simple", ("simple",)),
    ("+Markov", ("simple", "markov")),
    ("+RTT", ("simple", "markov", "rtt")),
]


def _workload(n):
    rng = np.random.default_rng(0)
    grid = rng.integers(0, 500, n)
    # The hot subgroup must hold well under 1/30 of the rows, otherwise a
    # 30x outlier-rate ratio is arithmetically impossible.
    country = rng.choice(["IT", "FR", "DE", "AT", "CH"], n,
                         p=[0.25, 0.25, 0.25, 0.23, 0.02])
    from repro.datasets import load
    values = np.asarray(load("milan", n)).copy()
    hot = (country == "CH") & (rng.random(n) < 0.8)
    values[hot] = values[hot] * 40.0 + 500.0
    return [grid, country], values


def test_fig12_macrobase_runtime(benchmark):
    dims, values = _workload(scaled(250_000))

    def experiment():
        rows = []
        totals = {}
        found = {}
        cube = MomentsCube.build(dims, values, k=10)
        for label, stages in STAGE_LADDER:
            engine = MacroBaseEngine(cube, cascade_stages=stages)
            report = engine.find_outlier_groups(outlier_phi=0.99,
                                                rate_multiplier=30.0)
            rows.append([label, report.merge_seconds,
                         report.estimation_seconds, report.total_seconds,
                         len(report.groups)])
            totals[label] = report.total_seconds
            found[label] = {(g.dimension, g.value) for g in report.groups}
        for label, query in (("Merge12a", merge12a_query),
                             ("Merge12b", merge12b_query)):
            report = query(dims, values)
            rows.append([label, report.merge_seconds,
                         report.estimation_seconds, report.total_seconds,
                         len(report.groups)])
            totals[label] = report.total_seconds
        return rows, totals, found

    rows, totals, found = run_once(benchmark, experiment)
    print_table("Figure 12: MacroBase query runtime by strategy",
                ["strategy", "merge (s)", "estimation (s)", "total (s)",
                 "groups found"], rows)

    # Cascade stages must strictly help estimation cost...
    assert totals["+Markov"] < totals["Baseline"]
    assert totals["+RTT"] <= totals["+Markov"] * 1.2
    # ...without changing the answer, and the planted hot country is found.
    assert found["Baseline"] == found["+RTT"]
    assert any(value == "CH" for _, value in found["+RTT"])
    # And the full cascade beats the Merge12 merge-during-query baseline.
    assert totals["+RTT"] < totals["Merge12a"]
