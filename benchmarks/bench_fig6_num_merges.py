"""Figure 6: total query time as the number of merged cells grows.

The cost-model crossover (Eq. 2): at few cells the moments sketch's
estimation time dominates and other summaries win; past roughly 10^3-10^4
merges the merge term dominates and M-Sketch wins.  This benchmark sweeps
the cell count and asserts both regimes.
"""

import numpy as np

from repro.summaries import Merge12Summary, MomentsSummary, RandomSummary
from repro.workload import build_cells, run_query

from _harness import print_table, run_once, scaled

SWEEP = (10, 50, 200, 1000, 4000)

FACTORIES = {
    "M-Sketch": lambda: MomentsSummary(k=10),
    "Merge12": lambda: Merge12Summary(k=32, seed=0),
    "RandomW": lambda: RandomSummary(buffer_size=256, seed=0),
}


def _sweep(data, phis):
    counts = [c for c in SWEEP if c * 200 <= data.size]
    cells = {name: build_cells(data, factory, cell_size=200)
             for name, factory in FACTORIES.items()}
    table = {}
    for name in FACTORIES:
        table[name] = [run_query(cells[name], phis, num_cells=c).total_seconds
                       for c in counts]
    return counts, table


def test_fig6_crossover(benchmark, phi_grid):
    from repro.datasets import load
    # This sweep needs enough cells to reach the merge-dominated regime,
    # so it loads a larger dataset than the shared fixtures provide.
    data = np.asarray(load("milan", scaled(800_000)))
    counts, table = run_once(benchmark, lambda: _sweep(data, phi_grid))
    rows = [[name] + [seconds * 1e3 for seconds in series]
            for name, series in table.items()]
    print_table("Figure 6 (milan): total query time (ms) vs merged cells",
                ["summary"] + [str(c) for c in counts], rows)

    # Regime 1: at the largest cell count, merge time dominates and the
    # moments sketch is fastest.
    big = counts.index(max(counts))
    assert table["M-Sketch"][big] < table["Merge12"][big]
    assert table["M-Sketch"][big] < table["RandomW"][big]
    # Regime 2: at ten cells, M-Sketch pays its estimation overhead and is
    # NOT the fastest (the honest flip side the paper shows).
    small = 0
    assert table["M-Sketch"][small] > min(table["Merge12"][small],
                                          table["RandomW"][small])
