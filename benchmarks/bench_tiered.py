"""Tiered storage gates: cold latency, compaction exactness, disk ratio.

The persistent tier (:mod:`repro.storage`) makes three quantified
promises on top of the RAM packed store:

1. **Cold queries stay serviceable** — answering a quantile query from
   a fully cold (low-precision, mmap'd) store costs at most
   ``--max-cold-factor`` times the hot/warm answer (the decode is one
   vectorized pass, not a per-row loop).
2. **Compaction is bit-exact** — compacting the segment log to one
   segment changes *no* byte of the gathered store (it only drops
   superseded row versions).
3. **Cold is small** — the ``keep_log=False`` cold profile (Appendix C
   low-precision quantization, varint counts, f32 bounds) shrinks the
   on-disk footprint by at least ``--require-ratio`` (default 4x)
   versus the warm f64 segments at the paper's default k=10.

Usage::

    python benchmarks/bench_tiered.py            # full sizes
    python benchmarks/bench_tiered.py --quick    # CI smoke

Exits non-zero when any gate fails, so `make test` and the
storage-smoke CI job treat regressions as failures.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.storage import (ColdSpec, Compactor, TieredStore)  # noqa: E402


def build_store(home: Path, keys: int, rows_per_batch: int,
                batches: int, k: int, seed: int = 0) -> TieredStore:
    rng = np.random.default_rng(seed)
    store = TieredStore(home, k=k, track_log=True, dimensions=("cell",),
                        hot_budget_bytes=max(keys * (6 + 2 * (k + 1)) * 4,
                                             4096))
    for _ in range(batches):
        cells = rng.integers(0, keys, rows_per_batch).astype(str)
        store.ingest_columns([cells], rng.lognormal(0, 1, rows_per_batch)
                             + 0.01)
    store.seal()
    return store


def median_latency(service: QueryService, backend: str, spec: QuerySpec,
                   repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        service.execute(spec, backend=backend)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def gathered_state(store: TieredStore) -> tuple:
    packed, keys = store.gather()
    n = len(packed)
    return (tuple(keys), packed.counts[:n].tobytes(),
            packed.mins[:n].tobytes(), packed.maxs[:n].tobytes(),
            packed.power_sums[:n].tobytes(), packed.log_sums[:n].tobytes(),
            packed.log_valid[:n].tobytes())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller store")
    parser.add_argument("--k", type=int, default=10,
                        help="moment order (paper default 10)")
    parser.add_argument("--max-cold-factor", type=float, default=25.0,
                        help="cold quantile latency must stay within this "
                             "factor of the hot latency (first cold query "
                             "pays the one-time hydrate)")
    parser.add_argument("--require-ratio", type=float, default=4.0,
                        help="minimum warm/cold on-disk byte ratio for the "
                             "keep_log=False profile")
    args = parser.parse_args(argv)

    keys = 300 if args.quick else 2000
    batches = 8 if args.quick else 20
    rows = 2000 if args.quick else 10_000
    repeats = 5 if args.quick else 9
    workdir = Path(tempfile.mkdtemp(prefix="bench-tiered-"))
    failures: list[str] = []
    try:
        store = build_store(workdir / "tiers", keys, rows, batches, args.k)
        segments = store.stats()["segments"]
        print(f"built tiered store: {keys} keys, {batches}x{rows} rows, "
              f"{len(segments)} warm segments, "
              f"{store.disk_bytes():,} bytes on disk")

        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99))
        service = QueryService(tiered=store)

        # --- gate 1: hot/warm vs cold latency -------------------------
        warm_latency = median_latency(service, "tiered", spec, repeats)
        warm_state = gathered_state(store)
        warm_bytes = store.disk_bytes()

        store.demote(count=len(segments), spec=ColdSpec(keep_log=False))
        cold_bytes = store.disk_bytes()
        service = QueryService(tiered=store)  # new epoch, fresh gather
        cold_latency = median_latency(service, "tiered", spec, repeats)
        factor = cold_latency / warm_latency if warm_latency else np.inf
        print(f"\nwarm quantile latency: {warm_latency * 1e3:8.3f} ms")
        print(f"cold quantile latency: {cold_latency * 1e3:8.3f} ms "
              f"({factor:.2f}x warm, limit {args.max_cold_factor:.1f}x)")
        if factor > args.max_cold_factor:
            failures.append(
                f"cold latency {factor:.2f}x warm exceeds the "
                f"{args.max_cold_factor:.1f}x limit")

        # --- gate 2: disk reduction -----------------------------------
        ratio = warm_bytes / cold_bytes if cold_bytes else np.inf
        print(f"\nwarm on-disk bytes: {warm_bytes:>12,}")
        print(f"cold on-disk bytes: {cold_bytes:>12,}  "
              f"({ratio:.2f}x smaller, require >= {args.require_ratio:.1f}x)")
        if ratio < args.require_ratio:
            failures.append(f"cold disk reduction {ratio:.2f}x below the "
                            f"required {args.require_ratio:.1f}x")
        store.close(seal=False)

        # --- gate 3: compaction bit-exactness -------------------------
        # Rebuild warm (demotion above was lossy by design), then compact
        # the whole log to one segment and diff every gathered buffer.
        shutil.rmtree(workdir / "tiers")
        store = build_store(workdir / "tiers", keys, rows, batches, args.k)
        before = gathered_state(store)
        rounds = Compactor(store).run_until_stable()
        after = gathered_state(store)
        reclaimed = sum(r["reclaimed_rows"] for r in rounds)
        print(f"\ncompaction: {len(rounds)} rounds, {reclaimed} superseded "
              f"rows reclaimed, "
              f"{len(store.stats()['segments'])} segments remain")
        if reclaimed <= 0:
            failures.append("compaction reclaimed no superseded rows "
                            "(the log never overlapped?)")
        if after != before:
            failures.append("compaction changed the gathered store "
                            "(bit-exactness broken)")
        else:
            print("compaction equivalence: gathered store is bit-identical")
        store.close(seal=False)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nall tiered-storage gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
