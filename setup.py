"""Setup script for the moments-sketch reproduction.

A classic setup.py/setup.cfg layout (rather than pyproject.toml) is used
deliberately: this project targets offline environments where pip's PEP 517
build isolation cannot download build dependencies, and the legacy editable
path (`setup.py develop`) needs neither network access nor the `wheel`
package.
"""

from setuptools import setup

setup()
