"""Write-backend protocol and adapters for the unified ingestion API.

A :class:`WriteBackend` turns the storage-specific half of an ingest —
group the batch, run the vectorized accumulate kernel — into one
primitive the session layer consumes: :meth:`WriteBackend.write`, which
takes a columnar :class:`~repro.ingest.buffer.WriteBatch` and returns a
:class:`WriteOutcome` (cells touched, route/pack timing, any alerts).

Adapters are provided for the five aggregation systems in this
repository: :class:`CubeWriteBackend`
(:class:`~repro.datacube.DataCube`), :class:`DruidWriteBackend`
(:class:`~repro.druid.DruidEngine`), :class:`PackedStoreWriteBackend`
(:class:`~repro.store.PackedSketchStore` with a key->row map so raw
stores gain dimensions), :class:`WindowWriteBackend`
(:class:`~repro.window.StreamingWindowMonitor`), and
:class:`ClusterWriteBackend` (:class:`~repro.cluster.ClusterCoordinator`
— replication-aware routing of shard sub-batches through the hashring,
with idempotent per-shard sequence stamps so a replayed batch is a
no-op on every replica).  :class:`FanOutWriteBackend` tees one batch to
several targets, so a single session can feed cube, Druid, and cluster
backends at once.

All adapters reuse the engines' own roll-up kernels, so rows routed
through the API land bit-for-bit identical — per batch — to the legacy
per-engine entry points (which are themselves thin shims over these
adapters).  Backends without a time axis (cube, packed store, window)
ignore a batch's timestamps, and the window monitor ignores dimension
columns, which is what lets one row stream fan out to heterogeneous
targets.

:func:`as_write_backend` adapts a raw engine object via the
module-level :data:`WRITE_ADAPTERS` registry — the same extensible
registry pattern as :func:`repro.api.as_backend` — which downstream
systems can extend with :func:`register_write_adapter`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cluster.coordinator import ClusterCoordinator
from ..core.errors import ClusterError, IngestError
from ..core.grouping import lexsort_groups
from ..datacube.cube import CubeSchema, DataCube
from ..druid.aggregators import MomentsSketchAggregator
from ..druid.engine import DruidEngine
from ..store import PackedSketchStore
from ..summaries.moments_summary import MomentsSummary
from ..window.streaming import StreamingWindowMonitor
from .buffer import WriteBatch, check_columns
from .spec import IngestSpec


@dataclass
class WriteOutcome:
    """What one :meth:`WriteBackend.write` call physically did."""

    cells: int
    pack_seconds: float = 0.0
    route_seconds: float = 0.0
    alerts: list | None = None
    shards: int | None = None
    replicas: int | None = None
    #: Shard ids a replicated write actually landed on (cluster backend);
    #: None for unsharded targets.
    touched_shards: tuple[int, ...] | None = None


class WriteBackend(abc.ABC):
    """Adapter contract between an ingest session and a storage engine."""

    #: Registered display name (also the query-service registration name).
    name: str = "write"
    #: Dimension schema, when the target has one.
    dimensions: tuple[str, ...] = ()
    #: True when batches must carry a timestamps column.
    needs_timestamps: bool = False

    @abc.abstractmethod
    def write(self, batch: WriteBatch) -> WriteOutcome: ...

    @abc.abstractmethod
    def read_target(self) -> object:
        """The engine object :func:`repro.api.as_backend` should adapt,
        so a session's data is queryable immediately after a flush."""

    def read_targets(self) -> dict[str, object]:
        """Query-service registrations for this backend (name -> engine)."""
        return {self.name: self.read_target()}

    def invalidation_targets(self, batch: WriteBatch,
                             outcome: WriteOutcome | None = None
                             ) -> list[tuple[object, tuple | None]]:
        """``(engine, shards)`` pairs whose flush epochs this write moved.

        The session bumps :data:`repro.optimizer.EPOCHS` for each pair
        after a successful write; ``shards=None`` bumps the engine's
        whole-engine epoch, a tuple bumps only those shard counters
        (the cluster backend's per-shard invalidation).  The default
        invalidates the adapter's read target wholesale.
        """
        return [(self.read_target(), None)]


# ----------------------------------------------------------------------
# DataCube
# ----------------------------------------------------------------------

class CubeWriteBackend(WriteBackend):
    """Adapter over :class:`~repro.datacube.DataCube` (both cell backends)."""

    name = "cube"

    def __init__(self, cube: DataCube, spec: IngestSpec | None = None):
        self.cube = cube
        self.dimensions = cube.schema.dimensions

    def write(self, batch: WriteBatch) -> WriteOutcome:
        check_columns(len(self.dimensions), batch.dims, batch.values,
                      context="cube ingest")
        if batch.rows == 0:
            return WriteOutcome(cells=0)
        start = time.perf_counter()
        cells = self.cube._ingest_columns(list(batch.dims), batch.values)
        return WriteOutcome(cells=cells,
                            pack_seconds=time.perf_counter() - start)

    def read_target(self) -> DataCube:
        return self.cube


# ----------------------------------------------------------------------
# Druid engine
# ----------------------------------------------------------------------

class DruidWriteBackend(WriteBackend):
    """Adapter over :class:`~repro.druid.DruidEngine` time-bucket roll-up."""

    name = "druid"
    needs_timestamps = True

    def __init__(self, engine: DruidEngine, spec: IngestSpec | None = None):
        self.engine = engine
        self.dimensions = engine.dimensions

    def write(self, batch: WriteBatch) -> WriteOutcome:
        check_columns(len(self.dimensions), batch.dims, batch.values,
                      batch.timestamps, needs_timestamps=True,
                      context="druid ingest")
        if batch.rows == 0:
            return WriteOutcome(cells=0)
        start = time.perf_counter()
        cells = self.engine._rollup_rows(batch.timestamps, list(batch.dims),
                                         batch.values)
        return WriteOutcome(cells=cells,
                            pack_seconds=time.perf_counter() - start)

    def read_target(self) -> DruidEngine:
        return self.engine


# ----------------------------------------------------------------------
# Packed sketch store
# ----------------------------------------------------------------------

class PackedStoreWriteBackend(WriteBackend):
    """Adapter over a raw :class:`~repro.store.PackedSketchStore`.

    Maintains a dimension-tuple -> row map (first-seen order, exactly
    like the packed cube backend), so a bare store gains a dimension
    schema: each flush lexsorts the batch by its dimension columns and
    lands every group with one vectorized
    :meth:`~repro.store.PackedSketchStore.batch_accumulate` pass.  With
    no dimensions, every value accumulates into one session-owned row.
    """

    name = "packed"

    def __init__(self, store: PackedSketchStore,
                 spec: IngestSpec | None = None,
                 dimensions: tuple[str, ...] | None = None):
        self.store = store
        if dimensions is None:
            dimensions = spec.dimensions if spec is not None else ()
        self.dimensions = tuple(dimensions)
        if self.dimensions and len(store):
            # Pre-existing rows have no known dimension key, so filtered
            # and grouped reads over the session's key->row map would be
            # wrong (or crash); demand a fresh store for keyed sessions.
            raise IngestError(
                "a dimensioned packed-store session needs an empty store; "
                f"this one already holds {len(store)} keyless rows")
        self._rows: dict[tuple, int] = {}

    def write(self, batch: WriteBatch) -> WriteOutcome:
        check_columns(len(self.dimensions), batch.dims, batch.values,
                      context="packed-store ingest")
        if batch.rows == 0:
            return WriteOutcome(cells=0)
        start = time.perf_counter()
        values = batch.values
        if not self.dimensions:
            row = self._rows.get(())
            if row is None:
                row = self.store.new_row()
                self._rows[()] = row
            self.store.accumulate_row(row, values)
            return WriteOutcome(cells=1,
                                pack_seconds=time.perf_counter() - start)
        # The shared grouping kernel (also behind the cube's and Druid's
        # ingest), so identical rows land identical bits in any system.
        order, sorted_cols, _, starts, ends = lexsort_groups(batch.dims)
        sorted_values = values[order]
        sizes = ends - starts
        group_rows = np.empty(starts.size, dtype=np.intp)
        for i, group_start in enumerate(starts):
            key = tuple(col[group_start] for col in sorted_cols)
            row = self._rows.get(key)
            if row is None:
                row = self.store.new_row()
                self._rows[key] = row
            group_rows[i] = row
        self.store.batch_accumulate(np.repeat(group_rows, sizes),
                                    sorted_values)
        return WriteOutcome(cells=int(starts.size),
                            pack_seconds=time.perf_counter() - start)

    def read_target(self) -> object:
        if not self.dimensions or not self._rows:
            return self.store
        from ..api.backends import PackedStoreBackend
        keys = [None] * len(self.store)
        for key, row in self._rows.items():
            keys[row] = key
        return PackedStoreBackend(self.store, keys=keys,
                                  dimensions=self.dimensions)

    def invalidation_targets(self, batch: WriteBatch,
                             outcome: WriteOutcome | None = None
                             ) -> list[tuple[object, tuple | None]]:
        # read_target() may wrap the store in a fresh adapter per call;
        # the epoch clock lives on the long-lived store itself.
        return [(self.store, None)]


# ----------------------------------------------------------------------
# Streaming window monitor
# ----------------------------------------------------------------------

class WindowWriteBackend(WriteBackend):
    """Adapter over :class:`~repro.window.StreamingWindowMonitor`.

    The monitor aggregates a plain value stream: dimension columns and
    timestamps in a batch are ignored (pane boundaries come from the
    monitor's own row-count policy), which lets a fan-out session feed
    it alongside dimensional backends.
    """

    name = "window"

    def __init__(self, monitor: StreamingWindowMonitor,
                 spec: IngestSpec | None = None):
        self.monitor = monitor

    def write(self, batch: WriteBatch) -> WriteOutcome:
        before = self.monitor._pane_index
        start = time.perf_counter()
        alerts = self.monitor._ingest_values(batch.values)
        return WriteOutcome(cells=self.monitor._pane_index - before,
                            pack_seconds=time.perf_counter() - start,
                            alerts=alerts)

    def read_target(self) -> StreamingWindowMonitor:
        # as_backend adapts a live monitor to its current window's panes
        # (the last window_panes sealed panes); it raises QueryError
        # while no pane has been sealed yet.
        return self.monitor


# ----------------------------------------------------------------------
# Cluster coordinator
# ----------------------------------------------------------------------

class ClusterWriteBackend(WriteBackend):
    """Replication-aware shard routing over a
    :class:`~repro.cluster.ClusterCoordinator`.

    Each batch is split into per-shard sub-batches by hashing every
    row's full dimension tuple through the coordinator's hashring, and
    each sub-batch is rolled up on *every* live owner of its shard —
    identical rows in identical order, which keeps replicas
    bit-identical.  When the batch carries an idempotency ``sequence``
    stamp, every replica records it per shard and replays become
    no-ops, so at-least-once delivery upstream cannot double-count.
    """

    name = "cluster"
    needs_timestamps = True

    def __init__(self, coordinator: ClusterCoordinator,
                 spec: IngestSpec | None = None):
        self.coordinator = coordinator
        self.dimensions = coordinator.dimensions

    def write(self, batch: WriteBatch) -> WriteOutcome:
        coordinator = self.coordinator
        if not coordinator.live_nodes:
            raise ClusterError("the cluster has no live nodes")
        check_columns(len(self.dimensions), batch.dims, batch.values,
                      batch.timestamps, needs_timestamps=True,
                      context="cluster ingest")
        if batch.rows == 0:
            # An idle poll; topology and arity were still validated above.
            return WriteOutcome(cells=0, shards=0, replicas=0)
        columns = [np.asarray(col) for col in batch.dims]
        start = time.perf_counter()
        shards = coordinator.shard_ids(columns)
        shard_list = np.unique(shards)
        # Resolve every sub-batch's replica set up front, so an
        # unroutable shard aborts the batch before *any* replica applies
        # it (no partially-recorded sequence stamps to reason about).
        owners_of = {}
        for shard in shard_list:
            owners = coordinator.live_owners(int(shard))
            if not owners:
                raise ClusterError(f"shard {int(shard)} has no live owners")
            owners_of[int(shard)] = owners
        route_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cells = 0
        replicas = 0
        for shard in shard_list:
            mask = shards == shard
            subset_ts = batch.timestamps[mask]
            subset_cols = [col[mask] for col in columns]
            subset_values = batch.values[mask]
            owners = owners_of[int(shard)]
            shard_cells = None
            for node_id in owners:
                applied = coordinator.nodes[node_id].ingest_shard(
                    int(shard), subset_ts, subset_cols, subset_values,
                    sequence=batch.sequence)
                if applied is not None:
                    replicas += 1
                    if shard_cells is None:
                        shard_cells = applied
            cells += shard_cells or 0
        return WriteOutcome(cells=cells,
                            pack_seconds=time.perf_counter() - start,
                            route_seconds=route_seconds,
                            shards=int(shard_list.size), replicas=replicas,
                            touched_shards=tuple(
                                int(shard) for shard in shard_list))

    def read_target(self) -> ClusterCoordinator:
        return self.coordinator

    def invalidation_targets(self, batch: WriteBatch,
                             outcome: WriteOutcome | None = None
                             ) -> list[tuple[object, tuple | None]]:
        """Per-shard invalidation: only the shards this write landed on.

        Cached point-query answers pinned to untouched shards stay
        valid (:meth:`~repro.cluster.backend.ClusterBackend.scan_epoch`
        keys them on exactly their shard's counter).
        """
        if outcome is not None and outcome.touched_shards is not None:
            touched = outcome.touched_shards
        elif batch.rows == 0:
            touched = ()
        else:
            columns = [np.asarray(col) for col in batch.dims]
            shard_list = np.unique(self.coordinator.shard_ids(columns))
            touched = tuple(int(shard) for shard in shard_list)
        return [(self.coordinator, touched)]


# ----------------------------------------------------------------------
# Fan-out (one session, many targets)
# ----------------------------------------------------------------------

class FanOutWriteBackend(WriteBackend):
    """Tee every batch to several write backends (same rows, same order).

    Dimensional children must agree on arity; ``needs_timestamps`` is
    the union of the children's requirements.  The outcome reports the
    maximum per-child cell count (the most granular target) and
    concatenates any window alerts.

    Sequence-stamped batches get fan-out-level idempotency: the backend
    records which children applied each stamp, so when a mid-fan-out
    failure makes the session retry the flush, children that already
    applied it are skipped instead of double-counting (the cluster
    child additionally dedups on its own replicas).  Unstamped batches
    have no such protection — set ``dedup_key`` on the session when a
    fan-out target can fail independently.
    """

    name = "fanout"

    def __init__(self, targets, spec: IngestSpec | None = None):
        if not targets:
            raise IngestError("fan-out needs at least one target")
        self.children = [target if isinstance(target, WriteBackend)
                         else as_write_backend(target, spec=spec)
                         for target in targets]
        arities = {len(child.dimensions) for child in self.children
                   if child.dimensions}
        if len(arities) > 1:
            raise IngestError(
                f"fan-out targets disagree on dimension arity: {self.children}")
        self.dimensions = next((child.dimensions for child in self.children
                                if child.dimensions), ())
        self.needs_timestamps = any(child.needs_timestamps
                                    for child in self.children)
        self._applied: list[set] = [set() for _ in self.children]

    def write(self, batch: WriteBatch) -> WriteOutcome:
        cells = 0
        pack = route = 0.0
        alerts: list = []
        shards = replicas = None
        for index, child in enumerate(self.children):
            if batch.sequence is not None \
                    and batch.sequence in self._applied[index]:
                continue
            outcome = child.write(batch)
            if batch.sequence is not None:
                self._applied[index].add(batch.sequence)
            cells = max(cells, outcome.cells)
            pack += outcome.pack_seconds
            route += outcome.route_seconds
            if outcome.alerts:
                alerts.extend(outcome.alerts)
            shards = outcome.shards if outcome.shards is not None else shards
            replicas = (outcome.replicas if outcome.replicas is not None
                        else replicas)
        return WriteOutcome(cells=cells, pack_seconds=pack,
                            route_seconds=route, alerts=alerts or None,
                            shards=shards, replicas=replicas)

    def read_target(self) -> object:
        return self.children[0].read_target()

    def invalidation_targets(self, batch: WriteBatch,
                             outcome: WriteOutcome | None = None
                             ) -> list[tuple[object, tuple | None]]:
        # The fan-out outcome aggregates children, so per-child shard
        # detail is recomputed by each child from the batch itself.
        targets: list[tuple[object, tuple | None]] = []
        for child in self.children:
            targets.extend(child.invalidation_targets(batch, None))
        return targets

    def read_targets(self) -> dict[str, object]:
        targets: dict[str, object] = {}
        for child in self.children:
            for name, target in child.read_targets().items():
                key = name
                suffix = 2
                while key in targets:
                    key = f"{name}{suffix}"
                    suffix += 1
                targets[key] = target
        return targets


# ----------------------------------------------------------------------
# Adapter registry
# ----------------------------------------------------------------------

#: (predicate, adapter factory) pairs tried in order by
#: :func:`as_write_backend`.
WRITE_ADAPTERS: list[tuple[Callable[[object], bool],
                           Callable[..., WriteBackend]]] = []


def register_write_adapter(predicate: Callable[[object], bool],
                           factory: Callable[..., WriteBackend]) -> None:
    """Register an automatic engine-object -> write-backend adapter."""
    WRITE_ADAPTERS.append((predicate, factory))


def as_write_backend(obj, spec: IngestSpec | None = None,
                     **kwargs) -> WriteBackend:
    """Adapt a raw engine object (or pass a WriteBackend through)."""
    if isinstance(obj, WriteBackend):
        return obj
    for attempt in range(2):
        for predicate, factory in WRITE_ADAPTERS:
            if predicate(obj):
                return factory(obj, spec=spec, **kwargs)
        if attempt == 0:
            # The storage layer registers its adapter on import; pull it
            # in lazily so IngestSession(TieredStore(...)) works without
            # the caller importing repro.storage first.
            from .. import storage  # noqa: F401
    raise IngestError(
        f"no write-backend adapter for {type(obj).__name__}; register one "
        "with repro.ingest.register_write_adapter or pass a WriteBackend")


register_write_adapter(lambda obj: isinstance(obj, DataCube), CubeWriteBackend)
register_write_adapter(lambda obj: isinstance(obj, DruidEngine),
                       DruidWriteBackend)
register_write_adapter(lambda obj: isinstance(obj, PackedSketchStore),
                       PackedStoreWriteBackend)
register_write_adapter(lambda obj: isinstance(obj, StreamingWindowMonitor),
                       WindowWriteBackend)
register_write_adapter(lambda obj: isinstance(obj, ClusterCoordinator),
                       ClusterWriteBackend)
register_write_adapter(
    lambda obj: isinstance(obj, (list, tuple)) and len(obj) > 0,
    FanOutWriteBackend)


# ----------------------------------------------------------------------
# Spec-driven target construction (the CLI's entry point)
# ----------------------------------------------------------------------

def build_target(spec: IngestSpec):
    """Build a fresh storage engine from a declarative ingest spec.

    Used when no engine exists yet (the CLI's ``ingest`` subcommand);
    sessions over existing engines adapt them directly instead.
    """
    if spec.backend is None:
        raise IngestError("building a target needs spec.backend set to "
                          "one of cube/druid/packed/window/cluster")
    if spec.backend in ("cube", "druid", "cluster") and not spec.dimensions:
        raise IngestError(
            f"a {spec.backend} target needs spec.dimensions")
    if spec.backend == "cube":
        return DataCube(CubeSchema(spec.dimensions),
                        lambda: MomentsSummary(k=spec.k,
                                               track_log=spec.track_log))
    if spec.backend == "druid":
        return DruidEngine(dimensions=spec.dimensions,
                           aggregators={"value":
                                        MomentsSketchAggregator(k=spec.k)},
                           granularity=spec.granularity or 3600.0)
    if spec.backend == "packed":
        return PackedSketchStore(k=spec.k, track_log=spec.track_log)
    if spec.backend == "window":
        if spec.pane_size is None or spec.window_panes is None:
            raise IngestError(
                "a window target needs spec.pane_size and spec.window_panes")
        threshold = (spec.threshold if spec.threshold is not None
                     else float("inf"))
        return StreamingWindowMonitor(pane_size=spec.pane_size,
                                      window_panes=spec.window_panes,
                                      threshold=threshold, k=spec.k)
    if spec.backend == "cluster":
        nodes = [f"node-{i}" for i in range(spec.nodes or 2)]
        return ClusterCoordinator(
            dimensions=spec.dimensions,
            aggregators={"value": MomentsSketchAggregator(k=spec.k)},
            num_shards=spec.num_shards or 16,
            replication=spec.replication or 2,
            granularity=spec.granularity or 3600.0, nodes=nodes)
    if spec.backend == "tiered":
        if spec.storage_dir is None:
            raise IngestError("a tiered target needs spec.storage_dir")
        from ..storage import DEFAULT_HOT_BUDGET, TieredStore
        return TieredStore(
            spec.storage_dir, k=spec.k, track_log=spec.track_log,
            dimensions=spec.dimensions,
            hot_budget_bytes=spec.hot_budget_bytes or DEFAULT_HOT_BUDGET)
    raise IngestError(f"cannot build a {spec.backend!r} target")
