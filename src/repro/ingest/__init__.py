"""Unified declarative ingestion API (the repo's single write surface).

One :class:`IngestSpec` describes a write session; an
:class:`IngestSession` buffers rows in a structure-of-arrays
:class:`WriteBuffer` and flushes them through vectorized micro-batches
to any registered :class:`WriteBackend` — data cube, Druid engine,
packed sketch store, streaming window monitor, or a replication-aware
:mod:`repro.cluster` coordinator — returning per-flush
:class:`IngestReport` objects and wiring straight into
:class:`~repro.api.QueryService` so freshly written data is immediately
queryable.  See ``examples/unified_ingest.py`` for one session feeding
three backends.
"""

from .backends import (ClusterWriteBackend, CubeWriteBackend,
                       DruidWriteBackend, FanOutWriteBackend,
                       PackedStoreWriteBackend, WindowWriteBackend,
                       WriteBackend, WriteOutcome, as_write_backend,
                       build_target, register_write_adapter)
from .buffer import WriteBatch, WriteBuffer, check_columns, make_batch
from .session import IngestSession, write_columns, write_rows
from .spec import BACKENDS, TRIGGERS, IngestReport, IngestSpec

__all__ = [
    "ClusterWriteBackend", "CubeWriteBackend", "DruidWriteBackend",
    "FanOutWriteBackend", "PackedStoreWriteBackend", "WindowWriteBackend",
    "WriteBackend", "WriteOutcome", "as_write_backend", "build_target",
    "register_write_adapter", "WriteBatch", "WriteBuffer", "check_columns",
    "make_batch", "IngestSession", "write_columns", "write_rows",
    "BACKENDS", "TRIGGERS", "IngestReport", "IngestSpec",
]
