"""Declarative ingestion descriptions and uniform per-flush reports.

:class:`IngestSpec` is the write-side twin of
:class:`~repro.api.QuerySpec`: one validated, JSON-round-trippable value
object that describes *how* rows should be ingested (target backend,
dimension schema, roll-up granularity, pane/shard policy,
dedup/idempotency key, flush triggers) independently of *which* storage
engine receives them.  :class:`~repro.ingest.session.IngestSession`
executes it, flushing buffered rows through vectorized micro-batches and
returning one :class:`IngestReport` per flush (rows, cells touched,
route/pack timing).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Mapping

from ..core.errors import IngestError

#: Write-backend kinds an IngestSpec may target (registry display names).
BACKENDS = ("cube", "druid", "packed", "window", "cluster", "fanout",
            "tiered")

#: Flush trigger names recorded on reports.
TRIGGERS = ("rows", "bytes", "explicit", "close")


@dataclass(frozen=True)
class IngestSpec:
    """One declarative description of a write session.

    Parameters
    ----------
    backend:
        Optional target backend kind (one of :data:`BACKENDS`).  Required
        when a target engine must be *built* from the spec (the CLI);
        sessions opened over an existing engine infer it.
    dimensions:
        Dimension schema, in column order.  Must match the target
        engine's schema when the target has one.
    k, track_log:
        Moments-sketch parameters used when building targets from the
        spec; existing engines keep their own.
    granularity:
        Roll-up time-bucket width for ``druid``/``cluster`` targets.
    pane_size, window_panes, threshold:
        Pane policy for ``window`` targets (rows per pane, panes per
        query window, alert threshold; ``threshold=None`` disables
        alerting).
    num_shards, replication, nodes:
        Shard policy for ``cluster`` targets built from the spec.
    dedup_key:
        Idempotency namespace.  When set, every flush is stamped with
        the sequence ``(dedup_key, flush_index)`` and replication-aware
        backends (the cluster) treat a replayed sequence as a no-op on
        every replica.  The key names one logical load: re-running the
        *same* load after a crash deduplicates exactly as intended,
        but reusing a key for a session carrying *different* rows will
        silently drop them (the report's ``replicas``/``cells`` fields
        show ``0`` when a flush was entirely deduplicated).
    flush_rows:
        Auto-flush once this many rows are buffered (``None`` disables
        the row-count trigger).
    flush_bytes:
        Auto-flush once the buffered columns exceed this byte budget
        (``None`` disables the byte trigger).
    max_pending_rows:
        Hard backpressure cap: with auto-flush disabled, an append that
        would exceed this raises
        :class:`~repro.core.errors.BackpressureError`.
    storage_dir:
        Home directory for a ``tiered`` target built from the spec
        (:class:`~repro.storage.TieredStore`).  Required for
        ``backend="tiered"``.
    hot_budget_bytes:
        Hot-tier byte budget for ``tiered`` targets: past it, flushes
        seal into immutable on-disk segments automatically.
    """

    backend: str | None = None
    dimensions: tuple[str, ...] = ()
    k: int = 10
    track_log: bool = True
    granularity: float | None = None
    pane_size: int | None = None
    window_panes: int | None = None
    threshold: float | None = None
    num_shards: int | None = None
    replication: int | None = None
    nodes: int | None = None
    dedup_key: str | None = None
    flush_rows: int | None = 100_000
    flush_bytes: int | None = None
    max_pending_rows: int | None = None
    storage_dir: str | None = None
    hot_budget_bytes: int | None = None

    def __post_init__(self):
        if self.backend is not None and self.backend not in BACKENDS:
            raise IngestError(f"unknown ingest backend {self.backend!r}; "
                              f"use one of {BACKENDS}")
        object.__setattr__(self, "dimensions",
                           tuple(str(d) for d in self.dimensions))
        if len(set(self.dimensions)) != len(self.dimensions):
            raise IngestError("duplicate dimension names")
        if int(self.k) < 1:
            raise IngestError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "track_log", bool(self.track_log))
        if self.granularity is not None:
            if float(self.granularity) <= 0:
                raise IngestError(
                    f"granularity must be positive, got {self.granularity}")
            object.__setattr__(self, "granularity", float(self.granularity))
        if self.threshold is not None:
            object.__setattr__(self, "threshold", float(self.threshold))
        if self.storage_dir is not None:
            object.__setattr__(self, "storage_dir", str(self.storage_dir))
        for name in ("pane_size", "window_panes", "num_shards", "replication",
                     "nodes", "flush_rows", "flush_bytes", "max_pending_rows",
                     "hot_budget_bytes"):
            value = getattr(self, name)
            if value is None:
                continue
            if int(value) < 1:
                raise IngestError(f"{name} must be positive, got {value}")
            object.__setattr__(self, name, int(value))
        if (self.flush_rows is not None and self.max_pending_rows is not None
                and self.max_pending_rows < self.flush_rows):
            raise IngestError(
                f"max_pending_rows ({self.max_pending_rows}) must be >= "
                f"flush_rows ({self.flush_rows})")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def sequence_for(self, flush_index: int) -> tuple | None:
        """The idempotency stamp for one flush (None without a dedup key)."""
        if self.dedup_key is None:
            return None
        return (self.dedup_key, int(flush_index))

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {}
        for name, default in type(self)._field_defaults().items():
            value = getattr(self, name)
            if value != default:
                payload[name] = (list(value) if isinstance(value, tuple)
                                 else value)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str)

    @classmethod
    def _field_defaults(cls) -> dict:
        return {f.name: f.default for f in dataclasses.fields(cls)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "IngestSpec":
        payload = dict(payload)
        known = cls._field_defaults()
        unknown = set(payload) - set(known)
        if unknown:
            raise IngestError(f"unknown ingest spec fields: {sorted(unknown)}")
        if "dimensions" in payload:
            payload["dimensions"] = tuple(payload["dimensions"])
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "IngestSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise IngestError(f"invalid ingest spec JSON: {exc}") from None
        if not isinstance(payload, Mapping):
            raise IngestError("ingest spec JSON must be an object")
        return cls.from_dict(payload)


@dataclass(frozen=True)
class IngestReport:
    """Uniform result of one flush through a write backend.

    ``cells`` counts the pre-aggregated cells the flush touched (cube
    cells, Druid ``(chunk, key)`` groups, packed-store rows, sealed
    panes, or cluster cell groups summed across shards); ``route_seconds``
    is shard/hashring routing time (cluster only) and ``pack_seconds``
    the vectorized accumulate/roll-up kernel time — the write-side
    analogue of the Eq. 2 merge term.
    """

    backend: str
    flush_index: int
    rows: int
    cells: int
    trigger: str = "explicit"
    route_seconds: float = 0.0
    pack_seconds: float = 0.0
    write_seconds: float = 0.0
    sequence: tuple | None = None
    alerts: int | None = None
    shards: int | None = None
    replicas: int | None = None

    def to_dict(self) -> dict:
        payload: dict = {"backend": self.backend,
                         "flush_index": self.flush_index,
                         "rows": self.rows, "cells": self.cells,
                         "trigger": self.trigger,
                         "route_seconds": self.route_seconds,
                         "pack_seconds": self.pack_seconds,
                         "write_seconds": self.write_seconds}
        if self.sequence is not None:
            payload["sequence"] = list(self.sequence)
        if self.alerts is not None:
            payload["alerts"] = self.alerts
        if self.shards is not None:
            payload["shards"] = self.shards
        if self.replicas is not None:
            payload["replicas"] = self.replicas
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=float)
