"""IngestSession: buffered, micro-batched writes over any write backend.

The session is the write-side twin of
:class:`~repro.api.QueryService`: rows (or columnar arrays) are appended
into a structure-of-arrays :class:`~repro.ingest.buffer.WriteBuffer`
and flushed through the target's :class:`~repro.ingest.backends
.WriteBackend` as vectorized micro-batches.  Flushes trigger on a
buffered row count, a byte budget, an explicit :meth:`IngestSession
.flush`, or session close, and each returns an
:class:`~repro.ingest.spec.IngestReport`.  After any flush the
session's backend is immediately queryable:
:meth:`IngestSession.query_service` wires the freshly written engine
into a :class:`~repro.api.QueryService`, closing the read+write loop
behind one declarative surface.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.errors import BackpressureError, IngestError
from ..optimizer.epochs import EPOCHS
from ..telemetry import TELEMETRY
from .backends import WriteBackend, as_write_backend
from .buffer import WriteBuffer, make_batch
from .spec import IngestReport, IngestSpec


def _bump_epochs(backend: WriteBackend, batch, outcome) -> None:
    """Advance the optimizer's flush-epoch clock for a landed write.

    Every engine the write touched gets its counter bumped — whole
    engine, or only the touched shards for replicated cluster writes —
    which is what lazily invalidates the multi-query optimizer's cached
    partials and responses.
    """
    for target, shards in backend.invalidation_targets(batch, outcome):
        if shards is None:
            EPOCHS.bump(target)
        elif shards:
            EPOCHS.bump_shards(target, shards)


class IngestSession:
    """One buffered write session against a single (or fan-out) target.

    Parameters
    ----------
    target:
        A storage engine (adapted via
        :func:`~repro.ingest.backends.as_write_backend`), an explicit
        :class:`~repro.ingest.backends.WriteBackend`, or a list of
        targets (fan-out).
    spec:
        The session's :class:`~repro.ingest.spec.IngestSpec` (or a dict
        / JSON string of one).  Field overrides may also be passed as
        keyword arguments.
    auto_flush:
        When True (default) the session flushes itself whenever a
        configured row/byte trigger fires; when False only explicit
        :meth:`flush` / :meth:`close` drain the buffer, and
        ``spec.max_pending_rows`` enforces backpressure.
    """

    def __init__(self, target, spec: IngestSpec | None = None, *,
                 auto_flush: bool = True, **overrides):
        spec = self._coerce_spec(spec, overrides)
        self.spec = spec
        self.backend: WriteBackend = as_write_backend(target, spec=spec)
        if spec.backend is not None and spec.backend != self.backend.name:
            raise IngestError(
                f"spec targets backend {spec.backend!r} but the session "
                f"was opened over {self.backend.name!r}")
        if (spec.dimensions and self.backend.dimensions
                and spec.dimensions != self.backend.dimensions):
            raise IngestError(
                f"spec dimensions {spec.dimensions} do not match the "
                f"target's schema {self.backend.dimensions}")
        self.auto_flush = bool(auto_flush)
        #: Guards the buffer and the flush bookkeeping.  Reentrant
        #: because append triggers flush inside the same critical
        #: section; flushes serialize deliberately — _flush_index
        #: stamps each drained batch for replica dedup, so two
        #: interleaved flushes must not race for the same stamp.
        self._lock = threading.RLock()
        self.buffer = WriteBuffer()
        self.reports: list[IngestReport] = []
        self.total_rows = 0
        self.total_cells = 0
        self.closed = False
        self._flush_index = 0

    @staticmethod
    def _coerce_spec(spec, overrides: dict) -> IngestSpec:
        if spec is None:
            return IngestSpec(**overrides)
        if isinstance(spec, str):
            spec = IngestSpec.from_json(spec)
        elif isinstance(spec, Mapping):
            spec = IngestSpec.from_dict(spec)
        if not isinstance(spec, IngestSpec):
            raise IngestError(
                f"cannot interpret {type(spec).__name__} as an IngestSpec")
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        return spec

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def pending_rows(self) -> int:
        with self._lock:
            return self.buffer.rows

    @property
    def pending_bytes(self) -> int:
        with self._lock:
            return self.buffer.nbytes

    def append_columns(self, values, dims: Sequence = (),
                       timestamps=None) -> int:
        """Append aligned columnar arrays; returns the rows buffered."""
        with self._lock:
            if self.closed:
                raise IngestError("cannot append to a closed ingest session")
            if not self.auto_flush and self.spec.max_pending_rows is not None:
                incoming = np.shape(values)[0] if np.ndim(values) else 1
                if self.buffer.rows + incoming > self.spec.max_pending_rows:
                    if TELEMETRY.enabled:
                        TELEMETRY.registry.counter(
                            "ingest_backpressure_total",
                            backend=self.backend.name).inc()
                    # Rejected *before* buffering, so the caller can flush
                    # and re-send these rows without double-counting.
                    raise BackpressureError(
                        f"appending {incoming} rows to {self.buffer.rows} "
                        f"pending would exceed max_pending_rows="
                        f"{self.spec.max_pending_rows}; flush first")
            added = self.buffer.append(values, dims=dims,
                                       timestamps=timestamps)
            self._after_append_locked()
            return added

    def append(self, rows: Iterable) -> int:
        """Append row objects — mappings or tuples — columnarized in one pass.

        A mapping row uses the backend's dimension names plus ``"value"``
        and (for time-bucketed backends) ``"timestamp"``.  A tuple row is
        ``(*dims, value)`` or ``(timestamp, *dims, value)``.
        """
        rows = list(rows)
        if not rows:
            return 0
        dimensions = self.backend.dimensions or self.spec.dimensions
        ndims = len(dimensions)
        if isinstance(rows[0], Mapping):
            with_time = "timestamp" in rows[0]
            needed = ((*dimensions, "value", "timestamp") if with_time
                      else (*dimensions, "value"))
            try:
                values = [row["value"] for row in rows]
                dims = [[row[d] for row in rows] for d in dimensions]
                timestamps = ([row["timestamp"] for row in rows]
                              if with_time else None)
            except KeyError as exc:
                raise IngestError(
                    f"every row mapping needs keys {list(needed)}; "
                    f"a row is missing {exc}") from None
        else:
            width = len(rows[0])
            if width not in (ndims + 1, ndims + 2):
                raise IngestError(
                    f"row tuples must be (*dims, value) or "
                    f"(timestamp, *dims, value) for {ndims} dimensions, "
                    f"got width {width}")
            if any(len(row) != width for row in rows):
                raise IngestError("row tuples have inconsistent widths")
            timestamps = ([row[0] for row in rows] if width == ndims + 2
                          else None)
            offset = 0 if timestamps is None else 1
            values = [row[-1] for row in rows]
            dims = [[row[offset + position] for row in rows]
                    for position in range(ndims)]
        return self.append_columns(values, dims=dims, timestamps=timestamps)

    def _after_append_locked(self) -> None:
        spec = self.spec
        if not self.auto_flush:
            return
        if spec.flush_rows is not None \
                and self.buffer.rows >= spec.flush_rows:
            self.flush(trigger="rows")
        elif spec.flush_bytes is not None \
                and self.buffer.nbytes >= spec.flush_bytes:
            self.flush(trigger="bytes")

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def flush(self, trigger: str = "explicit") -> IngestReport | None:
        """Drain the buffer through one vectorized write (None if empty).

        A failed write loses nothing: the rows are restored to the
        buffer and the flush index is not consumed, so retrying the
        flush re-sends the identical batch under the identical sequence
        stamp — shards that already applied it deduplicate instead of
        double-counting.  (Append nothing between a failed flush and its
        retry; new rows would change the batch behind a stamp some
        replicas may have recorded.)
        """
        with self._lock:
            if self.buffer.is_empty:
                return None
            sequence = self.spec.sequence_for(self._flush_index)
            batch = self.buffer.drain(sequence=sequence)
            # An *active* span around the write, so storage-layer spans
            # (tiered seal/compact) parent under the flush that caused them.
            span = (TELEMETRY.tracer.span("ingest.flush",
                                          backend=self.backend.name,
                                          trigger=trigger, rows=batch.rows,
                                          flush_index=self._flush_index)
                    if TELEMETRY.enabled else None)
            start = time.perf_counter()
            try:
                if span is None:
                    outcome = self.backend.write(batch)
                else:
                    with span:
                        outcome = self.backend.write(batch)
            except Exception:
                self.buffer.append(batch.values, dims=batch.dims,
                                   timestamps=batch.timestamps)
                if TELEMETRY.enabled:
                    TELEMETRY.registry.counter(
                        "ingest_write_errors_total",
                        backend=self.backend.name).inc()
                raise
            write_seconds = time.perf_counter() - start
            _bump_epochs(self.backend, batch, outcome)
            report = IngestReport(
                backend=self.backend.name, flush_index=self._flush_index,
                rows=batch.rows, cells=outcome.cells, trigger=trigger,
                route_seconds=outcome.route_seconds,
                pack_seconds=outcome.pack_seconds, write_seconds=write_seconds,
                sequence=sequence,
                alerts=(len(outcome.alerts) if outcome.alerts is not None
                        else None),
                shards=outcome.shards, replicas=outcome.replicas)
            self._flush_index += 1
            self.reports.append(report)
            self.total_rows += report.rows
            self.total_cells += report.cells
            if span is not None:
                registry = TELEMETRY.registry
                name = self.backend.name
                registry.counter("ingest_rows_total", backend=name).inc(report.rows)
                registry.counter("ingest_cells_total",
                                 backend=name).inc(report.cells)
                registry.counter("ingest_flushes_total", backend=name,
                                 trigger=trigger).inc()
                registry.histogram("ingest_flush_seconds",
                                   backend=name).observe(write_seconds)
            return report

    def close(self) -> IngestReport | None:
        """Flush any pending rows and seal the session against appends."""
        with self._lock:
            report = self.flush(trigger="close") if not self.closed else None
            self.closed = True
            return report

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read-side wiring
    # ------------------------------------------------------------------

    def query_service(self, config=None):
        """A :class:`~repro.api.QueryService` over this session's target(s).

        Pending rows are flushed first, so everything appended is
        visible; fan-out sessions register every child under its name.
        """
        from ..api import QueryService
        with self._lock:
            if not self.closed:
                self.flush()
        service = QueryService(config=config)
        for name, target in self.backend.read_targets().items():
            service.register(name, target)
        return service

    def query(self, spec, backend: str | None = None):
        """Flush, then execute one :class:`~repro.api.QuerySpec`."""
        return self.query_service().execute(spec, backend=backend)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            state = ("closed" if self.closed
                     else f"{self.buffer.rows} pending")
            return (f"IngestSession(backend={self.backend.name!r}, "
                    f"flushes={len(self.reports)}, rows={self.total_rows}, "
                    f"{state})")


# ----------------------------------------------------------------------
# One-shot helpers (the legacy entry points' shim target)
# ----------------------------------------------------------------------

def write_columns(target, values, dims: Sequence = (), timestamps=None,
                  sequence: tuple | None = None,
                  spec: IngestSpec | None = None) -> IngestReport:
    """Write one columnar batch to a target in a single flush.

    This is what the legacy per-engine ``ingest`` signatures shim to:
    exactly one batch, no buffering, so results are bit-for-bit what the
    pre-API entry points produced.  An all-empty batch is validated
    (arity, topology) and then written as a no-op — the legacy cluster
    entry point accepted zero-row polls.
    """
    backend = as_write_backend(target, spec=spec)
    batch = make_batch(values, dims=dims, timestamps=timestamps,
                       sequence=sequence)
    start = time.perf_counter()
    outcome = backend.write(batch)
    write_seconds = time.perf_counter() - start
    if batch.rows:
        _bump_epochs(backend, batch, outcome)
    return IngestReport(
        backend=backend.name, flush_index=0, rows=batch.rows,
        cells=outcome.cells, trigger="explicit",
        route_seconds=outcome.route_seconds,
        pack_seconds=outcome.pack_seconds, write_seconds=write_seconds,
        sequence=sequence,
        alerts=len(outcome.alerts) if outcome.alerts is not None else None,
        shards=outcome.shards, replicas=outcome.replicas)


def write_rows(target, rows: Iterable, spec: IngestSpec | None = None,
               **session_kwargs) -> list[IngestReport]:
    """Open a session, append row objects, close; returns the reports."""
    with IngestSession(target, spec=spec, **session_kwargs) as session:
        session.append(rows)
    return session.reports
