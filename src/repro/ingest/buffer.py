"""Structure-of-arrays write buffering for ingest sessions.

A :class:`WriteBuffer` accumulates appended rows as *columns* — one
values array, one array per dimension, and (when the target rolls up by
time) one timestamps array — so a flush hands the write backend
contiguous arrays ready for the vectorized accumulate kernels
(:meth:`~repro.store.PackedSketchStore.batch_accumulate` and the
engines' lexsort-and-segment roll-ups) without any per-row Python work.

:class:`WriteBatch` is the unit a backend receives: the drained columns
plus the optional idempotency ``sequence`` stamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import IngestError
from ..core.grouping import check_columns  # noqa: F401  (canonical home)


@dataclass(frozen=True)
class WriteBatch:
    """One flush-sized unit of columnar rows handed to a write backend."""

    values: np.ndarray
    dims: tuple = ()
    timestamps: np.ndarray | None = None
    #: Idempotency stamp ``(dedup_key, flush_index)`` or ``None``.
    sequence: tuple | None = None

    @property
    def rows(self) -> int:
        return int(self.values.shape[0])


def make_batch(values, dims: Sequence = (), timestamps=None,
               sequence: tuple | None = None) -> WriteBatch:
    """Coerce raw columns into a :class:`WriteBatch` (floats validated)."""
    values = np.atleast_1d(np.asarray(values, dtype=float))
    columns = tuple(np.atleast_1d(np.asarray(col)) for col in dims)
    ts = (None if timestamps is None
          else np.atleast_1d(np.asarray(timestamps, dtype=float)))
    return WriteBatch(values=values, dims=columns, timestamps=ts,
                      sequence=sequence)


class WriteBuffer:
    """Columnar (SoA) append buffer behind an ingest session.

    Appends are O(1) list pushes of array chunks; :meth:`drain`
    concatenates each column once.  The first append fixes the shape —
    dimension arity and timestamp presence — and later appends must
    match, so a drained batch is always rectangular.
    """

    def __init__(self):
        self._values: list[np.ndarray] = []
        self._dims: list[list[np.ndarray]] | None = None
        self._timestamps: list[np.ndarray] | None = None
        self._has_timestamps: bool | None = None
        self._rows = 0
        self._nbytes = 0

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def nbytes(self) -> int:
        """Approximate buffered payload size (8 bytes per object cell)."""
        return self._nbytes

    @property
    def is_empty(self) -> bool:
        return self._rows == 0

    def append(self, values, dims: Sequence = (), timestamps=None) -> int:
        """Append aligned column chunks; returns the rows added."""
        values = np.atleast_1d(np.asarray(values, dtype=float))
        if values.ndim != 1:
            raise IngestError("values must be a one-dimensional column")
        columns = [np.atleast_1d(np.asarray(col)) for col in dims]
        check_columns(len(columns), columns, values, timestamps,
                      context="buffer append")
        if self._dims is None:
            self._dims = [[] for _ in columns]
            self._has_timestamps = timestamps is not None
        elif len(columns) != len(self._dims):
            raise IngestError(
                f"buffer holds {len(self._dims)} dimension columns, "
                f"append has {len(columns)}")
        elif (timestamps is not None) != self._has_timestamps:
            raise IngestError(
                "cannot mix timestamped and untimestamped appends in one "
                "buffer")
        self._values.append(values)
        self._nbytes += values.nbytes
        for store, column in zip(self._dims, columns):
            store.append(column)
            self._nbytes += (column.nbytes if column.dtype != object
                             else column.size * 8)
        if timestamps is not None:
            ts = np.atleast_1d(np.asarray(timestamps, dtype=float))
            if self._timestamps is None:
                self._timestamps = []
            self._timestamps.append(ts)
            self._nbytes += ts.nbytes
        self._rows += int(values.shape[0])
        return int(values.shape[0])

    def drain(self, sequence: tuple | None = None) -> WriteBatch:
        """Concatenate every buffered column into one batch and reset."""
        if self.is_empty:
            raise IngestError("cannot drain an empty write buffer")
        values = (self._values[0] if len(self._values) == 1
                  else np.concatenate(self._values))
        dims = tuple((chunks[0] if len(chunks) == 1 else np.concatenate(chunks))
                     for chunks in (self._dims or []))
        timestamps = None
        if self._timestamps:
            timestamps = (self._timestamps[0] if len(self._timestamps) == 1
                          else np.concatenate(self._timestamps))
        batch = WriteBatch(values=values, dims=dims, timestamps=timestamps,
                           sequence=sequence)
        self._values = []
        self._dims = None
        self._timestamps = None
        self._has_timestamps = None
        self._rows = 0
        self._nbytes = 0
        return batch
