"""Consistent-hash shard placement with configurable replication.

The cluster layer partitions the dimension-key space into a fixed number
of *shards* (every cell key hashes to exactly one shard) and places each
shard on ``replication`` nodes chosen by consistent hashing: every node
projects ``vnodes`` virtual points onto a 64-bit ring, and a shard's
owners are the first ``replication`` *distinct* nodes found walking
clockwise from the shard's own ring point.  This is the placement scheme
of Dynamo-style stores and of the partition/replica design in the LSST
database paper (PAPERS.md): adding or removing one node only reassigns
the shards whose clockwise walk crosses that node's virtual points — in
expectation ``K / N`` of ``K`` shards on ``N`` nodes — instead of
rehashing everything, which is what keeps rebalances cheap when the
moments sketch makes the *data* movement itself a few hundred bytes per
shard.

Hashes are :func:`stable_hash` (BLAKE2b) rather than Python's salted
``hash``, so placement is deterministic across processes and test runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from ..core.errors import ClusterError

#: Default virtual points per node; more points = smoother balance.
DEFAULT_VNODES = 64


def _normalize(part):
    """Collapse equal-comparing keys onto one repr before hashing.

    Shard routing must agree with the engines' ``==`` cell matching:
    numpy scalars collapse to their Python values, and the numeric tower
    folds together (``True == 1 == 1.0`` must all hash alike, so bools
    and integral floats become ints).  Without this, a point query
    filtered on ``1.0`` would route to a different shard than cells
    ingested under ``1``.
    """
    if isinstance(part, tuple):
        return tuple(_normalize(item) for item in part)
    item = getattr(part, "item", None)
    if callable(item):
        part = item()
    if isinstance(part, bool):
        return int(part)
    if isinstance(part, float) and part.is_integer():
        return int(part)
    return part


def stable_hash(obj) -> int:
    """Deterministic 64-bit hash of a (possibly nested) key.

    Python's builtin ``hash`` is salted per process; shard placement must
    agree between a coordinator and any future process reading the same
    layout, so keys are hashed by BLAKE2b over their normalized ``repr``.
    """
    data = repr(_normalize(obj)).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def shard_of(key, num_shards: int) -> int:
    """The shard owning a dimension-key tuple (all its cells colocate)."""
    if num_shards < 1:
        raise ClusterError(f"num_shards must be positive, got {num_shards}")
    return stable_hash(("shard-key", key)) % num_shards


class HashRing:
    """Consistent-hash ring mapping shard ids to replica owner sets."""

    def __init__(self, nodes: Iterable[str] = (), replication: int = 2,
                 vnodes: int = DEFAULT_VNODES):
        if int(replication) < 1:
            raise ClusterError(f"replication must be >= 1, got {replication}")
        if int(vnodes) < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.replication = int(replication)
        self.vnodes = int(vnodes)
        self.nodes: set[str] = set()
        self._hashes: list[int] = []      # sorted ring positions
        self._points: list[str] = []      # node id at each position
        for node_id in nodes:
            self.add_node(node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_node(self, node_id: str) -> None:
        """Project the node's virtual points onto the ring."""
        if node_id in self.nodes:
            raise ClusterError(f"node {node_id!r} already on the ring")
        self.nodes.add(node_id)
        for i in range(self.vnodes):
            h = stable_hash(("vnode", node_id, i))
            at = bisect.bisect(self._hashes, h)
            self._hashes.insert(at, h)
            self._points.insert(at, node_id)

    def remove_node(self, node_id: str) -> None:
        """Remove every virtual point of the node."""
        if node_id not in self.nodes:
            raise ClusterError(f"node {node_id!r} not on the ring")
        self.nodes.discard(node_id)
        keep = [i for i, point in enumerate(self._points) if point != node_id]
        self._hashes = [self._hashes[i] for i in keep]
        self._points = [self._points[i] for i in keep]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owners(self, shard: int) -> tuple[str, ...]:
        """The shard's replica owners: first ``replication`` distinct
        nodes clockwise from the shard's ring point (fewer only when the
        ring has fewer nodes than the replication factor)."""
        if not self.nodes:
            raise ClusterError("the ring has no nodes")
        h = stable_hash(("shard", int(shard)))
        start = bisect.bisect(self._hashes, h)
        owners: list[str] = []
        want = min(self.replication, len(self.nodes))
        for step in range(len(self._points)):
            node_id = self._points[(start + step) % len(self._points)]
            if node_id not in owners:
                owners.append(node_id)
                if len(owners) == want:
                    break
        return tuple(owners)

    def primary(self, shard: int) -> str:
        """The first replica owner (ingest and default query target)."""
        return self.owners(shard)[0]

    def placement(self, num_shards: int) -> dict[int, tuple[str, ...]]:
        """Owner sets for every shard id in ``range(num_shards)``."""
        return {shard: self.owners(shard) for shard in range(num_shards)}

    @staticmethod
    def moved_shards(before: dict[int, Sequence[str]],
                     after: dict[int, Sequence[str]]) -> list[int]:
        """Shards whose owner *set* changed between two placements — the
        shards a rebalance must copy or drop somewhere."""
        return [shard for shard in after
                if set(after[shard]) != set(before.get(shard, ()))]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HashRing(nodes={len(self.nodes)}, "
                f"replication={self.replication}, vnodes={self.vnodes})")
