"""Unified-API adapter: run any :class:`~repro.api.QuerySpec` on a cluster.

Registers :class:`ClusterBackend` with :func:`repro.api.as_backend`, so
``QueryService(cluster=coordinator)`` (or ``as_backend(coordinator)``)
executes every existing query kind — ``quantile``, ``cdf``,
``threshold_count``, ``group_by``, ``top_n`` — against the scatter-gather
broker unchanged.  The broker's route/scatter/merge phases map onto the
API's cost decomposition (route -> ``planner_seconds``, scatter + gather
merge -> ``merge_seconds``; the service adds ``solve_seconds``), and the
full four-phase profile stays available on
:attr:`ClusterBackend.last_profile`.

``QueryService.execute_batch`` shares cluster scans exactly like any
other backend: specs with equal scan signatures reuse one scatter-gather
round's merged partials, so N quantile specs over the same filter cost
one fan-out and one solve.

Grouped kinds hand the gathered per-shard partials straight to the
service's batched estimation layer: every group's merged sketch joins
one stacked max-entropy solve (``timings.solve_route == "batched"``,
``solve_calls == 1``), so cluster group-bys and top-n rankings pay one
Newton pass regardless of group count.
"""

from __future__ import annotations

from ..api.backends import (Backend, GroupRollupResult, RollupResult,
                            _state_summary, register_adapter)
from ..api.spec import QuerySpec
from ..core.errors import QueryError
from ..druid.aggregators import MomentsSketchAggregator
from ..optimizer.epochs import EPOCHS
from .broker import DEFAULT_THREADS, ClusterBroker, ScatterProfile
from .coordinator import ClusterCoordinator


class ClusterBackend(Backend):
    """Adapter over a :class:`ClusterBroker` / :class:`ClusterCoordinator`.

    ``spec.measure`` selects the aggregator exactly as on the Druid
    backend; when omitted, a single registered aggregator is implicit,
    else the first moments-sketch aggregator.
    """

    name = "cluster"

    def __init__(self, cluster: ClusterCoordinator | ClusterBroker,
                 threads: int | None = None):
        if isinstance(cluster, ClusterBroker):
            self.broker = cluster
        else:
            self.broker = ClusterBroker(
                cluster,
                threads=threads if threads is not None else DEFAULT_THREADS)
        self.coordinator = self.broker.coordinator

    def cache_target(self):
        return self.coordinator

    def scan_epoch(self, spec: QuerySpec) -> tuple:
        """Per-shard flush-epoch vector for the shards this scan reads.

        A point query (every routing dimension filtered to one value, no
        group-by) touches exactly one shard, so its cached answer stays
        valid across writes that land on other shards.  Anything broader
        reads every shard and keys on the full epoch vector.
        """
        dims = tuple(self.coordinator.dimensions)
        filters = spec.filters_dict()
        if (spec.group_dimension is None and dims
                and all(dim in filters for dim in dims)):
            key = tuple(filters[dim] for dim in dims)
            shards = (self.coordinator.shard_of_key(key),)
        else:
            shards = tuple(range(self.coordinator.num_shards))
        return EPOCHS.epoch_vector(self.coordinator, shards)

    @property
    def supports_packed(self) -> bool:  # type: ignore[override]
        return bool(self.coordinator.packed_names)

    @property
    def last_profile(self) -> ScatterProfile | None:
        """Route/scatter/merge phase timings of the last scatter round."""
        return self.broker.last_profile

    def _aggregator(self, spec: QuerySpec) -> str:
        if spec.measure is not None:
            if spec.measure not in self.coordinator.aggregators:
                raise QueryError(
                    f"unknown aggregator {spec.measure!r}; registered: "
                    f"{sorted(self.coordinator.aggregators)}")
            return spec.measure
        names = list(self.coordinator.aggregators)
        if len(names) == 1:
            return names[0]
        for name, factory in self.coordinator.aggregators.items():
            if isinstance(factory, MomentsSketchAggregator):
                return name
        raise QueryError(
            f"ambiguous measure; set spec.measure to one of {sorted(names)}")

    def _route_of(self, aggregator: str) -> str:
        return ("packed" if aggregator in self.coordinator.packed_names
                else "loop")

    def rollup(self, spec: QuerySpec) -> RollupResult:
        aggregator = self._aggregator(spec)
        merged = self.broker.scatter_rollup(aggregator, spec.filters_dict(),
                                            spec.interval)
        if merged is None:
            raise QueryError("query matched no cells")
        profile = self.broker.last_profile
        assert profile is not None
        return RollupResult(
            summary=_state_summary(merged),
            cells_scanned=profile.cells_scanned,
            merge_calls=profile.shards_scanned,
            planner_seconds=profile.route_seconds,
            merge_seconds=profile.scatter_seconds + profile.merge_seconds,
            route=self._route_of(aggregator))

    def group_rollup(self, spec: QuerySpec) -> GroupRollupResult:
        if spec.interval is not None:
            # Mirror the Druid backend: group scans are all-time until
            # group_states learns intervals.
            raise QueryError(
                "the cluster backend does not support intervals on grouped "
                "queries; drop the interval")
        aggregator = self._aggregator(spec)
        groups = self.broker.scatter_group(aggregator, spec.group_dimension,
                                           spec.filters_dict())
        profile = self.broker.last_profile
        assert profile is not None
        return GroupRollupResult(
            groups={value: _state_summary(state)
                    for value, state in groups.items()},
            cells_scanned=profile.cells_scanned,
            merge_calls=len(groups),
            planner_seconds=profile.route_seconds,
            merge_seconds=profile.scatter_seconds + profile.merge_seconds,
            route=self._route_of(aggregator))


def timings_breakdown(backend: ClusterBackend, solve_seconds: float = 0.0
                      ) -> dict[str, float]:
    """The cluster's four-phase timing dict (route/scatter/merge/solve)."""
    profile = backend.last_profile
    if profile is None:
        return {"route_seconds": 0.0, "scatter_seconds": 0.0,
                "merge_seconds": 0.0, "solve_seconds": solve_seconds}
    return {"route_seconds": profile.route_seconds,
            "scatter_seconds": profile.scatter_seconds,
            "merge_seconds": profile.merge_seconds,
            "solve_seconds": solve_seconds}


register_adapter(
    lambda obj: isinstance(obj, (ClusterCoordinator, ClusterBroker)),
    ClusterBackend)


__all__ = ["ClusterBackend", "timings_breakdown"]
