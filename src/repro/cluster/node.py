"""Data nodes: per-shard storage and node-local partial aggregation.

A :class:`DataNode` owns one miniature :class:`~repro.druid.DruidEngine`
per shard it hosts, so ingestion runs through the *existing* Druid-style
roll-up path (time-bucketed cells, packed per-segment
:class:`~repro.store.PackedSketchStore` rows for moments aggregators)
and node-local scans reuse the engine's packed vectorized reductions.
Shard engines run with ``processing_threads=1``: parallelism in the
cluster comes from the broker fanning out *across nodes*, and a
single-threaded node-local fold keeps every shard partial a strict left
fold — which is what makes replicas interchangeable bit-for-bit.

The unit of replication and rebalance is the shard snapshot
(:meth:`DataNode.export_shard` / :meth:`DataNode.import_shard`): packed
sketch stores travel through their binary wire format (exact float64
round trip) and object-layout aggregator states are copied, so a replica
reconstructed on another node answers every query with the identical
bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import ClusterError
from ..core.grouping import check_columns
from ..druid.aggregators import AggregatorFactory, AggregatorState
from ..druid.engine import DruidEngine, Segment
from ..store import PackedSketchStore


@dataclass
class ShardPartial:
    """One shard's merged partial state for a scatter-gather query."""

    shard: int
    state: AggregatorState
    cells_scanned: int

    def size_bytes(self) -> int:
        """Approximate wire size of the partial (the ~200-byte payload)."""
        summary = getattr(self.state, "summary", None)
        if summary is not None and hasattr(summary, "size_bytes"):
            return int(summary.size_bytes())
        return 8


@dataclass
class ShardSnapshot:
    """A transferable bit-exact copy of one shard's engine state.

    ``applied`` carries the shard's idempotency ledger — the ingest
    sequence stamps already rolled up — so a replica reconstructed from
    a snapshot keeps treating replayed batches as no-ops.
    """

    shard: int
    segments: list[Segment]
    applied: set = field(default_factory=set)

    def size_bytes(self) -> int:
        """Serialized footprint of the snapshot's packed stores."""
        return sum(store.size_bytes()
                   for segment in self.segments
                   for store in segment.packed.values())


def _clone_segment(segment: Segment) -> Segment:
    """Deep, bit-exact copy of a segment (states copied, stores re-read
    through the binary wire format)."""
    out = Segment(chunk=segment.chunk)
    out.cells = {key: {name: state.copy() for name, state in cell.items()}
                 for key, cell in segment.cells.items()}
    out.packed = {name: PackedSketchStore.from_bytes(store.to_bytes())
                  for name, store in segment.packed.items()}
    out.packed_rows = {name: dict(rows)
                       for name, rows in segment.packed_rows.items()}
    return out


class DataNode:
    """One simulated cluster node hosting a set of shards.

    Parameters mirror :class:`~repro.druid.DruidEngine`; every hosted
    shard gets its own engine built from the shared aggregator factories.
    """

    def __init__(self, node_id: str, dimensions: Sequence[str],
                 aggregators: Mapping[str, AggregatorFactory],
                 granularity: float = 3600.0, packed_moments: bool = True):
        self.node_id = str(node_id)
        self.dimensions = tuple(dimensions)
        self.aggregators = dict(aggregators)
        self.granularity = float(granularity)
        self.packed_moments = bool(packed_moments)
        self.alive = True
        self.shards: dict[int, DruidEngine] = {}
        #: Per-shard idempotency ledgers: ingest sequence stamps applied.
        self._applied: dict[int, set] = {}

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------

    def _shard_engine(self, shard: int) -> DruidEngine:
        engine = self.shards.get(shard)
        if engine is None:
            engine = DruidEngine(dimensions=self.dimensions,
                                 aggregators=self.aggregators,
                                 granularity=self.granularity,
                                 processing_threads=1,
                                 packed_moments=self.packed_moments)
            self.shards[shard] = engine
        return engine

    @property
    def owned_shards(self) -> tuple[int, ...]:
        return tuple(sorted(self.shards))

    @property
    def num_cells(self) -> int:
        return sum(engine.num_cells for engine in self.shards.values())

    def drop_shard(self, shard: int) -> None:
        self.shards.pop(shard, None)
        self._applied.pop(shard, None)

    def export_shard(self, shard: int) -> ShardSnapshot:
        """Snapshot a hosted shard for replication / rebalance."""
        engine = self.shards.get(shard)
        if engine is None:
            raise ClusterError(
                f"node {self.node_id!r} does not host shard {shard}")
        return ShardSnapshot(
            shard=shard,
            segments=[_clone_segment(segment)
                      for segment in engine.segments.values()],
            applied=set(self._applied.get(shard, ())))

    def import_shard(self, snapshot: ShardSnapshot) -> None:
        """Install a snapshot, replacing any existing copy of the shard."""
        engine = DruidEngine(dimensions=self.dimensions,
                             aggregators=self.aggregators,
                             granularity=self.granularity,
                             processing_threads=1,
                             packed_moments=self.packed_moments)
        for segment in snapshot.segments:
            engine.segments[segment.chunk] = segment
        self.shards[snapshot.shard] = engine
        self._applied[snapshot.shard] = set(snapshot.applied)

    # ------------------------------------------------------------------
    # Failure simulation
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the node stops answering until restored."""
        self.alive = False

    def restore(self) -> None:
        """Low-level revive (simulation only): flips the node alive
        without resyncing state.  Use
        :meth:`~repro.cluster.coordinator.ClusterCoordinator.restore_node`
        to rejoin a cluster safely — a node that missed ingests while
        down would otherwise serve stale answers."""
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise ClusterError(f"node {self.node_id!r} is down")

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest_shard(self, shard: int, timestamps: np.ndarray,
                     dimension_columns: Sequence[np.ndarray],
                     values: np.ndarray,
                     sequence: tuple | None = None) -> int | None:
        """Roll one shard sub-batch up through the standard Druid path.

        ``sequence`` is the batch's idempotency stamp (see
        :class:`~repro.ingest.ClusterWriteBackend`): a stamp this shard
        already applied makes the call a no-op, so replayed batches
        cannot double-count on any replica.  Returns the number of
        ``(chunk, key)`` groups touched, or ``None`` when deduplicated.
        """
        self._check_alive()
        check_columns(len(self.dimensions), dimension_columns, values,
                      timestamps, needs_timestamps=True,
                      context=f"shard {shard} ingest")
        if sequence is not None:
            applied = self._applied.setdefault(shard, set())
            if sequence in applied:
                return None
        groups = self._shard_engine(shard)._rollup_rows(
            timestamps, dimension_columns, values)
        if sequence is not None:
            applied.add(sequence)
        return groups

    # ------------------------------------------------------------------
    # Node-local scatter work
    # ------------------------------------------------------------------

    def shard_partials(self, aggregator: str, shards: Sequence[int],
                       filters: Mapping[str, object] | None = None,
                       interval: tuple[float, float] | None = None
                       ) -> list[ShardPartial]:
        """One merged partial per requested shard with matching cells.

        Packed moments aggregators reduce each shard's matching rows with
        vectorized per-segment ``batch_merge`` calls; other aggregators
        fold their object states.  Either way a shard's partial is a
        strict left fold over its cells in ingestion order, so it does
        not depend on which replica computed it.
        """
        self._check_alive()
        partials: list[ShardPartial] = []
        for shard in shards:
            engine = self.shards.get(shard)
            if engine is None:
                continue
            if aggregator in engine._packed_names:
                refs = engine._matching_packed_rows(aggregator, filters,
                                                    interval)
                if not refs:
                    continue
                scanned = sum(rows.size for _, rows in refs)
                # The same fold DruidBackend.rollup runs on a flat
                # engine, which is what keeps shard partials bit-exact
                # with shard-aligned single-process execution.
                sketch = DruidEngine.fold_packed_refs(refs)
                state = engine._wrap_packed(aggregator, sketch)
            else:
                states = engine._matching_states(aggregator, filters, interval)
                if not states:
                    continue
                scanned = len(states)
                state = engine._merge_states(states)
            partials.append(ShardPartial(shard=shard, state=state,
                                         cells_scanned=scanned))
        return partials

    def group_partials(self, aggregator: str, shards: Sequence[int],
                       dimension: str,
                       filters: Mapping[str, object] | None = None
                       ) -> list[tuple[int, dict, int]]:
        """Per-shard grouped partials: (shard, {value: state}, cells)."""
        self._check_alive()
        out: list[tuple[int, dict, int]] = []
        for shard in shards:
            engine = self.shards.get(shard)
            if engine is None:
                continue
            groups = engine.group_states(aggregator, dimension, filters)
            if groups:
                out.append((shard, groups, engine.num_cells))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return (f"DataNode({self.node_id!r}, shards={len(self.shards)}, "
                f"cells={self.num_cells}, {state})")
