"""Data nodes: per-shard storage and node-local partial aggregation.

A :class:`DataNode` owns one miniature :class:`~repro.druid.DruidEngine`
per shard it hosts, so ingestion runs through the *existing* Druid-style
roll-up path (time-bucketed cells, packed per-segment
:class:`~repro.store.PackedSketchStore` rows for moments aggregators)
and node-local scans reuse the engine's packed vectorized reductions.
Shard engines run with ``processing_threads=1``: parallelism in the
cluster comes from the broker fanning out *across nodes*, and a
single-threaded node-local fold keeps every shard partial a strict left
fold — which is what makes replicas interchangeable bit-for-bit.

The unit of replication and rebalance is the shard snapshot
(:meth:`DataNode.export_shard` / :meth:`DataNode.import_shard`): packed
sketch stores travel through their binary wire format (exact float64
round trip) and object-layout aggregator states are copied, so a replica
reconstructed on another node answers every query with the identical
bits.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import ClusterError
from ..core.grouping import check_columns
from ..druid.aggregators import AggregatorFactory, AggregatorState
from ..druid.engine import DruidEngine, Segment
from ..store import PackedSketchStore
from ..telemetry import TELEMETRY, LogHistogram

#: Per-shard segment-file manifest name (see :meth:`DataNode.export_shard_files`).
SHARD_MANIFEST = "SHARD.json"


def _state_size(state: AggregatorState) -> int:
    """Approximate wire size of one partial state (the ~200-byte payload)."""
    summary = getattr(state, "summary", None)
    if summary is not None and hasattr(summary, "size_bytes"):
        return int(summary.size_bytes())
    return 8


@dataclass
class ShardPartial:
    """One shard's merged partial state for a scatter-gather query.

    ``telemetry`` (present only when the telemetry plane is enabled)
    carries the shard's detached span payload — and, on one partial per
    reply, a binary :class:`~repro.telemetry.LogHistogram` partial of
    per-shard scan latencies — so the broker can adopt the spans into
    its trace and fold the histogram into the process registry, exactly
    like it folds the sketch partials themselves.
    """

    shard: int
    state: AggregatorState
    cells_scanned: int
    telemetry: dict | None = None

    def size_bytes(self) -> int:
        """Approximate wire size of the partial (the ~200-byte payload)."""
        return _state_size(self.state)


@dataclass
class ShardSnapshot:
    """A transferable bit-exact copy of one shard's engine state.

    ``applied`` carries the shard's idempotency ledger — the ingest
    sequence stamps already rolled up — so a replica reconstructed from
    a snapshot keeps treating replayed batches as no-ops.
    """

    shard: int
    segments: list[Segment]
    applied: set = field(default_factory=set)

    def size_bytes(self) -> int:
        """Serialized footprint of the snapshot's packed stores."""
        return sum(store.size_bytes()
                   for segment in self.segments
                   for store in segment.packed.values())


def _clone_segment(segment: Segment) -> Segment:
    """Deep, bit-exact copy of a segment (states copied, stores re-read
    through the binary wire format)."""
    out = Segment(chunk=segment.chunk)
    out.cells = {key: {name: state.copy() for name, state in cell.items()}
                 for key, cell in segment.cells.items()}
    out.packed = {name: PackedSketchStore.from_bytes(store.to_bytes())
                  for name, store in segment.packed.items()}
    out.packed_rows = {name: dict(rows)
                       for name, rows in segment.packed_rows.items()}
    return out


class DataNode:
    """One simulated cluster node hosting a set of shards.

    Parameters mirror :class:`~repro.druid.DruidEngine`; every hosted
    shard gets its own engine built from the shared aggregator factories.
    """

    def __init__(self, node_id: str, dimensions: Sequence[str],
                 aggregators: Mapping[str, AggregatorFactory],
                 granularity: float = 3600.0, packed_moments: bool = True):
        self.node_id = str(node_id)
        self.dimensions = tuple(dimensions)
        self.aggregators = dict(aggregators)
        self.granularity = float(granularity)
        self.packed_moments = bool(packed_moments)
        self.alive = True
        self.shards: dict[int, DruidEngine] = {}
        #: Per-shard idempotency ledgers: ingest sequence stamps applied.
        self._applied: dict[int, set] = {}

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------

    def _shard_engine(self, shard: int) -> DruidEngine:
        engine = self.shards.get(shard)
        if engine is None:
            engine = DruidEngine(dimensions=self.dimensions,
                                 aggregators=self.aggregators,
                                 granularity=self.granularity,
                                 processing_threads=1,
                                 packed_moments=self.packed_moments)
            self.shards[shard] = engine
        return engine

    @property
    def owned_shards(self) -> tuple[int, ...]:
        return tuple(sorted(self.shards))

    @property
    def num_cells(self) -> int:
        return sum(engine.num_cells for engine in self.shards.values())

    def drop_shard(self, shard: int) -> None:
        self.shards.pop(shard, None)
        self._applied.pop(shard, None)

    def export_shard(self, shard: int) -> ShardSnapshot:
        """Snapshot a hosted shard for replication / rebalance."""
        engine = self.shards.get(shard)
        if engine is None:
            raise ClusterError(
                f"node {self.node_id!r} does not host shard {shard}")
        return ShardSnapshot(
            shard=shard,
            segments=[_clone_segment(segment)
                      for segment in engine.segments.values()],
            applied=set(self._applied.get(shard, ())))

    def import_shard(self, snapshot: ShardSnapshot) -> None:
        """Install a snapshot, replacing any existing copy of the shard."""
        engine = DruidEngine(dimensions=self.dimensions,
                             aggregators=self.aggregators,
                             granularity=self.granularity,
                             processing_threads=1,
                             packed_moments=self.packed_moments)
        for segment in snapshot.segments:
            engine.segments[segment.chunk] = segment
        self.shards[snapshot.shard] = engine
        self._applied[snapshot.shard] = set(snapshot.applied)

    # ------------------------------------------------------------------
    # Segment-granular file replication
    # ------------------------------------------------------------------

    def export_shard_files(self, shard: int, directory) -> dict:
        """Persist a shard as content-named segment files plus a manifest.

        Each ``(chunk, aggregator)`` packed store becomes one
        :mod:`repro.storage.format` segment file named by its content
        checksum, so an unchanged store maps to an unchanged file name —
        a re-export after incremental ingest rewrites only the chunks
        that actually changed, and a replica syncing from the directory
        copies only names it is missing (segment-granular replication,
        vs shipping the full-store blob snapshot every time).  The
        shard manifest (``SHARD.json``, atomic rename) records the live
        file set, chunk mapping, and the idempotency ledger.

        Restricted to all-packed engines: object-layout aggregator
        states have no segment-file form, so such shards must travel as
        :class:`ShardSnapshot` blobs.  Returns ``{"files", "bytes",
        "bytes_written", "manifest"}`` where ``bytes_written`` counts
        only newly materialized segment bytes.
        """
        from ..storage.format import build_segment_bytes, canonical_key

        engine = self.shards.get(shard)
        if engine is None:
            raise ClusterError(
                f"node {self.node_id!r} does not host shard {shard}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        entries: list[dict] = []
        live_files: set[str] = set()
        total = written = 0
        for chunk in sorted(engine.segments):
            segment = engine.segments[chunk]
            if any(cell for cell in segment.cells.values()):
                raise ClusterError(
                    "segment-file export needs all-packed aggregators; "
                    f"shard {shard} chunk {chunk} holds object states")
            for name in sorted(segment.packed):
                store = segment.packed[name]
                rows = segment.packed_rows.get(name, {})
                keys = [None] * len(store)
                for key, row in rows.items():
                    keys[row] = canonical_key(key)
                if any(key is None for key in keys):
                    raise ClusterError(
                        f"shard {shard} chunk {chunk} aggregator {name!r} "
                        "has unkeyed packed rows; cannot export")
                # first_seen = the store's own row numbering, so import
                # can rebuild rows in the original ingest order.
                blob = build_segment_bytes(store, keys,
                                           np.arange(len(store)))
                file_name = (f"{name}-{zlib.crc32(blob):08x}"
                             f"{len(blob):x}.seg")
                path = directory / file_name
                if not path.is_file():
                    tmp = directory / (file_name + ".tmp")
                    with open(tmp, "wb") as stream:
                        stream.write(blob)
                        stream.flush()
                        os.fsync(stream.fileno())
                    os.replace(tmp, path)
                    written += len(blob)
                total += len(blob)
                live_files.add(file_name)
                entries.append({"chunk": chunk, "aggregator": name,
                                "file": file_name, "rows": len(store),
                                "bytes": len(blob)})
        manifest = {"shard": int(shard), "dimensions": list(self.dimensions),
                    "granularity": self.granularity,
                    "applied": [list(stamp) for stamp
                                in sorted(self._applied.get(shard, ()),
                                          key=repr)],
                    "segments": entries}
        tmp = directory / (SHARD_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(manifest, separators=(",", ":"),
                                  default=str))
        os.replace(tmp, directory / SHARD_MANIFEST)
        for path in directory.iterdir():
            # GC: superseded segment files and stale temp debris.
            if path.name.endswith(".tmp") or (
                    path.name.endswith(".seg")
                    and path.name not in live_files):
                path.unlink()
        return {"files": len(live_files), "bytes": total,
                "bytes_written": written,
                "manifest": str(directory / SHARD_MANIFEST)}

    def import_shard_files(self, shard: int, directory) -> None:
        """Rebuild a shard from :meth:`export_shard_files` output.

        The reconstruction is bit-exact: segment rows are reordered by
        their recorded first-seen stamps back into the store's original
        row numbering, so every post-import fold sees the identical
        operand order.
        """
        from ..storage.format import open_segment

        directory = Path(directory)
        try:
            manifest = json.loads((directory / SHARD_MANIFEST).read_text())
        except (FileNotFoundError, json.JSONDecodeError) as exc:
            raise ClusterError(
                f"no readable shard manifest in {directory}: {exc}") \
                from None
        if int(manifest["shard"]) != int(shard):
            raise ClusterError(
                f"directory {directory} holds shard {manifest['shard']}, "
                f"asked to import shard {shard}")
        if tuple(manifest["dimensions"]) != self.dimensions:
            raise ClusterError(
                f"shard manifest dimensions {manifest['dimensions']} do not "
                f"match node dimensions {list(self.dimensions)}")
        engine = DruidEngine(dimensions=self.dimensions,
                             aggregators=self.aggregators,
                             granularity=self.granularity,
                             processing_threads=1,
                             packed_moments=self.packed_moments)
        for entry in manifest["segments"]:
            reader = open_segment(directory / entry["file"])
            try:
                order = np.argsort(reader.first_seen)
                store = PackedSketchStore(k=reader.k,
                                          track_log=reader.track_log,
                                          capacity=reader.rows)
                for _ in range(reader.rows):
                    store.new_row()
                store.counts[:reader.rows] = reader.counts[order]
                store.mins[:reader.rows] = reader.mins[order]
                store.maxs[:reader.rows] = reader.maxs[order]
                store.power_sums[:reader.rows] = reader.power_sums[order]
                store.log_sums[:reader.rows] = reader.log_sums[order]
                store.log_valid[:reader.rows] = reader.log_valid[order]
                keys = [reader.keys[i] for i in order]
            finally:
                reader.close()
            chunk = int(entry["chunk"])
            segment = engine.segments.get(chunk)
            if segment is None:
                segment = Segment(chunk=chunk)
                engine.segments[chunk] = segment
            segment.packed[entry["aggregator"]] = store
            segment.packed_rows[entry["aggregator"]] = {
                key: row for row, key in enumerate(keys)}
            for key in keys:
                segment.cells.setdefault(key, {})
        self.shards[int(manifest["shard"])] = engine
        self._applied[int(manifest["shard"])] = {
            tuple(stamp) for stamp in manifest.get("applied", ())}

    # ------------------------------------------------------------------
    # Failure simulation
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the node stops answering until restored."""
        self.alive = False

    def restore(self) -> None:
        """Low-level revive (simulation only): flips the node alive
        without resyncing state.  Use
        :meth:`~repro.cluster.coordinator.ClusterCoordinator.restore_node`
        to rejoin a cluster safely — a node that missed ingests while
        down would otherwise serve stale answers."""
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise ClusterError(f"node {self.node_id!r} is down")

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest_shard(self, shard: int, timestamps: np.ndarray,
                     dimension_columns: Sequence[np.ndarray],
                     values: np.ndarray,
                     sequence: tuple | None = None) -> int | None:
        """Roll one shard sub-batch up through the standard Druid path.

        ``sequence`` is the batch's idempotency stamp (see
        :class:`~repro.ingest.ClusterWriteBackend`): a stamp this shard
        already applied makes the call a no-op, so replayed batches
        cannot double-count on any replica.  Returns the number of
        ``(chunk, key)`` groups touched, or ``None`` when deduplicated.
        """
        self._check_alive()
        check_columns(len(self.dimensions), dimension_columns, values,
                      timestamps, needs_timestamps=True,
                      context=f"shard {shard} ingest")
        if sequence is not None:
            applied = self._applied.setdefault(shard, set())
            if sequence in applied:
                return None
        groups = self._shard_engine(shard)._rollup_rows(
            timestamps, dimension_columns, values)
        if sequence is not None:
            applied.add(sequence)
        return groups

    # ------------------------------------------------------------------
    # Node-local scatter work
    # ------------------------------------------------------------------

    def shard_partials(self, aggregator: str, shards: Sequence[int],
                       filters: Mapping[str, object] | None = None,
                       interval: tuple[float, float] | None = None
                       ) -> list[ShardPartial]:
        """One merged partial per requested shard with matching cells.

        Packed moments aggregators reduce each shard's matching rows with
        vectorized per-segment ``batch_merge`` calls; other aggregators
        fold their object states.  Either way a shard's partial is a
        strict left fold over its cells in ingestion order, so it does
        not depend on which replica computed it.
        """
        self._check_alive()
        # Telemetry rides along only when a broker span is active on this
        # worker thread: each produced partial carries a detached span,
        # and one partial per reply ships the node's latency histogram.
        parent = (TELEMETRY.tracer.current_span()
                  if TELEMETRY.enabled else None)
        hist = LogHistogram() if parent is not None else None
        partials: list[ShardPartial] = []
        for shard in shards:
            engine = self.shards.get(shard)
            if engine is None:
                continue
            span = (TELEMETRY.tracer.span(
                        "cluster.shard", parent=parent, detached=True,
                        node=self.node_id, shard=shard, aggregator=aggregator)
                    if parent is not None else None)
            if aggregator in engine._packed_names:
                refs = engine._matching_packed_rows(aggregator, filters,
                                                    interval)
                if not refs:
                    continue
                scanned = sum(rows.size for _, rows in refs)
                # The same fold DruidBackend.rollup runs on a flat
                # engine, which is what keeps shard partials bit-exact
                # with shard-aligned single-process execution.
                sketch = DruidEngine.fold_packed_refs(refs)
                state = engine._wrap_packed(aggregator, sketch)
            else:
                states = engine._matching_states(aggregator, filters, interval)
                if not states:
                    continue
                scanned = len(states)
                state = engine._merge_states(states)
            telemetry = None
            if span is not None:
                span.set_attribute("cells_scanned", scanned)
                payload = span.end()
                hist.observe(payload["duration_seconds"])
                telemetry = {"span": payload}
            partials.append(ShardPartial(shard=shard, state=state,
                                         cells_scanned=scanned,
                                         telemetry=telemetry))
        if hist is not None and partials:
            partials[0].telemetry["hist"] = hist.to_partial()
        return partials

    def group_partials(self, aggregator: str, shards: Sequence[int],
                       dimension: str,
                       filters: Mapping[str, object] | None = None
                       ) -> list[tuple[int, dict, int, dict | None]]:
        """Per-shard grouped partials: (shard, {value: state}, cells,
        telemetry) — telemetry as in :meth:`shard_partials`."""
        self._check_alive()
        parent = (TELEMETRY.tracer.current_span()
                  if TELEMETRY.enabled else None)
        hist = LogHistogram() if parent is not None else None
        out: list[tuple[int, dict, int, dict | None]] = []
        for shard in shards:
            engine = self.shards.get(shard)
            if engine is None:
                continue
            span = (TELEMETRY.tracer.span(
                        "cluster.shard", parent=parent, detached=True,
                        node=self.node_id, shard=shard, aggregator=aggregator,
                        dimension=dimension)
                    if parent is not None else None)
            groups = engine.group_states(aggregator, dimension, filters)
            if groups:
                telemetry = None
                if span is not None:
                    span.set_attribute("groups", len(groups))
                    payload = span.end()
                    hist.observe(payload["duration_seconds"])
                    telemetry = {"span": payload}
                out.append((shard, groups, engine.num_cells, telemetry))
        if hist is not None and out:
            out[0][3]["hist"] = hist.to_partial()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return (f"DataNode({self.node_id!r}, shards={len(self.shards)}, "
                f"cells={self.num_cells}, {state})")
