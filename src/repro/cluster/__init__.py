"""Sharded scatter-gather serving layer (simulated multi-node cluster).

Turns the single-process engine into a cluster: a
:class:`ClusterCoordinator` places shards on :class:`DataNode` replicas
via a consistent-hash :class:`HashRing`, and a :class:`ClusterBroker`
answers queries scatter-gather style — vectorized packed partial merges
on each node, ~200-byte partials combined at the broker, one max-entropy
solve.  :class:`ClusterBackend` plugs the whole thing into the unified
query API, so any :class:`~repro.api.QuerySpec` runs unchanged against a
cluster (``QueryService(cluster=coordinator)``).

See ``examples/cluster_quantiles.py`` for the full lifecycle: ingest,
scale out, kill a node, identical quantiles.
"""

from .backend import ClusterBackend, timings_breakdown
from .broker import ClusterBroker, ScatterProfile
from .coordinator import ClusterCoordinator, ClusterStatus, RebalanceReport
from .hashring import HashRing, shard_of, stable_hash
from .node import DataNode, ShardPartial, ShardSnapshot

__all__ = [
    "ClusterBackend", "timings_breakdown", "ClusterBroker", "ScatterProfile",
    "ClusterCoordinator", "ClusterStatus", "RebalanceReport", "HashRing",
    "shard_of", "stable_hash", "DataNode", "ShardPartial", "ShardSnapshot",
]
