"""Cluster coordinator: membership, shard routing, replication repair.

The :class:`ClusterCoordinator` is the control plane of the simulated
cluster: it owns the :class:`~repro.cluster.hashring.HashRing`, the
:class:`~repro.cluster.node.DataNode` instances, and the invariant the
whole design rests on — **every live replica of a shard holds
bit-identical state**.  Ingestion routes each row's full dimension tuple
to one shard (:func:`~repro.cluster.hashring.shard_of`) and feeds the
identical row subset, in the identical order, to every live owner;
rebalance and failure repair move shards as bit-exact snapshots.  Any
replica can therefore serve any of its shards and the broker's answer
does not depend on which one it picked — the property the failover
correctness gate in ``benchmarks/bench_cluster_scaling.py`` checks.

Membership operations:

* :meth:`add_node` — join a node and rebalance: the consistent-hash ring
  reassigns ~``K/N`` of ``K`` shards, which are copied from a surviving
  owner; shards no longer owned are dropped.
* :meth:`remove_node` — graceful decommission: departing shards are
  copied off first, then the node leaves.
* :meth:`fail_node` — crash simulation: the node stops answering;
  with ``repair=True`` (the default) surviving replicas re-replicate the
  dead node's shards so every shard returns to ``replication`` live
  owners.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import ClusterError, QueryError
from ..core.grouping import lexsort_groups
from ..druid.aggregators import (AggregatorFactory, MomentsSketchAggregator)
from ..telemetry import TELEMETRY
from .hashring import DEFAULT_VNODES, HashRing, shard_of
from .node import SHARD_MANIFEST, DataNode


@dataclass(frozen=True)
class RebalanceReport:
    """What one membership change physically moved."""

    copied_shards: int
    dropped_shards: int
    bytes_copied: int


@dataclass
class ClusterStatus:
    """Introspection snapshot for CLI / examples."""

    nodes: dict[str, dict] = field(default_factory=dict)
    num_shards: int = 0
    replication: int = 0

    def to_dict(self) -> dict:
        return {"num_shards": self.num_shards,
                "replication": self.replication, "nodes": self.nodes}


class ClusterCoordinator:
    """Simulated multi-node cluster over the Druid-style roll-up path.

    Parameters
    ----------
    dimensions, aggregators, granularity, packed_moments:
        Passed through to every node's per-shard engines (same contract
        as :class:`~repro.druid.DruidEngine`).
    num_shards:
        Fixed shard count; each dimension tuple hashes to one shard, so
        a cell's replicas colocate and group-bys stay node-local.
    replication:
        Live copies kept per shard (>= 2 survives single-node failure).
    storage_root:
        When set, shard movement (rebalance, repair, restore) travels
        as content-named segment files plus a shard manifest under
        ``storage_root/<node>/shard-<id>/``
        (:meth:`~repro.cluster.node.DataNode.export_shard_files`)
        instead of full in-memory snapshot blobs: a re-repair after a
        small ingest delta copies only the chunk segments whose
        checksum changed.  Requires all-packed aggregators.
    """

    def __init__(self, dimensions: Sequence[str],
                 aggregators: Mapping[str, AggregatorFactory],
                 num_shards: int = 64, replication: int = 2,
                 granularity: float = 3600.0, packed_moments: bool = True,
                 vnodes: int = DEFAULT_VNODES,
                 nodes: Sequence[str] = (),
                 storage_root: str | None = None):
        if not dimensions:
            raise QueryError("need at least one dimension")
        if int(num_shards) < 1:
            raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
        self.dimensions = tuple(dimensions)
        self.aggregators = dict(aggregators)
        self.num_shards = int(num_shards)
        self.replication = int(replication)
        self.granularity = float(granularity)
        self.packed_moments = bool(packed_moments)
        self.packed_names = frozenset(
            name for name, factory in self.aggregators.items()
            if packed_moments and isinstance(factory, MomentsSketchAggregator))
        self.storage_root = Path(storage_root) if storage_root else None
        self.ring = HashRing(replication=replication, vnodes=vnodes)
        self.nodes: dict[str, DataNode] = {}
        self.last_rebalance: RebalanceReport | None = None
        for node_id in nodes:
            self.add_node(node_id)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def live_nodes(self) -> tuple[str, ...]:
        return tuple(node_id for node_id, node in self.nodes.items()
                     if node.alive)

    def shard_map(self) -> dict[int, tuple[str, ...]]:
        """Current shard -> owner placement from the ring."""
        return self.ring.placement(self.num_shards)

    def live_owners(self, shard: int) -> tuple[str, ...]:
        """The shard's owners that are currently answering."""
        return tuple(node_id for node_id in self.ring.owners(shard)
                     if self.nodes[node_id].alive)

    def shard_of_key(self, key: tuple) -> int:
        """The shard a dimension tuple routes to."""
        return shard_of(key, self.num_shards)

    @property
    def num_cells(self) -> int:
        """Distinct cells across the cluster (each shard counted once)."""
        total = 0
        for shard in range(self.num_shards):
            holder = self._live_holder(shard)
            if holder is not None:
                total += holder.shards[shard].num_cells
        return total

    def status(self) -> ClusterStatus:
        placement = self.shard_map()
        per_node: dict[str, dict] = {}
        for node_id, node in self.nodes.items():
            per_node[node_id] = {
                "alive": node.alive,
                "shards": len([s for s, owners in placement.items()
                               if node_id in owners]),
                "cells": node.num_cells,
            }
        return ClusterStatus(nodes=per_node, num_shards=self.num_shards,
                             replication=self.replication)

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------

    def add_node(self, node_id: str) -> DataNode:
        """Join a node and rebalance shards onto it (minimal movement)."""
        node_id = str(node_id)
        if node_id in self.nodes:
            raise ClusterError(f"node {node_id!r} already in the cluster")
        self.nodes[node_id] = DataNode(
            node_id, self.dimensions, self.aggregators,
            granularity=self.granularity, packed_moments=self.packed_moments)
        self.ring.add_node(node_id)
        self.last_rebalance = self._rebalance()
        return self.nodes[node_id]

    def remove_node(self, node_id: str) -> RebalanceReport:
        """Decommission a node: data copied off first if it is live,
        plain cleanup if it already failed (and left the ring)."""
        node = self._node(node_id)
        if node.alive and len(self.live_nodes) <= 1:
            raise ClusterError("cannot remove the last live node")
        if node_id in self.ring:
            self.ring.remove_node(node_id)
        report = self._rebalance()
        self.nodes.pop(node_id, None)
        node.shards.clear()
        self.last_rebalance = report
        return report

    def fail_node(self, node_id: str, repair: bool = True
                  ) -> RebalanceReport | None:
        """Crash a node.  With ``repair`` (default) surviving replicas
        re-replicate its shards so every shard keeps ``replication`` live
        owners; without it the cluster serves degraded from the remaining
        replicas (answers are unchanged either way — replicas are
        bit-identical)."""
        node = self._node(node_id)
        if node.alive and len(self.live_nodes) <= 1:
            raise ClusterError("cannot fail the last live node")
        node.fail()
        if TELEMETRY.enabled:
            TELEMETRY.registry.counter("cluster_node_failures_total",
                                       node=node_id).inc()
        if not repair:
            return None
        if node_id in self.ring:
            self.ring.remove_node(node_id)
        self.last_rebalance = self._rebalance()
        return self.last_rebalance

    def restore_node(self, node_id: str) -> RebalanceReport:
        """Bring a failed node back, resynced from its live peers.

        A node that was down may have missed ingests (and, if it was
        repaired around, left the ring), so naively flipping it alive
        would violate the replicas-are-bit-identical invariant.  This
        anti-entropy path refreshes every shard the node still holds from
        a live peer (peers kept serving while it was down, so they are
        authoritative; a shard with no other live copy keeps the local
        state as the best available), rejoins the ring if needed, and
        rebalances.
        """
        node = self._node(node_id)
        node.restore()
        if TELEMETRY.enabled:
            TELEMETRY.registry.counter("cluster_node_restores_total",
                                       node=node_id).inc()
        for shard in list(node.shards):
            source = self._live_holder(shard, exclude=node_id)
            if source is not None:
                if self.storage_root is not None:
                    exported = self._shard_dir(source.node_id, shard)
                    source.export_shard_files(shard, exported)
                    self._copy_shard_files(exported, node, shard)
                else:
                    node.import_shard(source.export_shard(shard))
        if node_id not in self.ring:
            self.ring.add_node(node_id)
        self.last_rebalance = self._rebalance()
        return self.last_rebalance

    def _node(self, node_id: str) -> DataNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}; "
                               f"have {sorted(self.nodes)}") from None

    def _live_holder(self, shard: int, exclude: str | None = None
                     ) -> DataNode | None:
        """Any live node physically holding the shard's data."""
        for node_id in self.ring.owners(shard):
            node = self.nodes[node_id]
            if node.alive and node_id != exclude and shard in node.shards:
                return node
        # Owners may not have the data yet mid-rebalance; fall back to a
        # full scan so repair never loses a reachable copy.
        for node_id, node in self.nodes.items():
            if node.alive and node_id != exclude and shard in node.shards:
                return node
        return None

    def _shard_dir(self, node_id: str, shard: int) -> Path:
        assert self.storage_root is not None
        return self.storage_root / str(node_id) / f"shard-{int(shard):05d}"

    def _copy_shard_files(self, src_dir: Path, target: DataNode,
                          shard: int) -> int:
        """Sync one exported shard directory onto ``target`` and import it.

        Content-named segment files the target already holds are skipped
        — only missing segments plus the manifest travel — which is the
        bytes saving segment-granular replication exists for.  Returns
        the bytes actually copied.
        """
        tgt_dir = self._shard_dir(target.node_id, shard)
        tgt_dir.mkdir(parents=True, exist_ok=True)
        manifest = json.loads((src_dir / SHARD_MANIFEST).read_text())
        live = {entry["file"] for entry in manifest["segments"]}
        copied = 0
        for name in sorted(live):
            destination = tgt_dir / name
            if not destination.is_file():
                shutil.copyfile(src_dir / name, destination)
                copied += destination.stat().st_size
        shutil.copyfile(src_dir / SHARD_MANIFEST, tgt_dir / SHARD_MANIFEST)
        copied += (tgt_dir / SHARD_MANIFEST).stat().st_size
        for path in tgt_dir.iterdir():
            if path.name.endswith(".seg") and path.name not in live:
                path.unlink()
        target.import_shard_files(shard, tgt_dir)
        return copied

    def _rebalance(self) -> RebalanceReport:
        """Make physical shard placement match the ring's ownership."""
        copied = dropped = bytes_copied = 0
        placement = self.ring.placement(self.num_shards)
        for shard, owners in placement.items():
            source = self._live_holder(shard)
            if source is not None:
                exported = None
                for node_id in owners:
                    target = self.nodes[node_id]
                    if not target.alive or shard in target.shards:
                        continue
                    if self.storage_root is not None:
                        if exported is None:
                            exported = self._shard_dir(source.node_id, shard)
                            source.export_shard_files(shard, exported)
                        bytes_copied += self._copy_shard_files(
                            exported, target, shard)
                    else:
                        # One snapshot per target: import_shard installs
                        # the snapshot's segments directly, so sharing one
                        # across targets would alias mutable state between
                        # replicas.
                        snapshot = source.export_shard(shard)
                        target.import_shard(snapshot)
                        bytes_copied += snapshot.size_bytes()
                    copied += 1
            for node_id, node in self.nodes.items():
                if node_id not in owners and node.alive \
                        and shard in node.shards:
                    node.drop_shard(shard)
                    dropped += 1
        report = RebalanceReport(copied_shards=copied, dropped_shards=dropped,
                                 bytes_copied=bytes_copied)
        if TELEMETRY.enabled:
            registry = TELEMETRY.registry
            registry.counter("cluster_rebalances_total").inc()
            registry.counter("cluster_shards_copied_total").inc(copied)
            registry.counter("cluster_shards_dropped_total").inc(dropped)
            registry.counter("cluster_rebalance_bytes_total").inc(bytes_copied)
        return report

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, timestamps: np.ndarray,
               dimension_columns: Sequence[np.ndarray],
               values: np.ndarray) -> None:
        """Route rows to shard owners and roll up on every live replica.

        Thin shim over the unified ingestion API: the batch is written
        through :class:`~repro.ingest.ClusterWriteBackend`, which hashes
        every row's full dimension tuple through the ring (so all rows
        of a cell land on the same shard) and feeds each live owner the
        identical row subset in the identical original order — keeping
        replica states bit-for-bit equal, exactly as before.  Use an
        :class:`~repro.ingest.IngestSession` with a ``dedup_key`` for
        buffered micro-batches with idempotent replay.
        """
        from ..ingest import write_columns
        write_columns(self, values, dims=dimension_columns,
                      timestamps=timestamps)

    def shard_ids(self, dimension_columns: Sequence[np.ndarray]) -> np.ndarray:
        """Per-row shard ids, hashing once per distinct dimension tuple."""
        order, sorted_cols, _, starts, ends = \
            lexsort_groups(dimension_columns)
        n = order.shape[0]
        shards_sorted = np.empty(n, dtype=np.intp)
        for start, end in zip(starts, ends):
            key = tuple(col[start] for col in sorted_cols)
            shards_sorted[start:end] = shard_of(key, self.num_shards)
        shards = np.empty(n, dtype=np.intp)
        shards[order] = shards_sorted
        return shards

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ClusterCoordinator(nodes={len(self.nodes)}, "
                f"shards={self.num_shards}, "
                f"replication={self.replication})")
