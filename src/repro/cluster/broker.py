"""Scatter-gather broker: fan out, merge ~200-byte partials, solve once.

The :class:`ClusterBroker` is the query-side counterpart of the
coordinator: given an aggregation query it

1. **routes** — picks one live replica per shard (replication-aware:
   choice rotates deterministically across a shard's live owners, so
   replicas share read load; point queries whose filters pin every
   dimension route to the single owning shard);
2. **scatters** — fans the per-node work out on a thread pool; each node
   reduces its shards with vectorized packed merges (numpy releases the
   GIL, so nodes genuinely overlap);
3. **gathers** — combines the per-shard partial sketches (~200 bytes
   each at the paper's ``k = 10``) in ascending shard order with a strict
   left fold;
4. leaves the max-entropy **solve** to the query service: once on the
   combined sketch for a roll-up, and — for group-bys — once *batched*
   across every gathered group (the per-shard group partials feed
   straight into :func:`repro.core.batch_solver.fit_estimators`, so a
   10k-group scatter costs one stacked Newton pass, reported once as
   ``solve_seconds``/``solve_calls=1``, not per cell).

Because a shard's partial is a deterministic left fold over that shard's
cells — computed identically by every replica — the gathered result is
bit-for-bit independent of both the node count and which replicas
answered.  That is what makes the failover gate ("kill a node, answers
unchanged") an exact-equality check rather than a tolerance test.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Mapping

from ..core.errors import ClusterError
from ..druid.aggregators import AggregatorState
from ..telemetry import TELEMETRY
from .coordinator import ClusterCoordinator
from .node import ShardPartial, _state_size

#: Default broker fan-out threads (one per simulated connection).
DEFAULT_THREADS = 4


@dataclass(frozen=True)
class ScatterProfile:
    """Per-phase cost of one scatter-gather query (route/scatter/merge).

    The estimator solve happens downstream in the query service and is
    reported there as ``solve_seconds``; together the four phases are the
    cluster's Eq. 2 decomposition.
    """

    route_seconds: float
    scatter_seconds: float
    merge_seconds: float
    nodes_queried: int
    shards_scanned: int
    cells_scanned: int
    partial_bytes: int


class ClusterBroker:
    """Scatter-gather query executor over a :class:`ClusterCoordinator`."""

    def __init__(self, coordinator: ClusterCoordinator,
                 threads: int = DEFAULT_THREADS):
        self.coordinator = coordinator
        self.threads = max(int(threads), 1)
        #: Guards _pool, queries_served, last_profile: brokers are shared
        #: by concurrent callers (each scatter already fans out threads).
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self.last_profile: ScatterProfile | None = None
        #: Scatter rounds served (tests use this to assert scan sharing).
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, filters: Mapping[str, object] | None = None
              ) -> dict[str, list[int]]:
        """Node -> shard assignment for one query.

        Each shard is served by one live owner; the pick rotates with the
        shard id across the owner list so replicas split read load.  When
        ``filters`` pin every dimension, the full key identifies its one
        shard and the scatter collapses to a single node.
        """
        coordinator = self.coordinator
        if filters and set(filters) == set(coordinator.dimensions):
            key = tuple(filters[dim] for dim in coordinator.dimensions)
            shards: list[int] = [coordinator.shard_of_key(key)]
        else:
            shards = list(range(coordinator.num_shards))
        assignments: dict[str, list[int]] = {}
        telemetry_on = TELEMETRY.enabled
        dead_routes: dict[str, int] = {}
        for shard in shards:
            owners = coordinator.live_owners(shard)
            if not owners:
                raise ClusterError(
                    f"shard {shard} is unavailable: no live replica")
            node_id = owners[shard % len(owners)]
            assignments.setdefault(node_id, []).append(shard)
            if telemetry_on:
                for owner in coordinator.ring.owners(shard):
                    if owner not in owners:
                        dead_routes[owner] = dead_routes.get(owner, 0) + 1
        if telemetry_on and dead_routes:
            # Shards routed around a dead replica: record the failover on
            # the active scatter span and in the registry.
            span = TELEMETRY.tracer.current_span()
            for node_id, count in sorted(dead_routes.items()):
                if span is not None:
                    span.add_event("failover", node=node_id, shards=count)
                TELEMETRY.registry.counter("cluster_failover_routes_total",
                                           node=node_id).inc(count)
        return assignments

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="cluster-broker")
            return self._pool

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        # Shut down outside the lock: workers may be mid-scatter.
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scatter-gather execution
    # ------------------------------------------------------------------

    def scatter_rollup(self, aggregator: str,
                       filters: Mapping[str, object] | None = None,
                       interval: tuple[float, float] | None = None
                       ) -> AggregatorState | None:
        """Merged cluster-wide state for one roll-up (None: no cells).

        Records the route/scatter/merge phase profile in
        :attr:`last_profile`.
        """
        telemetry_on = TELEMETRY.enabled
        with (TELEMETRY.tracer.span("cluster.scatter", kind="rollup",
                                    aggregator=aggregator)
              if telemetry_on else nullcontext()) as scatter_span:
            start = time.perf_counter()
            assignments = self.route(filters)
            route_seconds = time.perf_counter() - start

            start = time.perf_counter()
            partials = self._scatter(
                assignments,
                lambda node, shards: node.shard_partials(
                    aggregator, shards, filters, interval))
            scatter_seconds = time.perf_counter() - start
            if telemetry_on:
                self._absorb_telemetry(p.telemetry for p in partials)

            start = time.perf_counter()
            partials.sort(key=lambda partial: partial.shard)
            merged: AggregatorState | None = None
            for partial in partials:
                if merged is None:
                    merged = partial.state.copy()
                else:
                    merged.merge(partial.state)
            merge_seconds = time.perf_counter() - start

            profile = ScatterProfile(
                route_seconds=route_seconds, scatter_seconds=scatter_seconds,
                merge_seconds=merge_seconds, nodes_queried=len(assignments),
                shards_scanned=len(partials),
                cells_scanned=sum(p.cells_scanned for p in partials),
                partial_bytes=sum(p.size_bytes() for p in partials))
            with self._lock:
                self.queries_served += 1
                self.last_profile = profile
            if telemetry_on:
                self._emit_scatter_telemetry(scatter_span, "rollup", profile)
        return merged

    def scatter_group(self, aggregator: str, dimension: str,
                      filters: Mapping[str, object] | None = None
                      ) -> dict[object, AggregatorState]:
        """Merged state per distinct value of ``dimension`` (group-by).

        Shards colocate whole cells, so each group value's partials fold
        across shards in ascending shard order, mirroring the
        single-process engine's ascending-segment fold.
        """
        telemetry_on = TELEMETRY.enabled
        with (TELEMETRY.tracer.span("cluster.scatter", kind="group",
                                    aggregator=aggregator,
                                    dimension=dimension)
              if telemetry_on else nullcontext()) as scatter_span:
            start = time.perf_counter()
            assignments = self.route(filters)
            route_seconds = time.perf_counter() - start

            start = time.perf_counter()
            shard_groups = self._scatter(
                assignments,
                lambda node, shards: node.group_partials(
                    aggregator, shards, dimension, filters))
            scatter_seconds = time.perf_counter() - start
            if telemetry_on:
                self._absorb_telemetry(item[3] for item in shard_groups)

            start = time.perf_counter()
            shard_groups.sort(key=lambda item: item[0])
            merged: dict[object, AggregatorState] = {}
            cells = 0
            shards_hit = 0
            partial_bytes = 0
            for _, groups, shard_cells, _telemetry in shard_groups:
                shards_hit += 1
                cells += shard_cells
                for value, state in groups.items():
                    partial_bytes += _state_size(state)
                    existing = merged.get(value)
                    if existing is None:
                        merged[value] = state.copy()
                    else:
                        existing.merge(state)
            merge_seconds = time.perf_counter() - start

            profile = ScatterProfile(
                route_seconds=route_seconds, scatter_seconds=scatter_seconds,
                merge_seconds=merge_seconds, nodes_queried=len(assignments),
                shards_scanned=shards_hit, cells_scanned=cells,
                partial_bytes=partial_bytes)
            with self._lock:
                self.queries_served += 1
                self.last_profile = profile
            if telemetry_on:
                self._emit_scatter_telemetry(scatter_span, "group", profile)
        return merged

    def _scatter(self, assignments: dict[str, list[int]], work) -> list:
        """Run per-node work on the pool; flatten the gathered results.

        Thread pools do not inherit contextvars, so the active span (the
        ``cluster.scatter`` span) is captured here and passed as the
        *explicit* parent of per-node spans created on worker threads —
        this is what keeps the trace tree connected across the fan-out.
        """
        nodes = self.coordinator.nodes
        items = sorted(assignments.items())
        parent = (TELEMETRY.tracer.current_span()
                  if TELEMETRY.enabled else None)

        def call(node_id: str, shards: list[int]):
            if parent is None:
                return work(nodes[node_id], shards)
            with TELEMETRY.tracer.span("cluster.node", parent=parent,
                                       node=node_id, shards=len(shards)):
                return work(nodes[node_id], shards)

        if len(items) <= 1 or self.threads == 1:
            gathered = [call(node_id, shards) for node_id, shards in items]
        else:
            pool = self._executor()
            gathered = list(pool.map(lambda item: call(*item), items))
        return [result for results in gathered for result in results]

    def _absorb_telemetry(self, payloads) -> None:
        """Adopt shipped shard spans and fold node histogram partials."""
        if not TELEMETRY.enabled:
            return
        tracer = TELEMETRY.tracer
        registry = TELEMETRY.registry
        for payload in payloads:
            if not payload:
                continue
            span = payload.get("span")
            if span is not None:
                tracer.adopt(span)
            hist = payload.get("hist")
            if hist is not None:
                registry.histogram(
                    "cluster_shard_scan_seconds").merge_partial(hist)

    def _emit_scatter_telemetry(self, scatter_span, kind: str,
                                profile: ScatterProfile) -> None:
        """Phase spans + registry metrics for the profile just recorded.

        Takes the profile as an argument (rather than re-reading
        ``self.last_profile``) so a concurrent scatter cannot swap it
        between publication and emission.
        """
        if not TELEMETRY.enabled:
            return
        tracer = TELEMETRY.tracer
        base = scatter_span.start_monotonic
        tracer.record("cluster.route", profile.route_seconds,
                      parent=scatter_span, start_monotonic=base,
                      nodes=profile.nodes_queried)
        tracer.record("cluster.gather", profile.merge_seconds,
                      parent=scatter_span,
                      start_monotonic=(base + profile.route_seconds
                                       + profile.scatter_seconds),
                      shards=profile.shards_scanned,
                      partial_bytes=profile.partial_bytes)
        scatter_span.set_attribute("nodes", profile.nodes_queried)
        scatter_span.set_attribute("shards", profile.shards_scanned)
        scatter_span.set_attribute("cells", profile.cells_scanned)
        registry = TELEMETRY.registry
        registry.counter("cluster_scatter_queries_total", kind=kind).inc()
        registry.counter("cluster_shards_scanned_total",
                         kind=kind).inc(profile.shards_scanned)
        registry.counter("cluster_partial_bytes_total",
                         kind=kind).inc(profile.partial_bytes)
        registry.histogram("cluster_scatter_seconds",
                           kind=kind).observe(profile.scatter_seconds)
