"""Crash-safe manifest for a tiered store directory.

The manifest is an append-only JSON-lines log (``MANIFEST.log``).  Every
line is a *complete* description of the live state — store parameters
plus the full ordered segment list — so recovery never reconstructs
state from a prefix of operations:

* **Atomic swaps** — a compaction that replaces segments ``A, B`` with
  ``C`` appends one line whose segment list contains ``C`` and not
  ``A``/``B``.  Readers switch segment sets at exactly one line
  boundary.
* **Torn tails** — the last line of a log can be half-written when the
  process dies mid-append.  Replay keeps the *last fully parseable*
  line and ignores any trailing garbage, so a crash costs at most the
  uncommitted swap, never the store.
* **Orphans** — segment files written but never committed (crash
  between ``write_segment`` and :meth:`Manifest.commit`) are simply not
  in the replayed list; :class:`~repro.storage.TieredStore` deletes
  them on open.

Lines are fsynced on commit: once :meth:`commit` returns, the swap
survives power loss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.errors import StorageError

MANIFEST_NAME = "MANIFEST.log"


class Manifest:
    """The JSON-log manifest of one tiered store directory."""

    def __init__(self, directory, meta: dict | None = None,
                 segments: tuple[str, ...] = (), seq: int = 0):
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self.meta = dict(meta or {})
        self.segments = tuple(segments)
        self.seq = int(seq)

    # ------------------------------------------------------------------

    @classmethod
    def exists(cls, directory) -> bool:
        return (Path(directory) / MANIFEST_NAME).is_file()

    @classmethod
    def open(cls, directory) -> "Manifest":
        """Replay the log, keeping the last fully parseable line.

        Torn or corrupt trailing lines are tolerated (they are the
        expected debris of a crash mid-append); a manifest with *no*
        parseable line is an error — that store cannot be trusted.
        """
        path = Path(directory) / MANIFEST_NAME
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise StorageError(f"no manifest in {directory}") from None
        state = None
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # torn tail / partial append
            if not isinstance(record, dict) or "segments" not in record \
                    or "meta" not in record:
                continue
            state = record
        if state is None:
            raise StorageError(
                f"{path}: no replayable manifest line (corrupt log)")
        return cls(directory, meta=state["meta"],
                   segments=tuple(state["segments"]),
                   seq=int(state.get("seq", 0)))

    @classmethod
    def create(cls, directory, meta: dict) -> "Manifest":
        """Initialize a fresh store directory with an empty segment set."""
        manifest = cls(directory, meta=meta)
        manifest.commit(())
        return manifest

    # ------------------------------------------------------------------

    def commit(self, segments) -> None:
        """Append (and fsync) one complete state line: the atomic swap."""
        segments = tuple(str(name) for name in segments)
        self.seq += 1
        line = json.dumps({"seq": self.seq, "meta": self.meta,
                           "segments": list(segments)},
                          separators=(",", ":")) + "\n"
        with open(self.path, "ab") as stream:
            stream.write(line.encode("utf-8"))
            stream.flush()
            os.fsync(stream.fileno())
        self.segments = segments

    def rewrite(self) -> None:
        """Compact the log itself to a single line (atomic via rename)."""
        tmp = self.path.with_name(MANIFEST_NAME + ".tmp")
        line = json.dumps({"seq": self.seq, "meta": self.meta,
                           "segments": list(self.segments)},
                          separators=(",", ":")) + "\n"
        with open(tmp, "wb") as stream:
            stream.write(line.encode("utf-8"))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Manifest({str(self.directory)!r}, seq={self.seq}, "
                f"segments={len(self.segments)})")
