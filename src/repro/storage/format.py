"""On-disk segment format for packed sketch stores.

A *segment* is one immutable, versioned, checksummed file holding the
structure-of-arrays buffers of a :class:`~repro.store.PackedSketchStore`
plus a sorted cell-key index, so cold sketch state can live on disk and
still feed the vectorized merge kernels:

* **Warm** segments store every column as raw little-endian float64 in
  exactly the :class:`~repro.store.PackedSketchStore` row layout
  (``power_sums``/``log_sums`` keep the redundant count in column 0), so
  :func:`open_segment` maps the file once with :mod:`mmap` and exposes
  zero-copy ``np.frombuffer`` views — a ``batch_merge`` over a warm
  segment reduces directly over page-cache memory.
* **Cold** segments apply the paper's low-precision encoding (Appendix
  C / Figure 17, :mod:`repro.core.encoding`): moment sums are quantized
  with randomized rounding and bit-packed at ``1 + exponent_bits +
  mantissa_bits`` bits per value against one shared base exponent per
  moment family, counts become LEB128 varints (they are exact
  integers), and min/max drop to outward-rounded float32 so the support
  interval only ever widens.  By default the cold profile keeps the
  power family only (``keep_log=False``) — the configuration that
  buys a >4x disk-footprint reduction; ``keep_log=True`` retains log
  moments at ~3x.  Cold columns hydrate to float64 on first access
  with one vectorized unpack.

Layout (version 1)::

    header   <4sBBBBxxxQ  magic "RSG1", version, kind, k, flags, rows
    body     column blocks (see the writer), byte offsets in the footer
    keys     UTF-8 JSON array of cell-key arrays, sorted by sort key
    footer   UTF-8 JSON (k, kind, rows, key range, codec, offsets, crc32)
    tail     <I footer length, magic "RSGF"

The footer's ``crc32`` covers header+body+keys; :func:`open_segment`
verifies it before trusting any offset.  Everything is little-endian and
independent of the writing host.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.encoding import pack_words, quantize, split_fields, unpack_words
from ..core.errors import StorageError
from ..core.sketch import MAX_ORDER
from ..store import PackedSketchStore

_HEADER = struct.Struct("<4sBBBBxxxQ")
_TAIL = struct.Struct("<I4s")
_MAGIC = b"RSG1"
_TAIL_MAGIC = b"RSGF"
_VERSION = 1

KIND_WARM = 0
KIND_COLD = 1
_FLAG_TRACK_LOG = 1
_FLAG_KEEP_LOG = 2


# ----------------------------------------------------------------------
# Cell keys
# ----------------------------------------------------------------------

def canonical_key(key) -> tuple:
    """A cell key as a tuple of plain JSON scalars.

    Canonical keys survive the segment key block's JSON round trip
    unchanged, so the in-memory key index and a reopened segment's key
    index always agree: numpy scalars drop to their Python values and
    anything non-JSON becomes its ``str``.
    """
    if not isinstance(key, tuple):
        key = (key,)
    parts = []
    for part in key:
        if hasattr(part, "item"):
            part = part.item()
        if part is not None and not isinstance(part, (str, int, float, bool)):
            part = str(part)
        parts.append(part)
    return tuple(parts)


def sort_key(key: tuple) -> str:
    """The total order segments are sorted and pruned by."""
    return json.dumps(list(key), separators=(",", ":"), default=str)


# ----------------------------------------------------------------------
# Cold codec configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ColdSpec:
    """Low-precision profile for cold segments (Figure 17 knobs).

    ``mantissa_bits``/``exponent_bits`` follow
    :class:`~repro.core.encoding.LowPrecisionCodec`; ``keep_log=False``
    (the default) drops the log-moment family entirely — the profile
    that achieves the >=4x disk reduction — trading some accuracy on
    long-tailed data.  ``seed`` makes the randomized rounding
    deterministic per store, so demotion is reproducible.
    """

    mantissa_bits: int = 10
    exponent_bits: int = 8
    keep_log: bool = False
    seed: int = 0

    def __post_init__(self):
        if not 1 <= int(self.mantissa_bits) <= 52:
            raise StorageError(f"mantissa_bits must be in [1, 52], "
                               f"got {self.mantissa_bits}")
        if not 2 <= int(self.exponent_bits) <= 11:
            raise StorageError(f"exponent_bits must be in [2, 11], "
                               f"got {self.exponent_bits}")
        object.__setattr__(self, "mantissa_bits", int(self.mantissa_bits))
        object.__setattr__(self, "exponent_bits", int(self.exponent_bits))
        object.__setattr__(self, "keep_log", bool(self.keep_log))
        object.__setattr__(self, "seed", int(self.seed))

    @property
    def bits_per_value(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    def to_dict(self) -> dict:
        return {"mantissa_bits": self.mantissa_bits,
                "exponent_bits": self.exponent_bits,
                "keep_log": self.keep_log, "seed": self.seed}

    @classmethod
    def from_dict(cls, payload) -> "ColdSpec":
        return cls(**{key: payload[key] for key in
                      ("mantissa_bits", "exponent_bits", "keep_log", "seed")
                      if key in payload})


# ----------------------------------------------------------------------
# Varint counts (cold tier)
# ----------------------------------------------------------------------

def _encode_counts(counts: np.ndarray) -> bytes:
    """LEB128-encode integral float64 counts (exact at any magnitude)."""
    if not np.all(counts == np.floor(counts)) or np.any(counts < 0):
        raise StorageError(
            "cold segments require non-negative integral counts; "
            "keep non-integral stores on the warm tier")
    out = bytearray()
    for value in counts:
        value = int(value)
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode_counts(payload: bytes, rows: int) -> np.ndarray:
    out = np.empty(rows, dtype=float)
    position = 0
    for row in range(rows):
        value = 0
        shift = 0
        while True:
            if position >= len(payload):
                raise StorageError("truncated varint count block")
            byte = payload[position]
            position += 1
            value |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        out[row] = float(value)
    if position != len(payload):
        raise StorageError("trailing bytes after varint count block")
    return out


# ----------------------------------------------------------------------
# Cold sum columns
# ----------------------------------------------------------------------

def _encode_sums(sums: np.ndarray, spec: ColdSpec,
                 rng: np.random.Generator) -> tuple[bytes, int]:
    """Quantize + bit-pack one family's ``[N, k]`` sums (no count col).

    Returns the packed bytes and the family's shared base exponent.
    Values already on the quantization grid re-encode bit-identically
    (``frac == 0`` in the randomized rounding), which is what keeps
    cold-to-cold compaction lossless.
    """
    values = np.ascontiguousarray(sums, dtype=float).ravel()
    quantized = quantize(values, spec.mantissa_bits, rng) if values.size \
        else values
    signs = np.signbit(quantized)
    mantissa, exponent = np.frexp(np.abs(quantized))
    finite = exponent[quantized != 0.0]
    base = int(finite.min()) if finite.size else 0
    span = 1 << spec.exponent_bits
    offsets = np.where(quantized == 0.0, 0, exponent - base + 1)
    if offsets.max(initial=0) >= span:
        raise StorageError(
            f"exponent range {int(offsets.max())} exceeds the "
            f"{spec.exponent_bits}-bit cold field; raise exponent_bits")
    significands = np.round(
        mantissa * (1 << spec.mantissa_bits)).astype(np.uint64)
    significands[quantized == 0.0] = 0
    width = spec.bits_per_value
    words = ((signs.astype(np.uint64) << np.uint64(width - 1))
             | (offsets.astype(np.uint64) << np.uint64(spec.mantissa_bits))
             | significands)
    return pack_words(words, width), base


def _decode_sums(payload: bytes, rows: int, k: int, base: int,
                 spec: ColdSpec) -> np.ndarray:
    """Inverse of :func:`_encode_sums`: one vectorized unpack."""
    count = rows * k
    words = unpack_words(np.frombuffer(payload, dtype=np.uint8), count,
                         spec.bits_per_value)
    signs, offsets, significands = split_fields(
        words, spec.mantissa_bits, spec.exponent_bits)
    mantissa = significands.astype(float) / (1 << spec.mantissa_bits)
    values = np.ldexp(mantissa, offsets.astype(np.int64) + base - 1)
    values[offsets == 0] = 0.0
    values[signs.astype(bool)] *= -1.0
    return values.reshape(rows, k)


def _outward_f32(values: np.ndarray, direction: float) -> np.ndarray:
    """Round float64 to float32 without crossing ``direction``-ward.

    ``direction=-inf`` guarantees the result <= the input (mins),
    ``+inf`` guarantees >= (maxs), so the cold support interval always
    contains the true one.
    """
    rounded = values.astype(np.float32)
    if direction < 0:
        overshoot = rounded.astype(float) > values
    else:
        overshoot = rounded.astype(float) < values
    rounded[overshoot] = np.nextafter(
        rounded[overshoot], np.float32(direction))
    return rounded


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------

def build_segment_bytes(store: PackedSketchStore, keys, first_seen,
                        cold: ColdSpec | None = None) -> bytes:
    """Serialize live store rows (plus keys/first-seen) as one segment.

    Rows are re-sorted by :func:`sort_key` — the segment's cell-key
    index is its row order.  ``cold=None`` writes the lossless warm
    layout; a :class:`ColdSpec` writes the low-precision cold layout.
    """
    n = len(store)
    if n == 0:
        raise StorageError("refusing to write an empty segment")
    keys = [canonical_key(key) for key in keys]
    first_seen = np.asarray(first_seen, dtype=np.uint64)
    if len(keys) != n or first_seen.size != n:
        raise StorageError(
            f"need one key and first-seen stamp per row: {n} rows vs "
            f"{len(keys)} keys / {first_seen.size} stamps")
    sorters = [sort_key(key) for key in keys]
    if len(set(sorters)) != n:
        raise StorageError("duplicate cell keys in one segment")
    order = np.asarray(sorted(range(n), key=lambda row: sorters[row]),
                       dtype=np.intp)
    counts = store.counts[:n][order]
    mins = store.mins[:n][order]
    maxs = store.maxs[:n][order]
    power = store.power_sums[:n][order]
    logs = store.log_sums[:n][order]
    log_valid = store.log_valid[:n][order]
    seen = first_seen[order]
    if not np.all(np.isfinite(mins)):
        raise StorageError("segment rows must be non-empty sketches")

    kind = KIND_WARM if cold is None else KIND_COLD
    flags = (_FLAG_TRACK_LOG if store.track_log else 0)
    offsets: dict[str, int] = {}
    body = bytearray()

    def block(name: str, payload: bytes) -> None:
        offsets[name] = _HEADER.size + len(body)
        body.extend(payload)

    codec_meta = None
    if cold is None:
        block("counts", counts.astype("<f8").tobytes())
        block("mins", mins.astype("<f8").tobytes())
        block("maxs", maxs.astype("<f8").tobytes())
        block("power", np.ascontiguousarray(power).astype("<f8").tobytes())
        if store.track_log:
            block("log", np.ascontiguousarray(logs).astype("<f8").tobytes())
            block("log_valid", log_valid.astype(np.uint8).tobytes())
        block("first_seen", seen.astype("<u8").tobytes())
    else:
        keep_log = store.track_log and cold.keep_log
        if keep_log:
            flags |= _FLAG_KEEP_LOG
        rng = np.random.default_rng(cold.seed)
        block("counts", _encode_counts(counts))
        block("mins", _outward_f32(mins, -np.inf).astype("<f4").tobytes())
        block("maxs", _outward_f32(maxs, np.inf).astype("<f4").tobytes())
        if seen.max(initial=0) >= 1 << 32:
            raise StorageError("cold first-seen stamps exceed 32 bits")
        block("first_seen", seen.astype("<u4").tobytes())
        packed, power_base = _encode_sums(power[:, 1:], cold, rng)
        block("power", packed)
        bases = {"power": power_base}
        if keep_log:
            block("log_valid", log_valid.astype(np.uint8).tobytes())
            packed, log_base = _encode_sums(logs[:, 1:], cold, rng)
            block("log", packed)
            bases["log"] = log_base
        codec_meta = dict(cold.to_dict(), bases=bases)

    key_block = json.dumps([list(keys[row]) for row in order],
                           separators=(",", ":"), default=str).encode("utf-8")
    offsets["keys"] = _HEADER.size + len(body)
    offsets["end"] = offsets["keys"] + len(key_block)

    header = _HEADER.pack(_MAGIC, _VERSION, kind, store.k, flags, n)
    crc = zlib.crc32(body)
    crc = zlib.crc32(key_block, crc)
    footer = json.dumps({
        "version": _VERSION, "kind": kind, "k": store.k,
        "track_log": store.track_log, "rows": n,
        "min_key": sorters[int(order[0])], "max_key": sorters[int(order[-1])],
        "codec": codec_meta, "offsets": offsets, "crc32": crc,
    }, separators=(",", ":")).encode("utf-8")
    return (header + bytes(body) + key_block + footer
            + _TAIL.pack(len(footer), _TAIL_MAGIC))


def write_segment(path, store: PackedSketchStore, keys, first_seen,
                  cold: ColdSpec | None = None) -> dict:
    """Atomically write one segment file (tmp + fsync + rename).

    Returns the footer dict (callers use ``rows``/``crc32``/``kind``).
    """
    path = Path(path)
    blob = build_segment_bytes(store, keys, first_seen, cold=cold)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as stream:
        stream.write(blob)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)
    footer_len, = struct.unpack_from("<I", blob, len(blob) - _TAIL.size)
    return json.loads(blob[len(blob) - _TAIL.size - footer_len:
                           len(blob) - _TAIL.size].decode("utf-8"))


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

class SegmentFile:
    """One open, memory-mapped segment.

    Warm columns are zero-copy read-only views over the mapping; cold
    columns hydrate to float64 on first access (one vectorized unpack,
    cached).  ``power_sums``/``log_sums`` always come back ``[N, k+1]``
    with column 0 duplicating the count — the exact
    :class:`~repro.store.PackedSketchStore` row layout — so gathers and
    merges are layout-blind to the tier they read from.
    """

    def __init__(self, path, verify: bool = True):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            self._map = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise StorageError(f"{self.path.name}: empty segment file") \
                from None
        try:
            self._parse(verify)
        except Exception:
            self.close()
            raise

    def _parse(self, verify: bool) -> None:
        view = self._map
        if len(view) < _HEADER.size + _TAIL.size:
            raise StorageError(f"{self.path.name}: truncated segment")
        magic, version, kind, k, flags, rows = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.path.name}: bad magic {magic!r}")
        if version != _VERSION:
            raise StorageError(
                f"{self.path.name}: unsupported segment version {version}")
        if kind not in (KIND_WARM, KIND_COLD):
            raise StorageError(f"{self.path.name}: unknown kind {kind}")
        if not 1 <= k <= MAX_ORDER:
            raise StorageError(f"{self.path.name}: order {k} out of range")
        footer_len, tail_magic = _TAIL.unpack_from(view,
                                                   len(view) - _TAIL.size)
        if tail_magic != _TAIL_MAGIC:
            raise StorageError(f"{self.path.name}: bad tail magic")
        footer_start = len(view) - _TAIL.size - footer_len
        if footer_start < _HEADER.size:
            raise StorageError(f"{self.path.name}: footer overruns header")
        try:
            footer = json.loads(view[footer_start:footer_start + footer_len]
                                .decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"{self.path.name}: corrupt footer: {exc}") from None
        if footer.get("rows") != rows or footer.get("k") != k \
                or footer.get("kind") != kind:
            raise StorageError(
                f"{self.path.name}: footer disagrees with header")
        if verify:
            crc = zlib.crc32(view[_HEADER.size:footer_start])
            if crc != footer.get("crc32"):
                raise StorageError(
                    f"{self.path.name}: checksum mismatch "
                    f"({crc} != {footer.get('crc32')})")
        self.kind = kind
        self.k = k
        self.rows = rows
        self.track_log = bool(flags & _FLAG_TRACK_LOG)
        # "Does this file ship log-moment columns?" — warm segments always
        # carry whatever the store tracked; cold ones only with keep_log.
        self.keeps_log = (self.track_log if kind == KIND_WARM
                          else bool(flags & _FLAG_KEEP_LOG))
        self.footer = footer
        self.min_key = footer["min_key"]
        self.max_key = footer["max_key"]
        self.codec = (ColdSpec.from_dict(footer["codec"])
                      if footer.get("codec") else None)
        offsets = footer["offsets"]
        keys = json.loads(view[offsets["keys"]:offsets["end"]]
                          .decode("utf-8"))
        if len(keys) != rows:
            raise StorageError(f"{self.path.name}: key index length "
                               f"{len(keys)} != {rows} rows")
        self.keys = [tuple(key) for key in keys]
        self.sort_keys = [sort_key(key) for key in self.keys]
        self._offsets = offsets
        self._hydrated: dict[str, np.ndarray] | None = None
        if self.kind == KIND_WARM:
            self.counts = self._column("counts", "<f8", rows)
            self.mins = self._column("mins", "<f8", rows)
            self.maxs = self._column("maxs", "<f8", rows)
            self.power_sums = self._column(
                "power", "<f8", rows * (k + 1)).reshape(rows, k + 1)
            if self.track_log:
                self.log_sums = self._column(
                    "log", "<f8", rows * (k + 1)).reshape(rows, k + 1)
                self.log_valid = self._column(
                    "log_valid", np.uint8, rows).astype(bool)
            else:
                self.log_sums = np.zeros((rows, k + 1))
                self.log_valid = np.zeros(rows, dtype=bool)
            self.first_seen = self._column("first_seen", "<u8",
                                           rows).astype(np.int64)
        else:
            self._hydrate()

    def _column(self, name: str, dtype, count: int) -> np.ndarray:
        start = self._offsets[name]
        array = np.frombuffer(self._map, dtype=dtype, count=count,
                              offset=start)
        return array

    def _block(self, name: str, stop_name: str) -> bytes:
        return bytes(self._map[self._offsets[name]:self._offsets[stop_name]])

    def _hydrate(self) -> None:
        """Decode cold columns to float64 (cached, one vectorized pass)."""
        spec = self.codec
        rows, k = self.rows, self.k
        order = list(self._offsets)
        blocks = {name: self._block(name, order[order.index(name) + 1])
                  for name in order if name not in ("end",)}
        self.counts = _decode_counts(blocks["counts"], rows)
        self.mins = np.frombuffer(blocks["mins"], dtype="<f4").astype(float)
        self.maxs = np.frombuffer(blocks["maxs"], dtype="<f4").astype(float)
        self.first_seen = np.frombuffer(blocks["first_seen"],
                                        dtype="<u4").astype(np.int64)
        bases = self.footer["codec"]["bases"]
        self.power_sums = np.empty((rows, k + 1))
        self.power_sums[:, 0] = self.counts
        self.power_sums[:, 1:] = _decode_sums(blocks["power"], rows, k,
                                              bases["power"], spec)
        self.log_sums = np.zeros((rows, k + 1))
        if self.keeps_log:
            self.log_valid = np.frombuffer(blocks["log_valid"],
                                           dtype=np.uint8).astype(bool)
            self.log_sums[:, 0] = self.counts
            self.log_sums[:, 1:] = _decode_sums(blocks["log"], rows, k,
                                                bases["log"], spec)
        else:
            # The log family was not shipped: poison it so merges touching
            # cold rows honestly fall back to power-only estimation.
            self.log_valid = np.zeros(rows, dtype=bool)

    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return len(self._map)

    def maybe_contains(self, sorter: str) -> bool:
        """Key-range pruning: can this segment hold ``sorter`` at all?"""
        return self.min_key <= sorter <= self.max_key

    def rows_for(self, sorters) -> np.ndarray:
        """Row index per sort key (-1 when absent), one binary search."""
        table = np.asarray(self.sort_keys, dtype=object)
        probes = np.asarray(list(sorters), dtype=object)
        positions = np.searchsorted(table, probes)
        positions = np.clip(positions, 0, self.rows - 1)
        hits = table[positions] == probes
        return np.where(hits, positions, -1).astype(np.intp)

    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            # Views into the mapping die with the reader; drop ours first.
            for name in ("counts", "mins", "maxs", "power_sums", "log_sums",
                         "log_valid", "first_seen"):
                if hasattr(self, name):
                    delattr(self, name)
            self._map.close()
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "cold" if self.kind == KIND_COLD else "warm"
        return (f"SegmentFile({self.path.name!r}, {kind}, rows={self.rows}, "
                f"k={self.k})")


def open_segment(path, verify: bool = True) -> SegmentFile:
    """Open (and by default checksum-verify) one segment file."""
    return SegmentFile(path, verify=verify)
