"""Ingest and query adapters that plug a :class:`TieredStore` into the
unified APIs.

:class:`TieredWriteBackend` makes ``backend="tiered"`` a first-class
:mod:`repro.ingest` target: session flushes become hot-tier
accumulates (and, past the byte budget, sealed L0 segments) through the
store's own kernel — which is the RAM
:class:`~repro.ingest.backends.PackedStoreWriteBackend` kernel, so
flushed rows land bit-identically to a RAM store fed the same batches.

:class:`TieredBackend` answers the :mod:`repro.api` read protocol by
gathering the store's newest versions into a RAM
:class:`~repro.store.PackedSketchStore` (cached per store epoch, so
back-to-back queries pay one gather) and delegating every roll-up to a
plain :class:`~repro.api.backends.PackedStoreBackend` — query semantics
on a tiered store are *defined* to be the packed-store semantics over
the gathered state.

Importing this module registers both adapters, so
``QueryService(tiered=store)`` and ``IngestSession(store)`` work on a
raw :class:`TieredStore`.
"""

from __future__ import annotations

import time

from ..api.backends import (Backend, GroupRollupResult, PackedStoreBackend,
                            RollupResult, register_adapter)
from ..core.solver import SolverConfig
from ..ingest.backends import (WriteBackend, WriteOutcome,
                               register_write_adapter)
from ..ingest.buffer import WriteBatch, check_columns
from ..ingest.spec import IngestSpec
from .tiered import TieredStore


class TieredWriteBackend(WriteBackend):
    """Adapter over a :class:`TieredStore` for ingest sessions."""

    name = "tiered"

    def __init__(self, store: TieredStore, spec: IngestSpec | None = None):
        self.store = store
        self.dimensions = store.dimensions

    def write(self, batch: WriteBatch) -> WriteOutcome:
        check_columns(len(self.dimensions), batch.dims, batch.values,
                      context="tiered ingest")
        if batch.rows == 0:
            return WriteOutcome(cells=0)
        start = time.perf_counter()
        cells = self.store.ingest_columns(list(batch.dims), batch.values)
        return WriteOutcome(cells=cells,
                            pack_seconds=time.perf_counter() - start)

    def read_target(self) -> TieredStore:
        return self.store


class TieredBackend(Backend):
    """Adapter over a :class:`TieredStore` for the query service."""

    name = "tiered"
    supports_packed = True

    def __init__(self, store: TieredStore,
                 config: SolverConfig | None = None):
        self.store = store
        self.config = config or SolverConfig()
        self._epoch: int | None = None
        self._inner: PackedStoreBackend | None = None

    def cache_target(self):
        return self.store

    def _delegate(self) -> PackedStoreBackend:
        """The packed backend over the current epoch's gathered state."""
        if self._inner is None or self._epoch != self.store.epoch:
            packed, keys = self.store.gather()
            if self.store.dimensions:
                self._inner = PackedStoreBackend(
                    packed, keys=keys, dimensions=self.store.dimensions,
                    config=self.config)
            else:
                self._inner = PackedStoreBackend(packed, config=self.config)
            self._epoch = self.store.epoch
        return self._inner

    def rollup(self, spec) -> RollupResult:
        return self._delegate().rollup(spec)

    def group_rollup(self, spec) -> GroupRollupResult:
        return self._delegate().group_rollup(spec)


register_write_adapter(lambda obj: isinstance(obj, TieredStore),
                       TieredWriteBackend)
register_adapter(lambda obj: isinstance(obj, TieredStore), TieredBackend)
