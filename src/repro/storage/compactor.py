"""Background segment compaction with a leveled size-ratio policy.

Every seal appends one small L0 segment, so an ingest-heavy store
accumulates many small files whose older rows are superseded garbage
(the RMW write path re-seals a key's full accumulator every time it is
touched again).  The :class:`Compactor` garbage-collects them:

* :class:`CompactionPolicy` buckets segments into levels by
  ``floor(log_ratio(rows))`` and picks the oldest **contiguous** run of
  same-level segments at least ``min_run`` long.  Contiguity in age
  order is a correctness requirement, not a heuristic — newest-version-
  wins resolution is positional, and merging non-adjacent segments
  could lift an old version above a newer one.
* :meth:`Compactor.run_once` applies one round deterministically
  (tests drive this); :meth:`Compactor.start` runs rounds on a daemon
  thread until :meth:`Compactor.stop`.

Compaction never re-folds sketches — it copies each key's newest row
byte-exactly (see :meth:`~repro.storage.TieredStore.compact_run`) — so
a compacted store answers every query with the same bits as before.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from ..core.errors import StorageError


@dataclass(frozen=True)
class CompactionPolicy:
    """Leveled size-ratio selection of one compaction run.

    ``size_ratio`` is the level width (level = floor(log_ratio(rows))):
    4.0 means segments within a 4x row-count band compact together, and
    each compaction promotes the result roughly one level up.
    ``min_run``/``max_run`` bound how many same-level neighbors trigger
    and join one round.
    """

    size_ratio: float = 4.0
    min_run: int = 2
    max_run: int = 8

    def __post_init__(self):
        if not self.size_ratio > 1.0:
            raise StorageError(
                f"size_ratio must exceed 1, got {self.size_ratio}")
        if not 2 <= int(self.min_run) <= int(self.max_run):
            raise StorageError(
                f"need 2 <= min_run <= max_run, got {self.min_run}"
                f"/{self.max_run}")

    def level_of(self, rows: int) -> int:
        return int(math.floor(math.log(max(int(rows), 1))
                              / math.log(self.size_ratio)))

    def pick_run(self, segments) -> tuple[int, int] | None:
        """Oldest contiguous same-level run of >= min_run segments."""
        levels = [self.level_of(seg.rows) for seg in segments]
        start = 0
        while start < len(levels):
            stop = start + 1
            while stop < len(levels) and levels[stop] == levels[start]:
                stop += 1
            if stop - start >= self.min_run:
                return start, min(stop, start + self.max_run)
            start = stop
        return None


class Compactor:
    """Drives compaction rounds against one :class:`TieredStore`.

    ``run_once`` is the deterministic unit (tests and the CLI call it
    directly); ``start``/``stop`` wrap it in a daemon thread that
    sleeps ``interval`` seconds whenever a round finds nothing to do.
    """

    def __init__(self, store, policy: CompactionPolicy | None = None,
                 interval: float = 0.05):
        self.store = store
        self.policy = policy or CompactionPolicy()
        self.interval = float(interval)
        #: Guards rounds and _thread: the daemon loop and the owning
        #: thread both touch them.
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.rounds = 0

    def run_once(self) -> dict | None:
        """One compaction round; ``None`` when no run qualifies."""
        run = self.policy.pick_run(self.store.segments)
        if run is None:
            return None
        outcome = self.store.compact_run(*run)
        with self._lock:
            self.rounds += 1
        return outcome

    def run_until_stable(self, max_rounds: int = 64) -> list[dict]:
        """Compact until quiescent (bounded); returns each round's outcome."""
        outcomes = []
        for _ in range(max_rounds):
            outcome = self.run_once()
            if outcome is None:
                break
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(target=self._loop,
                                      name="repro-compactor", daemon=True)
            self._thread = thread
        thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.run_once() is None:
                self._stop.wait(self.interval)

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        # Join outside the lock so the loop is never blocked against us.
        thread.join(timeout=timeout)

    def __enter__(self) -> "Compactor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
