"""Memory-budgeted tiered store: hot RAM rows over immutable segments.

:class:`TieredStore` is the LSM facade over :mod:`repro.storage.format`
segments.  The design constraint that shapes everything here is the
acceptance bar of the subsystem: **lossless tiers must answer every
query bit-identically to a RAM-resident**
:class:`~repro.store.PackedSketchStore`.  Floating-point addition is not
associative, so any scheme that folds *partial* per-key sketches across
segments at read time cannot meet that bar.  This store therefore keeps
exactly one live accumulator per cell key — the LSM merge operator is
applied at **write time**:

* A write to a key currently sealed on disk first copies the key's
  newest sealed row into a fresh hot row (an exact float64 copy), then
  accumulates into it with the very same
  :meth:`~repro.store.PackedSketchStore.batch_accumulate` kernel the
  RAM path uses.  Per key there is always a single left fold in input
  order — bit-for-bit the RAM result, by construction.
* Reads resolve each key to its **newest version**: the hot row if one
  exists, else the youngest segment holding the key.  Older versions
  are superseded garbage.
* ``seal`` freezes the hot tier into one immutable sorted segment
  (atomic manifest swap); it runs automatically when the hot tier
  exceeds its byte budget.
* Compaction (driven by :class:`~repro.storage.Compactor`) rewrites a
  contiguous age run of segments keeping only each key's newest version
  in the run — pure garbage collection, so it is trivially bit-exact —
  and demotion rewrites old warm segments in the
  :class:`~repro.storage.format.ColdSpec` low-precision layout.

Cell keys are ordered by *first-seen stamp* exactly as the RAM
:class:`~repro.ingest.backends.PackedStoreWriteBackend` numbers its
rows, so a :meth:`gather` reproduces the RAM store's row order and
every downstream fold (roll-ups, group-bys, top-n) sees the same
operand order.
"""

from __future__ import annotations

import os
import re
import threading
import zlib
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from ..core.errors import StorageError
from ..core.grouping import lexsort_groups
from ..telemetry import TELEMETRY
from ..core.sketch import DEFAULT_ORDER, MomentsSketch
from ..store import PackedSketchStore
from .format import (KIND_COLD, KIND_WARM, ColdSpec, SegmentFile,
                     build_segment_bytes, canonical_key, open_segment,
                     sort_key)
from .manifest import Manifest

#: Shared no-op context manager for disabled-telemetry paths
#: (``nullcontext`` is stateless, so one instance is reusable).
_NULL_CM = nullcontext()

#: Hot-tier byte budget before an automatic seal (4 MiB of SoA buffers).
DEFAULT_HOT_BUDGET = 4 << 20

_SEGMENT_NAME = re.compile(r"^seg-(\d{8})-[0-9a-f]{8}\.rsg$")


class TieredStore:
    """Hot/warm/cold tiered storage for one dimensioned sketch table.

    Parameters
    ----------
    directory:
        The store's home.  A directory with a manifest is *opened* (its
        recorded ``k``/``track_log``/``dimensions`` win; passing
        conflicting values raises); one without is *initialized*.
    k, track_log, dimensions:
        Store schema, persisted in the manifest on creation.
    hot_budget_bytes:
        Hot-tier byte budget: when the live
        :class:`~repro.store.PackedSketchStore` exceeds it after a
        write, the tier seals into a segment automatically.
    cold:
        Default :class:`~repro.storage.format.ColdSpec` for
        :meth:`demote`; ``None`` keeps every sealed segment warm until
        a spec is passed explicitly.
    verify:
        Checksum-verify segment files on open (recovery path).
    """

    def __init__(self, directory, k: int | None = None,
                 track_log: bool | None = None,
                 dimensions=None, hot_budget_bytes: int = DEFAULT_HOT_BUDGET,
                 cold: ColdSpec | None = None, verify: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hot_budget_bytes = int(hot_budget_bytes)
        if self.hot_budget_bytes <= 0:
            raise StorageError(f"hot_budget_bytes must be positive, "
                               f"got {hot_budget_bytes}")
        self.cold = cold
        self._lock = threading.RLock()
        self.segments: list[SegmentFile] = []
        self._index: dict[tuple, tuple[int, int]] = {}
        self._seen: dict[tuple, int] = {}
        self._next_seen = 0
        self._file_seq = 0
        self.epoch = 0
        self.stats_counters = {"seals": 0, "compactions": 0, "demotions": 0}
        if Manifest.exists(self.directory):
            self.manifest = Manifest.open(self.directory)
            meta = self.manifest.meta
            for name, given in (("k", k), ("track_log", track_log)):
                if given is not None and given != meta[name]:
                    raise StorageError(
                        f"store at {self.directory} has {name}={meta[name]}, "
                        f"asked for {given}")
            if dimensions is not None \
                    and tuple(dimensions) != tuple(meta["dimensions"]):
                raise StorageError(
                    f"store at {self.directory} has dimensions "
                    f"{tuple(meta['dimensions'])}, asked for "
                    f"{tuple(dimensions)}")
            self.k = int(meta["k"])
            self.track_log = bool(meta["track_log"])
            self.dimensions = tuple(meta["dimensions"])
            self._recover(verify)
        else:
            self.k = int(k) if k is not None else DEFAULT_ORDER
            self.track_log = True if track_log is None else bool(track_log)
            self.dimensions = tuple(dimensions or ())
            self.manifest = Manifest.create(self.directory, {
                "k": self.k, "track_log": self.track_log,
                "dimensions": list(self.dimensions)})
        self.hot = PackedSketchStore(k=self.k, track_log=self.track_log)
        self._hot_rows: dict[tuple, int] = {}
        self._hot_keys: list[tuple] = []

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self, verify: bool) -> None:
        """Open the manifest's live segments; sweep crash debris."""
        live = set(self.manifest.segments)
        for name in self.manifest.segments:
            path = self.directory / name
            if not path.is_file():
                raise StorageError(
                    f"manifest names missing segment {name}")
            self.segments.append(open_segment(path, verify=verify))
        for path in self.directory.iterdir():
            # Crash debris: half-written .tmp files and segments that
            # were written but never committed to the manifest.
            if path.name.endswith(".tmp") \
                    or (_SEGMENT_NAME.match(path.name)
                        and path.name not in live):
                path.unlink()
        self._rebuild_index_locked()
        for seg in self.segments:
            for key, stamp in zip(seg.keys, seg.first_seen):
                known = self._seen.get(key)
                if known is None or stamp < known:
                    self._seen[key] = int(stamp)
        self._next_seen = max(self._seen.values(), default=-1) + 1
        self._file_seq = max(
            (int(_SEGMENT_NAME.match(name).group(1))
             for name in live if _SEGMENT_NAME.match(name)), default=-1) + 1

    def _rebuild_index_locked(self) -> None:
        """Newest-version-wins key index (age order, later overwrites)."""
        self._index.clear()
        for position, seg in enumerate(self.segments):
            for row, key in enumerate(seg.keys):
                self._index[key] = (position, row)

    # ------------------------------------------------------------------
    # Write path (the RMW hot tier)
    # ------------------------------------------------------------------

    def _ensure_hot_row_locked(self, key: tuple) -> int:
        """The key's live accumulator row, fetching sealed state if any.

        The fetch is an exact float64 copy of the newest sealed version,
        so subsequent accumulates continue the identical single left
        fold a RAM-resident store would have run.
        """
        row = self._hot_rows.get(key)
        if row is not None:
            return row
        row = self.hot.new_row()
        self._hot_rows[key] = row
        self._hot_keys.append(key)
        location = self._index.get(key)
        if location is not None:
            seg = self.segments[location[0]]
            src = location[1]
            self.hot.counts[row] = seg.counts[src]
            self.hot.mins[row] = seg.mins[src]
            self.hot.maxs[row] = seg.maxs[src]
            self.hot.power_sums[row] = seg.power_sums[src]
            self.hot.log_sums[row] = seg.log_sums[src]
            self.hot.log_valid[row] = seg.log_valid[src]
        if key not in self._seen:
            self._seen[key] = self._next_seen
            self._next_seen += 1
        return row

    def ingest_columns(self, dim_columns, values) -> int:
        """Accumulate one columnar batch; returns cells touched.

        Bit-for-bit the
        :class:`~repro.ingest.backends.PackedStoreWriteBackend` kernel:
        the same :func:`~repro.core.grouping.lexsort_groups` grouping,
        the same ``batch_accumulate`` call shape, and first-seen row
        numbering in the same group order.
        """
        with self._lock:
            values = np.atleast_1d(np.asarray(values, dtype=float))
            if values.size == 0:
                return 0
            if not self.dimensions:
                if dim_columns:
                    raise StorageError(
                        "this store has no dimensions; drop the columns")
                row = self._ensure_hot_row_locked(())
                self.hot.accumulate_row(row, values)
                cells = 1
            else:
                if len(dim_columns) != len(self.dimensions):
                    raise StorageError(
                        f"expected {len(self.dimensions)} dimension "
                        f"columns, got {len(dim_columns)}")
                order, sorted_cols, _, starts, ends = \
                    lexsort_groups(list(dim_columns))
                sorted_values = values[order]
                sizes = ends - starts
                group_rows = np.empty(starts.size, dtype=np.intp)
                for i, group_start in enumerate(starts):
                    key = canonical_key(
                        tuple(col[group_start] for col in sorted_cols))
                    group_rows[i] = self._ensure_hot_row_locked(key)
                self.hot.batch_accumulate(np.repeat(group_rows, sizes),
                                          sorted_values)
                cells = int(starts.size)
            self.epoch += 1
            self._maybe_seal_locked()
            if TELEMETRY.enabled:
                self._publish_gauges_locked()
            return cells

    def ingest_values(self, values) -> int:
        """Dimension-less convenience wrapper over :meth:`ingest_columns`."""
        return self.ingest_columns([], values)

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def _maybe_seal_locked(self) -> str | None:
        if self.hot.size_bytes() >= self.hot_budget_bytes:
            return self.seal()
        return None

    def _write_new_segment_locked(self, store: PackedSketchStore, keys, seen,
                           cold: ColdSpec | None) -> str:
        """Write + fsync a content-named segment file (not yet committed)."""
        blob = build_segment_bytes(store, keys, seen, cold=cold)
        name = f"seg-{self._file_seq:08d}-{zlib.crc32(blob):08x}.rsg"
        self._file_seq += 1
        tmp = self.directory / (name + ".tmp")
        with open(tmp, "wb") as stream:
            stream.write(blob)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.directory / name)
        return name

    def seal(self) -> str | None:
        """Freeze the hot tier into one immutable sorted warm segment.

        Rows sealed here supersede any older on-disk versions of the
        same keys (newest-version-wins reads).  Returns the new segment
        name, or ``None`` when the hot tier is empty.
        """
        with self._lock:
            n = len(self.hot)
            if n == 0:
                return None
            span = (TELEMETRY.tracer.span("storage.seal",
                                          store=self.directory.name, rows=n)
                    if TELEMETRY.enabled else None)
            with span if span is not None else _NULL_CM:
                seen = [self._seen[key] for key in self._hot_keys]
                name = self._write_new_segment_locked(self.hot, self._hot_keys, seen,
                                               cold=None)
                self.manifest.commit(tuple(self.manifest.segments) + (name,))
                seg = open_segment(self.directory / name, verify=False)
                self.segments.append(seg)
                position = len(self.segments) - 1
                for row, key in enumerate(seg.keys):
                    self._index[key] = (position, row)
                self.hot = PackedSketchStore(k=self.k,
                                             track_log=self.track_log)
                self._hot_rows = {}
                self._hot_keys = []
                self.stats_counters["seals"] += 1
                self.epoch += 1
                if span is not None:
                    span.set_attribute("segment", name)
                    TELEMETRY.registry.counter(
                        "storage_seals_total",
                        store=self.directory.name).inc()
                    self._publish_gauges_locked()
            return name

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def keys(self) -> list[tuple]:
        """Every live cell key in first-seen order (the RAM row order)."""
        with self._lock:
            return sorted(self._seen, key=self._seen.get)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def gather(self, keys=None) -> tuple[PackedSketchStore, list[tuple]]:
        """Materialize newest versions as one RAM store, first-seen order.

        The result is an independent copy (safe across later seals,
        compactions, and segment deletions) whose row ``i`` holds
        ``keys[i]`` — exactly the layout the RAM-resident write path
        builds, so any fold over it is bit-identical to the RAM path.
        """
        with self._lock:
            if keys is None:
                keys = self.keys()
            else:
                keys = [canonical_key(key) for key in keys]
                missing = [key for key in keys
                           if key not in self._seen]
                if missing:
                    raise StorageError(f"unknown cell keys {missing[:3]}")
                keys.sort(key=self._seen.get)
            out = PackedSketchStore(k=self.k, track_log=self.track_log,
                                    capacity=len(keys))
            for _ in keys:
                out.new_row()
            hot_src: list[int] = []
            hot_dst: list[int] = []
            per_segment: dict[int, tuple[list[int], list[int]]] = {}
            for dst, key in enumerate(keys):
                row = self._hot_rows.get(key)
                if row is not None:
                    hot_src.append(row)
                    hot_dst.append(dst)
                    continue
                position, src = self._index[key]
                pairs = per_segment.setdefault(position, ([], []))
                pairs[0].append(src)
                pairs[1].append(dst)
            for position, (src_rows, dst_rows) in per_segment.items():
                self._copy_rows(out, dst_rows, self.segments[position],
                                src_rows)
            if hot_dst:
                self._copy_rows(out, hot_dst, self.hot, hot_src)
            return out, keys

    @staticmethod
    def _copy_rows(out: PackedSketchStore, dst_rows, source, src_rows) -> None:
        """Exact float64 row copy from a segment or store into ``out``."""
        src = np.asarray(src_rows, dtype=np.intp)
        dst = np.asarray(dst_rows, dtype=np.intp)
        out.counts[dst] = source.counts[src]
        out.mins[dst] = source.mins[src]
        out.maxs[dst] = source.maxs[src]
        out.power_sums[dst] = source.power_sums[src]
        out.log_sums[dst] = source.log_sums[src]
        out.log_valid[dst] = source.log_valid[src]

    def probe(self, key) -> MomentsSketch | None:
        """The newest version of one key, or ``None``.

        Unlike :meth:`gather` this walks segments newest-first with
        key-range pruning (no index), which is also how recovery checks
        and the CLI resolve point lookups.
        """
        with self._lock:
            key = canonical_key(key)
            row = self._hot_rows.get(key)
            if row is not None:
                return self.hot.sketch_at(row)
            probe = sort_key(key)
            for seg in reversed(self.segments):
                if not seg.maybe_contains(probe):
                    continue
                row = int(seg.rows_for([probe])[0])
                if row < 0:
                    continue
                out = MomentsSketch(self.k, self.track_log)
                out.count = float(seg.counts[row])
                out.min = float(seg.mins[row])
                out.max = float(seg.maxs[row])
                out.power_sums = np.array(seg.power_sums[row])
                out.log_sums = np.array(seg.log_sums[row])
                out.log_valid = bool(seg.log_valid[row])
                return out
            return None

    # ------------------------------------------------------------------
    # Compaction and demotion
    # ------------------------------------------------------------------

    def compact_run(self, start: int, stop: int) -> dict:
        """Rewrite segments ``[start, stop)`` keeping newest versions.

        Within the run each key's youngest row supersedes the rest;
        surviving rows are copied byte-exactly (no re-folding), so the
        swap cannot change any answer.  All-cold runs stay cold —
        re-encoding values already on the quantization grid is
        bit-stable — while mixed runs come out warm.
        """
        with self._lock:
            if not 0 <= start < stop <= len(self.segments) \
                    or stop - start < 2:
                raise StorageError(
                    f"invalid compaction run [{start}, {stop}) over "
                    f"{len(self.segments)} segments")
            span = (TELEMETRY.tracer.span("storage.compact",
                                          store=self.directory.name,
                                          start=start, stop=stop)
                    if TELEMETRY.enabled else None)
            with span if span is not None else _NULL_CM:
                chosen = self.segments[start:stop]
                newest: dict[tuple, tuple[int, int]] = {}
                for local, seg in enumerate(chosen):
                    for row, key in enumerate(seg.keys):
                        newest[key] = (local, row)
                keys = list(newest)
                merged = PackedSketchStore(k=self.k, track_log=self.track_log,
                                           capacity=len(keys))
                for _ in keys:
                    merged.new_row()
                per_local: dict[int, tuple[list[int], list[int]]] = {}
                for dst, key in enumerate(keys):
                    local, src = newest[key]
                    pairs = per_local.setdefault(local, ([], []))
                    pairs[0].append(src)
                    pairs[1].append(dst)
                for local, (src_rows, dst_rows) in per_local.items():
                    self._copy_rows(merged, dst_rows, chosen[local], src_rows)
                cold = None
                if all(seg.kind == KIND_COLD for seg in chosen):
                    cold = chosen[-1].codec
                seen = [self._seen[key] for key in keys]
                name = self._write_new_segment_locked(merged, keys, seen, cold=cold)
                live = list(self.manifest.segments)
                replaced = live[start:stop]
                live[start:stop] = [name]
                self.manifest.commit(live)
                for seg in chosen:
                    seg.close()
                    seg.path.unlink()
                self.segments[start:stop] = [
                    open_segment(self.directory / name, verify=False)]
                self._rebuild_index_locked()
                self.stats_counters["compactions"] += 1
                self.epoch += 1
                rows_in = sum(seg.rows for seg in chosen)
                if span is not None:
                    span.set_attribute("rows_in", rows_in)
                    span.set_attribute("rows_out", len(keys))
                    span.set_attribute("reclaimed_rows", rows_in - len(keys))
                    registry = TELEMETRY.registry
                    registry.counter("storage_compactions_total",
                                     store=self.directory.name).inc()
                    registry.counter("storage_reclaimed_rows_total",
                                     store=self.directory.name
                                     ).inc(rows_in - len(keys))
                    self._publish_gauges_locked()
                return {"replaced": replaced, "created": name,
                        "rows_in": rows_in, "rows_out": len(keys),
                        "reclaimed_rows": rows_in - len(keys),
                        "kind": "cold" if cold is not None else "warm"}

    def demote(self, count: int = 1, spec: ColdSpec | None = None) -> list:
        """Rewrite the oldest ``count`` warm segments in the cold layout.

        This is the lossy tier boundary: sums are quantized per the
        :class:`~repro.storage.format.ColdSpec` (and the log family is
        dropped unless ``keep_log``), in exchange for the Figure 17
        footprint.  Each segment swaps atomically via its own manifest
        commit.  Returns the new segment names.
        """
        with self._lock:
            spec = spec or self.cold
            if spec is None:
                raise StorageError(
                    "demotion needs a ColdSpec (store-level or explicit)")
            warm = [position for position, seg in enumerate(self.segments)
                    if seg.kind == KIND_WARM]
            created = []
            span = (TELEMETRY.tracer.span("storage.demote",
                                          store=self.directory.name,
                                          requested=int(count))
                    if TELEMETRY.enabled else None)
            with span if span is not None else _NULL_CM:
                for position in warm[:max(int(count), 0)]:
                    seg = self.segments[position]
                    staged = PackedSketchStore(k=self.k,
                                               track_log=self.track_log,
                                               capacity=seg.rows)
                    for _ in range(seg.rows):
                        staged.new_row()
                    rows = list(range(seg.rows))
                    self._copy_rows(staged, rows, seg, rows)
                    name = self._write_new_segment_locked(staged, seg.keys,
                                                   seg.first_seen, cold=spec)
                    live = list(self.manifest.segments)
                    live[position] = name
                    self.manifest.commit(live)
                    seg.close()
                    seg.path.unlink()
                    self.segments[position] = open_segment(
                        self.directory / name, verify=False)
                    created.append(name)
                if created:
                    self._rebuild_index_locked()
                    self.stats_counters["demotions"] += len(created)
                    self.epoch += 1
                if span is not None:
                    span.set_attribute("demoted", len(created))
                    TELEMETRY.registry.counter(
                        "storage_demotions_total",
                        store=self.directory.name).inc(len(created))
                    self._publish_gauges_locked()
            return created

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def disk_bytes(self) -> int:
        with self._lock:
            return sum(seg.size_bytes for seg in self.segments)

    def _publish_gauges_locked(self) -> None:
        """Push tier sizes, hot-budget occupancy, and compaction debt
        into the telemetry registry (caller holds the lock)."""
        if not TELEMETRY.enabled:
            return
        registry = TELEMETRY.registry
        store = self.directory.name
        warm = cold = stored_rows = 0
        for seg in self.segments:
            stored_rows += seg.rows
            if seg.kind == KIND_COLD:
                cold += seg.size_bytes
            else:
                warm += seg.size_bytes
        hot_bytes = self.hot.size_bytes()
        registry.gauge("storage_hot_bytes", store=store).set(hot_bytes)
        registry.gauge("storage_warm_bytes", store=store).set(warm)
        registry.gauge("storage_cold_bytes", store=store).set(cold)
        registry.gauge("storage_segments", store=store).set(
            len(self.segments))
        registry.gauge("storage_hot_budget_occupancy", store=store).set(
            hot_bytes / self.hot_budget_bytes if self.hot_budget_bytes else 0.0)
        # Compaction debt: stored rows superseded by newer versions —
        # what a full compaction pass would reclaim.
        registry.gauge("storage_compaction_debt_rows", store=store).set(
            stored_rows + len(self.hot) - len(self._seen))

    def stats(self) -> dict:
        with self._lock:
            tiers = {"warm": 0, "cold": 0}
            for seg in self.segments:
                tier = "cold" if seg.kind == KIND_COLD else "warm"
                tiers[tier] += seg.size_bytes
            return {
                "directory": str(self.directory),
                "k": self.k, "track_log": self.track_log,
                "dimensions": list(self.dimensions),
                "keys": len(self._seen),
                "hot_rows": len(self.hot),
                "hot_bytes": self.hot.size_bytes(),
                "hot_budget_bytes": self.hot_budget_bytes,
                "segments": [{"name": seg.path.name,
                              "kind": "cold" if seg.kind == KIND_COLD
                              else "warm",
                              "rows": seg.rows, "bytes": seg.size_bytes}
                             for seg in self.segments],
                "warm_bytes": tiers["warm"], "cold_bytes": tiers["cold"],
                "epoch": self.epoch, **self.stats_counters,
            }

    def close(self, seal: bool = True) -> None:
        """Seal any hot rows (unless told not to) and drop the mappings."""
        with self._lock:
            if seal:
                self.seal()
            for seg in self.segments:
                seg.close()
            self.segments = []
            self._index.clear()

    def __enter__(self) -> "TieredStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            return (f"TieredStore({str(self.directory)!r}, keys={len(self)}, "
                    f"segments={len(self.segments)}, hot={len(self.hot)})")
