"""Persistent tiered sketch storage: mmap segments, LSM writes, hot/cold.

The subsystem the ROADMAP's "persistent tiered storage" item asks for:

* :mod:`repro.storage.format` — the immutable, versioned, checksummed
  segment file (warm zero-copy mmap layout + Figure 17 low-precision
  cold layout);
* :mod:`repro.storage.manifest` — the crash-safe JSON-log manifest with
  atomic segment-set swaps;
* :mod:`repro.storage.tiered` — :class:`TieredStore`, the
  read-modify-write LSM facade whose lossless tiers answer bit-exactly
  against a RAM-resident :class:`~repro.store.PackedSketchStore`;
* :mod:`repro.storage.compactor` — leveled size-ratio compaction,
  explicit ``run_once`` plus a background thread;
* :mod:`repro.storage.backends` — ingest/query adapters registered into
  :mod:`repro.ingest` and :mod:`repro.api` on import.
"""

from .compactor import CompactionPolicy, Compactor
from .format import (ColdSpec, SegmentFile, build_segment_bytes,
                     canonical_key, open_segment, sort_key, write_segment)
from .manifest import MANIFEST_NAME, Manifest
from .tiered import DEFAULT_HOT_BUDGET, TieredStore
from .backends import TieredBackend, TieredWriteBackend  # noqa: E402  (registers adapters)

__all__ = [
    "CompactionPolicy", "Compactor", "ColdSpec", "SegmentFile",
    "build_segment_bytes", "canonical_key", "open_segment", "sort_key",
    "write_segment", "MANIFEST_NAME", "Manifest", "DEFAULT_HOT_BUDGET",
    "TieredStore", "TieredBackend", "TieredWriteBackend",
]
