"""Pre-aggregated data cube of mergeable summaries (Figure 1)."""

from .cube import CubeSchema, DataCube

__all__ = ["CubeSchema", "DataCube"]
