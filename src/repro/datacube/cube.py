"""Pre-aggregated data cube of mergeable summaries (Figure 1, Section 3.3).

A :class:`DataCube` keeps one summary per distinct tuple of dimension
values, exactly like the Druid-style deployment the paper targets: given a
metric column and ``d`` dimension columns, ingestion groups rows by their
d-tuple and accumulates each group into its own summary.  Roll-up queries
then *merge* the summaries of every cell matching a filter — no raw data is
touched, and query cost is ``t_merge * n_merge + t_est`` (Eq. 2).

The cube is engine-agnostic: any :class:`~repro.summaries.base.QuantileSummary`
factory works, which is how the benchmarks compare summary types under
identical aggregation plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.errors import QueryError
from ..summaries.base import QuantileSummary

#: A cube cell key: one value per dimension, in schema order.
CellKey = tuple


@dataclass(frozen=True)
class CubeSchema:
    """Dimension names (categorical) for a cube; the metric is implicit."""

    dimensions: tuple[str, ...]

    def __post_init__(self):
        if not self.dimensions:
            raise QueryError("a cube needs at least one dimension")
        if len(set(self.dimensions)) != len(self.dimensions):
            raise QueryError("duplicate dimension names")

    def index_of(self, dimension: str) -> int:
        try:
            return self.dimensions.index(dimension)
        except ValueError:
            raise QueryError(
                f"unknown dimension {dimension!r}; have {self.dimensions}") from None


class DataCube:
    """Summary-per-cell data cube with mergeable roll-ups."""

    def __init__(self, schema: CubeSchema,
                 summary_factory: Callable[[], QuantileSummary]):
        self.schema = schema
        self.summary_factory = summary_factory
        self.cells: dict[CellKey, QuantileSummary] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, dimension_columns: Sequence[np.ndarray],
               values: np.ndarray) -> None:
        """Group rows by dimension tuple and accumulate per-cell summaries.

        ``dimension_columns`` holds one array per schema dimension, aligned
        with ``values``.  Grouping is vectorized (lexicographic sort +
        boundary detection), so ingestion is a single pass.
        """
        if len(dimension_columns) != len(self.schema.dimensions):
            raise QueryError(
                f"expected {len(self.schema.dimensions)} dimension columns, "
                f"got {len(dimension_columns)}")
        values = np.asarray(values, dtype=float)
        columns = [np.asarray(col) for col in dimension_columns]
        for col in columns:
            if col.shape[0] != values.shape[0]:
                raise QueryError("dimension column length mismatch")
        order = np.lexsort(tuple(reversed(columns)))
        sorted_cols = [col[order] for col in columns]
        sorted_values = values[order]
        boundary = np.zeros(values.shape[0], dtype=bool)
        boundary[0] = True
        for col in sorted_cols:
            boundary[1:] |= col[1:] != col[:-1]
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], values.shape[0])
        for start, end in zip(starts, ends):
            key = tuple(col[start] for col in sorted_cols)
            cell = self.cells.get(key)
            if cell is None:
                cell = self.summary_factory()
                self.cells[key] = cell
            cell.accumulate(sorted_values[start:end])

    def insert_cell(self, key: CellKey, summary: QuantileSummary) -> None:
        """Install a pre-built summary (merging if the cell exists)."""
        key = tuple(key)
        if len(key) != len(self.schema.dimensions):
            raise QueryError("cell key arity mismatch")
        existing = self.cells.get(key)
        if existing is None:
            self.cells[key] = summary
        else:
            existing.merge(summary)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def matching_cells(self, filters: Mapping[str, object] | None = None
                       ) -> Iterable[tuple[CellKey, QuantileSummary]]:
        """Cells whose key matches every (dimension == value) filter."""
        if not filters:
            yield from self.cells.items()
            return
        positions = {self.schema.index_of(dim): value
                     for dim, value in filters.items()}
        for key, summary in self.cells.items():
            if all(key[pos] == value for pos, value in positions.items()):
                yield key, summary

    def rollup(self, filters: Mapping[str, object] | None = None) -> QuantileSummary:
        """Merge every matching cell into a fresh aggregate (Figure 1).

        This is the hot path the paper optimizes: one ``merge`` per
        matching cell.
        """
        aggregate: QuantileSummary | None = None
        merges = 0
        for _, summary in self.matching_cells(filters):
            if aggregate is None:
                aggregate = summary.copy()
            else:
                aggregate.merge(summary)
            merges += 1
        if aggregate is None:
            raise QueryError(f"no cells match filter {dict(filters or {})}")
        self.last_merge_count = merges
        return aggregate

    def quantile(self, phi: float,
                 filters: Mapping[str, object] | None = None) -> float:
        """Roll up matching cells and estimate a quantile (Eq. 2's plan)."""
        return self.rollup(filters).quantile(phi)

    def group_by(self, dimension: str,
                 filters: Mapping[str, object] | None = None
                 ) -> dict[object, QuantileSummary]:
        """Merged aggregate per distinct value of ``dimension``.

        The building block for threshold queries (Eq. 3): each group's
        summary can then be tested against a predicate.
        """
        position = self.schema.index_of(dimension)
        groups: dict[object, QuantileSummary] = {}
        for key, summary in self.matching_cells(filters):
            value = key[position]
            existing = groups.get(value)
            if existing is None:
                groups[value] = summary.copy()
            else:
                existing.merge(summary)
        if not groups:
            raise QueryError(f"no cells match filter {dict(filters or {})}")
        return groups
