"""Pre-aggregated data cube of mergeable summaries (Figure 1, Section 3.3).

A :class:`DataCube` keeps one summary per distinct tuple of dimension
values, exactly like the Druid-style deployment the paper targets: given a
metric column and ``d`` dimension columns, ingestion groups rows by their
d-tuple and accumulates each group into its own summary.  Roll-up queries
then *merge* the summaries of every cell matching a filter — no raw data is
touched, and query cost is ``t_merge * n_merge + t_est`` (Eq. 2).

The cube is engine-agnostic: any :class:`~repro.summaries.base.QuantileSummary`
factory works, which is how the benchmarks compare summary types under
identical aggregation plans.

Backends
--------
Two cell-storage backends drive the same query API:

* ``dict`` — one summary object per cell, merged in a Python loop.  Works
  for every summary type.
* ``packed`` — moments-sketch cells live as rows of one
  :class:`~repro.store.PackedSketchStore`, so a roll-up over ``n_merge``
  matching cells is a single vectorized reduction instead of ``n_merge``
  interpreter round trips (the Eq. 2 merge term at hardware speed).  Only
  available when the factory produces
  :class:`~repro.summaries.moments_summary.MomentsSummary`.

The default ``backend="auto"`` picks ``packed`` for moments summaries and
``dict`` otherwise.  Both backends expose ``cells`` as a mapping from cell
key to summary and produce bit-for-bit identical merge results (the packed
reduction is a strict left fold in cell insertion order).
"""

from __future__ import annotations

import time
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.errors import QueryError
from ..core.grouping import lexsort_groups
from ..core.params import normalize_q
from ..core.sketch import MomentsSketch
from ..store import PackedSketchStore
from ..summaries.base import QuantileSummary
from ..summaries.moments_summary import MomentsSummary

#: A cube cell key: one value per dimension, in schema order.
CellKey = tuple


@dataclass(frozen=True)
class CubeSchema:
    """Dimension names (categorical) for a cube; the metric is implicit."""

    dimensions: tuple[str, ...]

    def __post_init__(self):
        if not self.dimensions:
            raise QueryError("a cube needs at least one dimension")
        if len(set(self.dimensions)) != len(self.dimensions):
            raise QueryError("duplicate dimension names")

    def index_of(self, dimension: str) -> int:
        try:
            return self.dimensions.index(dimension)
        except ValueError:
            raise QueryError(
                f"unknown dimension {dimension!r}; have {self.dimensions}") from None


class _PackedCellView(MappingABC):
    """Read-only mapping view over a packed cube's cells.

    Materializes an independent :class:`MomentsSummary` copy per access:
    unlike the dict backend, mutating a returned summary never updates
    the cube (the packed store is only written through ``ingest`` /
    ``insert_cell``), and copies stay valid across store growth.
    """

    def __init__(self, cube: "DataCube"):
        self._cube = cube

    def __getitem__(self, key: CellKey) -> QuantileSummary:
        return self._cube._summary_view(self._cube._rows[key])

    def __iter__(self):
        return iter(self._cube._rows)

    def __len__(self) -> int:
        return len(self._cube._rows)


class DataCube:
    """Summary-per-cell data cube with mergeable roll-ups."""

    def __init__(self, schema: CubeSchema,
                 summary_factory: Callable[[], QuantileSummary],
                 backend: str = "auto"):
        if backend not in ("auto", "dict", "packed"):
            raise QueryError(
                f"unknown backend {backend!r}; use 'auto', 'dict', or 'packed'")
        self.schema = schema
        self.summary_factory = summary_factory
        template = summary_factory()
        if backend == "packed" and not isinstance(template, MomentsSummary):
            raise QueryError(
                "packed backend requires a MomentsSummary factory, got "
                f"{type(template).__name__}")
        self._packed = (backend == "packed" or
                        (backend == "auto" and isinstance(template, MomentsSummary)))
        self.cells: Mapping[CellKey, QuantileSummary]
        if self._packed:
            self._template = template
            self._store = PackedSketchStore(k=template.sketch.k,
                                            track_log=template.sketch.track_log)
            self._rows: dict[CellKey, int] = {}
            self.cells = _PackedCellView(self)
        else:
            self.cells = {}

    @property
    def backend(self) -> str:
        """The active cell-storage backend ('dict' or 'packed')."""
        return "packed" if self._packed else "dict"

    @property
    def store(self) -> PackedSketchStore | None:
        """The packed backing store (None on the dict backend)."""
        return self._store if self._packed else None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, dimension_columns: Sequence[np.ndarray],
               values: np.ndarray) -> None:
        """Group rows by dimension tuple and accumulate per-cell summaries.

        Thin shim over the unified ingestion API (:mod:`repro.ingest`):
        the batch is validated and written through
        :class:`~repro.ingest.CubeWriteBackend` in a single flush, so
        results are bit-for-bit what this entry point always produced.
        Use an :class:`~repro.ingest.IngestSession` directly for
        buffered micro-batched writes and per-flush reports.
        """
        from ..ingest import write_columns
        write_columns(self, values, dims=dimension_columns)

    def _ingest_columns(self, dimension_columns: Sequence[np.ndarray],
                        values: np.ndarray) -> int:
        """One-batch roll-up kernel; returns the distinct cells touched.

        ``dimension_columns`` holds one array per schema dimension, aligned
        with ``values``.  Grouping is vectorized (lexicographic sort +
        boundary detection), so ingestion is a single pass; on the packed
        backend the per-cell accumulation itself is one shared Vandermonde
        pass via :meth:`PackedSketchStore.batch_accumulate`.
        """
        values = np.asarray(values, dtype=float)
        order, sorted_cols, _, starts, ends = \
            lexsort_groups(dimension_columns)
        sorted_values = values[order]
        if self._packed:
            group_rows = np.empty(starts.size, dtype=np.intp)
            for i, start in enumerate(starts):
                key = tuple(col[start] for col in sorted_cols)
                row = self._rows.get(key)
                if row is None:
                    row = self._store.new_row()
                    self._rows[key] = row
                group_rows[i] = row
            sizes = ends - starts
            # Slab the accumulation at group boundaries so the transient
            # Vandermonde matrix stays bounded (~slab values, or one
            # group if a single group exceeds it) while each cell still
            # receives its whole batch in one call — keeping results
            # bit-for-bit equal to the dict backend's per-cell accumulate.
            slab = 500_000
            span_start = 0
            pending = 0
            for i in range(starts.size):
                pending += sizes[i]
                if pending >= slab or i == starts.size - 1:
                    self._store.batch_accumulate(
                        np.repeat(group_rows[span_start:i + 1],
                                  sizes[span_start:i + 1]),
                        sorted_values[starts[span_start]:ends[i]])
                    span_start = i + 1
                    pending = 0
            return int(starts.size)
        for start, end in zip(starts, ends):
            key = tuple(col[start] for col in sorted_cols)
            cell = self.cells.get(key)
            if cell is None:
                cell = self.summary_factory()
                self.cells[key] = cell
            cell.accumulate(sorted_values[start:end])
        return int(starts.size)

    def insert_cell(self, key: CellKey, summary: QuantileSummary) -> None:
        """Install a pre-built summary (merging if the cell exists)."""
        key = tuple(key)
        if len(key) != len(self.schema.dimensions):
            raise QueryError("cell key arity mismatch")
        if self._packed:
            if not isinstance(summary, MomentsSummary):
                raise QueryError(
                    "packed cube cells must be MomentsSummary, got "
                    f"{type(summary).__name__}")
            row = self._rows.get(key)
            if row is None:
                self._rows[key] = self._store.append(summary.sketch)
            else:
                self._store.merge_into_row(row, summary.sketch)
            return
        existing = self.cells.get(key)
        if existing is None:
            self.cells[key] = summary
        else:
            existing.merge(summary)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def matching_cells(self, filters: Mapping[str, object] | None = None
                       ) -> Iterable[tuple[CellKey, QuantileSummary]]:
        """Cells whose key matches every (dimension == value) filter."""
        if not filters:
            yield from self.cells.items()
            return
        positions = {self.schema.index_of(dim): value
                     for dim, value in filters.items()}
        for key, summary in self.cells.items():
            if all(key[pos] == value for pos, value in positions.items()):
                yield key, summary

    def _matching_rows(self, filters: Mapping[str, object] | None
                       ) -> np.ndarray:
        """Packed-backend row indices matching a filter, insertion order."""
        if not filters:
            rows: Iterable[int] = self._rows.values()
        else:
            positions = {self.schema.index_of(dim): value
                         for dim, value in filters.items()}
            rows = (row for key, row in self._rows.items()
                    if all(key[pos] == value for pos, value in positions.items()))
        return np.fromiter(rows, dtype=np.intp)

    def rollup(self, filters: Mapping[str, object] | None = None) -> QuantileSummary:
        """Merge every matching cell into a fresh aggregate (Figure 1).

        This is the hot path the paper optimizes: on the dict backend one
        ``merge`` per matching cell; on the packed backend a single
        vectorized reduction over the matching store rows.
        """
        return self.rollup_profiled(filters)[0]

    def rollup_profiled(self, filters: Mapping[str, object] | None = None
                        ) -> tuple[QuantileSummary, dict]:
        """:meth:`rollup` plus its execution profile, for the unified API.

        Returns ``(aggregate, profile)`` where ``profile`` carries
        ``cells_scanned``, ``merge_calls`` (vectorized reductions on the
        packed backend, pairwise merges on dict), ``planner_seconds``
        (cell matching), ``merge_seconds``, and ``route``.  Updates
        ``last_merge_count`` exactly like :meth:`rollup`.
        """
        start = time.perf_counter()
        if self._packed:
            rows = self._matching_rows(filters)
            planner = time.perf_counter() - start
            if rows.size == 0:
                raise QueryError(f"no cells match filter {dict(filters or {})}")
            start = time.perf_counter()
            merged = self._store.batch_merge(rows)
            merge_seconds = time.perf_counter() - start
            self.last_merge_count = int(rows.size)
            return self._wrap(merged), {
                "cells_scanned": int(rows.size), "merge_calls": 1,
                "planner_seconds": planner, "merge_seconds": merge_seconds,
                "route": "packed"}
        matching = [summary for _, summary in self.matching_cells(filters)]
        planner = time.perf_counter() - start
        if not matching:
            raise QueryError(f"no cells match filter {dict(filters or {})}")
        start = time.perf_counter()
        aggregate = matching[0].copy()
        for summary in matching[1:]:
            aggregate.merge(summary)
        merge_seconds = time.perf_counter() - start
        self.last_merge_count = len(matching)
        return aggregate, {
            "cells_scanned": len(matching),
            "merge_calls": len(matching) - 1, "planner_seconds": planner,
            "merge_seconds": merge_seconds, "route": "loop"}

    def quantile(self, q: float | None = None,
                 filters: Mapping[str, object] | None = None, *,
                 phi: float | None = None) -> float:
        """Roll up matching cells and estimate a quantile (Eq. 2's plan).

        Shim over the unified query API: executes a ``quantile``
        :class:`~repro.api.QuerySpec` through
        :class:`~repro.api.QueryService`, so the packed/loop routing and
        timing accounting are shared with every other entry point.  The
        ``phi=`` keyword is deprecated in favor of ``q``.
        """
        from ..api import QuerySpec, QueryService
        q = normalize_q(q, phi, default=0.5)
        spec = QuerySpec(kind="quantile", quantiles=(q,),
                         filters=filters or {})
        return QueryService(cube=self).execute(spec).value

    def group_by(self, dimension: str,
                 filters: Mapping[str, object] | None = None
                 ) -> dict[object, QuantileSummary]:
        """Merged aggregate per distinct value of ``dimension``.

        Shim over the unified API's group scan (the building block for
        Eq. 3 threshold queries): delegates to
        :meth:`~repro.api.backends.CubeBackend.group_rollup` and returns
        the per-group summaries.
        """
        from ..api import CubeBackend, QuerySpec
        spec = QuerySpec(kind="group_by", group_dimension=dimension,
                         filters=filters or {})
        return CubeBackend(self).group_rollup(spec).groups

    def group_quantiles(self, dimension: str, q=None,
                        filters: Mapping[str, object] | None = None, *,
                        batched: bool = True,
                        phi: float | None = None) -> dict[object, dict[str, float]]:
        """Finalized quantile estimates per group, solved in one call.

        Unlike :meth:`group_by` (which returns unsolved summaries), this
        runs the unified API's ``group_by`` kind, so every surviving
        group joins one batched max-entropy solve — the whole
        high-cardinality estimation phase is a single stacked Newton
        pass instead of one solve per group.  ``q`` may be a scalar or a
        sequence of quantile fractions; the result maps each group value
        to ``{qkey(q): estimate}``.  ``batched=False`` A/Bs the scalar
        per-group path.  The ``phi=`` keyword is deprecated.
        """
        from ..api import QuerySpec, QueryService
        if q is None or isinstance(q, (int, float)):
            qs = (normalize_q(q if q is None else float(q), phi, default=0.5),)
        else:
            qs = tuple(float(value) for value in q)
        spec = QuerySpec(kind="group_by", quantiles=qs,
                         group_dimension=dimension, filters=filters or {})
        response = QueryService(cube=self, batched=batched).execute(spec)
        return dict(response.groups or {})

    def _group_summaries(self, dimension: str,
                         filters: Mapping[str, object] | None = None,
                         profile: dict | None = None
                         ) -> dict[object, QuantileSummary]:
        """Backend primitive behind :meth:`group_by`: one merged summary
        per distinct value of ``dimension`` (the packed backend performs
        one vectorized reduction per group).

        ``profile``, when given, receives ``locate_seconds`` (row/group
        selection — planner work) and ``merge_seconds`` (the group-wise
        reduction) so callers can split phase accounting.
        """
        position = self.schema.index_of(dimension)
        if self._packed:
            start = time.perf_counter()
            rows: list[int] = []
            group_keys: list[object] = []
            for key, row in self._iter_matching_items(filters):
                rows.append(row)
                group_keys.append(key[position])
            locate_seconds = time.perf_counter() - start
            if not rows:
                raise QueryError(f"no cells match filter {dict(filters or {})}")
            start = time.perf_counter()
            merged = self._store.batch_merge_by(rows, group_keys)
            out = {value: self._wrap(sketch)
                   for value, sketch in merged.items()}
            if profile is not None:
                profile["locate_seconds"] = locate_seconds
                profile["merge_seconds"] = time.perf_counter() - start
            return out
        start = time.perf_counter()
        groups: dict[object, QuantileSummary] = {}
        for key, summary in self.matching_cells(filters):
            value = key[position]
            existing = groups.get(value)
            if existing is None:
                groups[value] = summary.copy()
            else:
                existing.merge(summary)
        if not groups:
            raise QueryError(f"no cells match filter {dict(filters or {})}")
        if profile is not None:
            # The object-summary loop fuses selection and merging; report
            # it all as merge work.
            profile["locate_seconds"] = 0.0
            profile["merge_seconds"] = time.perf_counter() - start
        return groups

    # ------------------------------------------------------------------
    # Packed-backend internals
    # ------------------------------------------------------------------

    def _iter_matching_items(self, filters: Mapping[str, object] | None
                             ) -> Iterable[tuple[CellKey, int]]:
        if not filters:
            yield from self._rows.items()
            return
        positions = {self.schema.index_of(dim): value
                     for dim, value in filters.items()}
        for key, row in self._rows.items():
            if all(key[pos] == value for pos, value in positions.items()):
                yield key, row

    def _wrap(self, sketch: MomentsSketch) -> MomentsSummary:
        out = MomentsSummary(k=sketch.k, track_log=sketch.track_log,
                             config=self._template.config)
        out.sketch = sketch
        return out

    def _summary_view(self, row: int) -> MomentsSummary:
        # A copy, not a zero-copy view: a view would write through to the
        # store on mutation (corrupting counts vs power sums) and detach
        # whenever growth reallocates the buffers.
        return self._wrap(self._store.sketch_at(row, copy=True))
