"""Exact quantile "summary": retains every value.

Used as ground truth in tests and as the "select an exact quantile online"
baseline of Section 6.2.1.  Mergeable trivially (concatenation), at O(n)
space — the thing every sketch in this repository exists to avoid.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array


class ExactSummary(QuantileSummary):
    """Stores the full dataset; quantiles are exact order statistics."""

    name = "Exact"

    def __init__(self):
        self._chunks: list[np.ndarray] = []
        self._sorted: np.ndarray | None = None
        self._count = 0.0

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._chunks.append(x)
        self._sorted = None
        self._count += x.size

    def merge(self, other: "QuantileSummary") -> "ExactSummary":
        self._check_type(other)
        assert isinstance(other, ExactSummary)
        self._chunks.extend(chunk.copy() for chunk in other._chunks)
        self._sorted = None
        self._count += other._count
        return self

    def _materialize(self) -> np.ndarray:
        if self._sorted is None:
            if not self._chunks:
                raise ValueError("empty summary")
            self._sorted = np.sort(np.concatenate(self._chunks))
            self._chunks = [self._sorted]
        return self._sorted

    def quantile(self, phi: float) -> float:
        data = self._materialize()
        # Rank definition from Section 3.1: the item with rank floor(phi n).
        rank = int(np.floor(min(max(phi, 0.0), 1.0) * data.size))
        return float(data[min(rank, data.size - 1)])

    def rank(self, t: float) -> int:
        """Number of elements strictly below ``t`` (Section 3.1)."""
        return int(np.searchsorted(self._materialize(), t, side="left"))

    def quantile_error(self, estimate: float, phi: float) -> float:
        """Paper Eq. (1): |rank(estimate) - floor(phi n)| / n."""
        data = self._materialize()
        return abs(self.rank(estimate) - np.floor(phi * data.size)) / data.size

    def size_bytes(self) -> int:
        return int(8 * self._count)

    def copy(self) -> "ExactSummary":
        out = ExactSummary()
        out._chunks = [chunk.copy() for chunk in self._chunks]
        out._count = self._count
        return out

    @property
    def count(self) -> float:
        return self._count

    def error_upper_bound(self, phi: float) -> float | None:
        return 0.0
