"""Mergeable equi-width histogram with power-of-two ranges ("EW-Hist") [65].

Bins of identical width ``2^e`` aligned to a global grid (bin boundaries at
integer multiples of the width).  Keeping widths to powers of two aligned to
the same grid makes merging *exact*: two histograms can always be brought to
a common width by halving resolution (pairwise bin addition), never by
splitting — the trick JetStream [65] uses for degradable aggregations.

When incoming data exceeds the covered range or the bin budget, the width
doubles and adjacent bins collapse.  Estimates interpolate uniformly within
a bin, so accuracy is poor on long-tailed data (milan/retail in Figure 7)
while merges are among the fastest of the comparison — exactly the tradeoff
the paper reports.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array


class EquiWidthHistogramSummary(QuantileSummary):
    """Equi-width histogram with power-of-two bucket widths."""

    name = "EW-Hist"

    def __init__(self, max_bins: int = 100):
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = int(max_bins)
        self._counts = np.zeros(0)
        self._exponent = 0          # bin width = 2 ** exponent
        self._origin = 0            # left edge = origin * width (grid units)
        self._min = np.inf
        self._max = -np.inf
        self._count = 0.0

    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return 2.0 ** self._exponent

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._count += x.size
        self._min = min(self._min, float(x.min()))
        self._max = max(self._max, float(x.max()))
        if self._counts.size == 0:
            self._initialize_range(float(x.min()), float(x.max()))
        self._cover(float(x.min()), float(x.max()))
        indices = np.floor(x / self.width).astype(int) - self._origin
        np.add.at(self._counts, np.clip(indices, 0, self._counts.size - 1), 1.0)

    def _initialize_range(self, lo: float, hi: float) -> None:
        span = max(hi - lo, 1e-9)
        exponent = math.ceil(math.log2(span / self.max_bins))
        self._exponent = exponent
        self._origin = math.floor(lo / 2.0 ** exponent)
        bins = math.floor(hi / 2.0 ** exponent) - self._origin + 1
        self._counts = np.zeros(max(bins, 1))

    def _cover(self, lo: float, hi: float) -> None:
        """Grow (and if needed coarsen) until [lo, hi] fits in the budget."""
        while True:
            width = self.width
            first = math.floor(lo / width)
            last = math.floor(hi / width)
            new_origin = min(self._origin, first)
            new_end = max(self._origin + self._counts.size - 1, last)
            needed = new_end - new_origin + 1
            if needed <= self.max_bins:
                if new_origin < self._origin or needed > self._counts.size:
                    grown = np.zeros(needed)
                    offset = self._origin - new_origin
                    grown[offset:offset + self._counts.size] = self._counts
                    self._counts = grown
                    self._origin = new_origin
                return
            self._halve_resolution()

    def _halve_resolution(self) -> None:
        """Double the bin width: pairwise-add bins on the aligned grid."""
        new_origin = self._origin >> 1
        # Align: if origin is odd, prepend an empty bin so pairs line up.
        counts = self._counts
        if self._origin % 2 != 0:
            counts = np.concatenate([[0.0], counts])
        if counts.size % 2 != 0:
            counts = np.concatenate([counts, [0.0]])
        self._counts = counts[0::2] + counts[1::2]
        self._origin = new_origin
        self._exponent += 1

    def merge(self, other: "QuantileSummary") -> "EquiWidthHistogramSummary":
        self._check_type(other)
        assert isinstance(other, EquiWidthHistogramSummary)
        if other._counts.size == 0:
            return self
        if self._counts.size == 0:
            for attr in ("_counts", "_exponent", "_origin", "_min", "_max", "_count"):
                setattr(self, attr, getattr(other, attr))
            self._counts = other._counts.copy()
            return self
        other_copy = other.copy()
        # Bring both to the coarser common width (halving is exact).
        while self._exponent < other_copy._exponent:
            self._halve_resolution()
        while other_copy._exponent < self._exponent:
            other_copy._halve_resolution()
        self._min = min(self._min, other_copy._min)
        self._max = max(self._max, other_copy._max)
        self._count += other_copy._count
        self._cover(other_copy._origin * self.width,
                    (other_copy._origin + other_copy._counts.size) * self.width * (1 - 1e-12))
        offset = other_copy._origin - self._origin
        span = other_copy._counts.size
        if offset < 0 or offset + span > self._counts.size:
            # _cover may itself have halved; re-align the other side.
            while other_copy._exponent < self._exponent:
                other_copy._halve_resolution()
            offset = other_copy._origin - self._origin
            span = other_copy._counts.size
        self._counts[offset:offset + span] += other_copy._counts
        return self

    # ------------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        if self._count == 0:
            raise ValueError("empty summary")
        total = self._counts.sum()
        target = min(max(phi, 0.0), 1.0) * total
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, self._counts.size - 1)
        prev = cumulative[index - 1] if index > 0 else 0.0
        in_bin = self._counts[index]
        frac = (target - prev) / in_bin if in_bin > 0 else 0.5
        left = (self._origin + index) * self.width
        estimate = left + frac * self.width
        return float(np.clip(estimate, self._min, self._max))

    def size_bytes(self) -> int:
        # 8 bytes per bucket count plus width/origin/extrema metadata, the
        # accounting used for the paper's EW-Hist size axis.
        return 8 * self._counts.size + 12

    def copy(self) -> "EquiWidthHistogramSummary":
        out = EquiWidthHistogramSummary(self.max_bins)
        out._counts = self._counts.copy()
        out._exponent = self._exponent
        out._origin = self._origin
        out._min = self._min
        out._max = self._max
        out._count = self._count
        return out

    @property
    def count(self) -> float:
        return self._count

    def error_upper_bound(self, phi: float) -> float | None:
        """Largest bin's mass fraction: a query can be off by a full bin."""
        if self._count == 0:
            return None
        return float(self._counts.max() / self._counts.sum())

    @property
    def bin_count(self) -> int:
        return self._counts.size
