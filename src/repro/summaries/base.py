"""Common interface for mergeable quantile summaries (Section 3.2).

Every summary evaluated in the paper implements the same contract so the
workload harness, the data cube, and the engines can treat them uniformly —
the paper's point that mergeable summaries are "algebraic aggregate
functions" pluggable into any aggregation system.

``accumulate`` ingests raw values; ``merge`` folds another summary of the
same type/parameterization in place; ``quantile`` answers phi-quantile
queries; ``size_bytes`` reports the serialized footprint used for the
size-accuracy tradeoff plots.  ``error_upper_bound`` exposes each summary's
*guaranteed* worst-case rank error where one exists (Appendix E /
Figure 23); summaries without guarantees return ``None``.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, TypeVar

import numpy as np

S = TypeVar("S", bound="QuantileSummary")


class QuantileSummary(abc.ABC):
    """Abstract mergeable quantile summary."""

    #: Short display name matching the paper's figures (e.g. "GK").
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Required interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def accumulate(self, values: Iterable[float]) -> None:
        """Ingest raw values (scalar, iterable, or numpy array)."""

    @abc.abstractmethod
    def merge(self, other: "QuantileSummary") -> "QuantileSummary":
        """Fold ``other`` into this summary in place; returns ``self``."""

    @abc.abstractmethod
    def quantile(self, phi: float) -> float:
        """Estimate the phi-quantile of everything ingested so far."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate serialized size in bytes (for size/accuracy plots)."""

    @abc.abstractmethod
    def copy(self: S) -> S:
        """Deep copy; the original must be unaffected by future updates."""

    @property
    @abc.abstractmethod
    def count(self) -> float:
        """Number of values ingested."""

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------

    @classmethod
    def from_data(cls: type[S], data, **params) -> S:
        summary = cls(**params)
        summary.accumulate(data)
        return summary

    def quantiles(self, phis: Sequence[float]) -> np.ndarray:
        return np.asarray([self.quantile(float(p)) for p in phis])

    def error_upper_bound(self, phi: float) -> float | None:
        """Guaranteed worst-case rank error at phi, or None if no guarantee."""
        return None

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def _check_type(self, other: "QuantileSummary") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"{type(self).__name__}(n={self.count:.0f}, "
                f"{self.size_bytes()} bytes)")


def as_array(values) -> np.ndarray:
    """Normalize accumulate() input to a 1-d float array."""
    x = np.atleast_1d(np.asarray(values, dtype=float))
    if x.ndim != 1:
        x = x.ravel()
    return x


def weighted_quantile(values: np.ndarray, weights: np.ndarray, phi: float) -> float:
    """phi-quantile of a weighted empirical distribution.

    Shared by the buffer-based sketches (Merge12, RandomW, Sampling): sort by
    value, walk the cumulative weight to rank phi * W.
    """
    if values.size == 0:
        raise ValueError("empty weighted sample")
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    target = phi * cumulative[-1]
    index = int(np.searchsorted(cumulative, target, side="left"))
    index = min(index, sorted_values.size - 1)
    return float(sorted_values[index])
