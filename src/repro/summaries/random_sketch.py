""""Random" mergeable quantile sketch [52, 77].

The randomized buffer sketch that Wang et al. [77] and Luo et al. [52]
found to be the fastest accurate mergeable summary (and which Zhuang [84]
confirmed in distributed settings) — the strongest merge-time baseline the
paper compares against.

Structure mirrors the low-discrepancy sketch (levels of equal-weight sorted
buffers) with randomization in two places:

* incoming values are *sampled*: once the stream outgrows the capacity of
  the lowest levels, each arriving value survives with probability
  ``2^-L`` (L the active sampling level) and enters a weight-``2^L`` buffer;
* collapsing two buffers keeps a uniformly random element of each
  consecutive pair rather than a fixed-offset alternation.

Both choices make every surviving element an unbiased uniform sample of the
ranks it represents, giving the ``O(sqrt(log(1/delta))/epsilon)`` space
bound of [52].
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array, weighted_quantile


class RandomSummary(QuantileSummary):
    """Randomized mergeable quantile sketch ("RandomW" in the paper)."""

    name = "RandomW"

    def __init__(self, buffer_size: int = 64, num_buffers: int = 8,
                 seed: int | None = None):
        if buffer_size < 2:
            raise ValueError(f"buffer_size must be >= 2, got {buffer_size}")
        if num_buffers < 2:
            raise ValueError(f"num_buffers must be >= 2, got {num_buffers}")
        self.buffer_size = int(buffer_size)
        self.num_buffers = int(num_buffers)
        self._rng = np.random.default_rng(seed)
        # Buffers: list of (level, sorted ndarray); at most num_buffers full
        # buffers are retained before collapses kick in.
        self._buffers: list[tuple[int, np.ndarray]] = []
        self._active: list[float] = []
        self._sample_level = 0
        self._count = 0.0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._count += x.size
        if self._sample_level == 0:
            survivors = x
        else:
            mask = self._rng.random(x.size) < 2.0 ** -self._sample_level
            survivors = x[mask]
        for value in survivors:
            self._active.append(float(value))
            if len(self._active) >= self.buffer_size:
                self._seal_active()

    def _seal_active(self) -> None:
        buffer = np.sort(np.asarray(self._active))
        self._active = []
        self._buffers.append((self._sample_level, buffer))
        self._maybe_collapse()

    def _maybe_collapse(self) -> None:
        """Reduce to the buffer budget by combining the two lowest levels.

        The lower buffer is first brought to the higher buffer's level by
        random pairwise halving (each halving doubles per-sample weight).
        The combined samples are then *packed* into a single buffer; only
        when they exceed the buffer capacity is the result halved again to
        the next level.  Packing keeps total retained samples near
        ``num_buffers * buffer_size`` instead of decaying — halving without
        packing loses the stream.
        """
        while len(self._buffers) > self.num_buffers:
            order = sorted(range(len(self._buffers)),
                           key=lambda i: self._buffers[i][0])
            i_low, i_next = order[0], order[1]
            level_next, buf_next = self._buffers[i_next]
            level_low, buf_low = self._buffers[i_low]
            for index in sorted((i_low, i_next), reverse=True):
                self._buffers.pop(index)
            while level_low < level_next:
                buf_low = self._random_half(buf_low)
                level_low += 1
            merged = np.sort(np.concatenate([buf_low, buf_next]))
            while merged.size > self.buffer_size:
                merged = self._random_half(merged)
                level_next += 1
            self._buffers.append((level_next, merged))
            self._sample_level = max(
                self._sample_level,
                min((level for level, _ in self._buffers), default=0))

    def _random_half(self, sorted_buffer: np.ndarray) -> np.ndarray:
        """Keep one random element of each consecutive pair."""
        n_pairs = sorted_buffer.size // 2
        picks = self._rng.integers(0, 2, size=n_pairs)
        kept = sorted_buffer[2 * np.arange(n_pairs) + picks]
        if sorted_buffer.size % 2 == 1 and self._rng.random() < 0.5:
            kept = np.append(kept, sorted_buffer[-1])
            kept.sort()
        return kept

    def merge(self, other: "QuantileSummary") -> "RandomSummary":
        self._check_type(other)
        assert isinstance(other, RandomSummary)
        if other.buffer_size != self.buffer_size:
            raise ValueError("buffer size mismatch")
        self._count += other._count
        # Seal our partial buffer at its current level *before* collapses
        # can raise the sampling level; otherwise its items would silently
        # change weight.  The other's partial buffer enters the same way
        # (its values are already correct-rate samples).
        if self._active:
            self._buffers.append(
                (self._sample_level, np.sort(np.asarray(self._active))))
            self._active = []
        for level, buffer in other._buffers:
            self._buffers.append((level, buffer.copy()))
        if other._active:
            self._buffers.append(
                (other._sample_level, np.sort(np.asarray(other._active))))
        self._sample_level = max(self._sample_level, other._sample_level)
        self._maybe_collapse()
        return self

    # ------------------------------------------------------------------

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        values = [np.asarray(self._active, dtype=float)]
        weights = [np.full(len(self._active), 2.0 ** self._sample_level)]
        for level, buffer in self._buffers:
            values.append(buffer)
            weights.append(np.full(buffer.size, 2.0 ** level))
        return np.concatenate(values), np.concatenate(weights)

    def quantile(self, phi: float) -> float:
        if self.count == 0:
            raise ValueError("empty summary")
        values, weights = self._weighted_items()
        if values.size == 0:
            raise ValueError("summary lost all samples")
        return weighted_quantile(values, weights, phi)

    def size_bytes(self) -> int:
        stored = len(self._active) + sum(buf.size for _, buf in self._buffers)
        return 8 * stored + 8 * len(self._buffers) + 24

    def copy(self) -> "RandomSummary":
        out = RandomSummary(self.buffer_size, self.num_buffers)
        out._rng = np.random.default_rng(self._rng.integers(0, 2 ** 63))
        out._buffers = [(lvl, buf.copy()) for lvl, buf in self._buffers]
        out._active = list(self._active)
        out._sample_level = self._sample_level
        out._count = self._count
        return out

    @property
    def count(self) -> float:
        return self._count

    def error_upper_bound(self, phi: float) -> float | None:
        """95%-confidence rank-error bound for the randomized sketch.

        Each collapse at level L adds a +-2^L/2 zero-mean displacement; the
        variance argument of [52] gives std <= sqrt(sum over buffers of
        (2^L)^2 / 4); we report two standard deviations, normalized.
        """
        if self._count == 0:
            return None
        variance = sum((2.0 ** level) ** 2 / 4.0 for level, _ in self._buffers)
        return min(1.0, 2.0 * np.sqrt(variance) / self._count + 1.0 / self._count)
