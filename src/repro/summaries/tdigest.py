"""Merging t-digest [28].

Centroids ``(mean, weight)`` sorted by mean; the scale function
``k(q) = (delta / 2 pi) asin(2q - 1)`` limits each centroid to one unit of
k-space, which concentrates resolution at the extreme quantiles.  This is
the buffer-and-merge formulation from Dunning & Ertl's reference repository;
the paper benchmarks the AVL-tree variant of the same data structure with
identical accuracy characteristics (documented substitution in DESIGN.md).

Merging two digests concatenates centroid lists and re-clusters — the
operation is associative up to interpolation error, which is exactly the
"mergeable in practice" behaviour the paper measures.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array

_BUFFER_LIMIT = 512


class TDigestSummary(QuantileSummary):
    """Merging t-digest with compression parameter ``delta``."""

    name = "T-Digest"

    def __init__(self, delta: float = 100.0):
        if delta <= 1.0:
            raise ValueError(f"delta must exceed 1, got {delta}")
        self.delta = float(delta)
        self._means = np.zeros(0)
        self._weights = np.zeros(0)
        self._count = 0.0
        self._min = np.inf
        self._max = -np.inf
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._min = min(self._min, float(x.min()))
        self._max = max(self._max, float(x.max()))
        self._buffer.append(x)
        self._buffered += x.size
        if self._buffered >= _BUFFER_LIMIT:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        incoming = np.concatenate(self._buffer)
        self._buffer.clear()
        self._buffered = 0
        self._count += incoming.size
        means = np.concatenate([self._means, incoming])
        weights = np.concatenate([self._weights, np.ones(incoming.size)])
        self._means, self._weights = self._cluster(means, weights)

    def _scale(self, q: float) -> float:
        """k1 scale function: delta / (2 pi) * asin(2q - 1)."""
        return self.delta / (2.0 * math.pi) * math.asin(min(max(2.0 * q - 1.0, -1.0), 1.0))

    def _cluster(self, means: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Greedy left-to-right re-clustering under the k-space budget."""
        if means.size == 0:
            return means, weights
        order = np.argsort(means, kind="stable")
        mean_list = means[order].tolist()
        weight_list = weights[order].tolist()
        total = float(weights.sum())
        out_means: list[float] = [mean_list[0]]
        out_weights: list[float] = [weight_list[0]]
        q_left = 0.0
        k_left = self._scale(q_left)
        for mean, weight in zip(mean_list[1:], weight_list[1:]):
            q_new = q_left + (out_weights[-1] + weight) / total
            if self._scale(q_new) - k_left <= 1.0:
                # Merge into the current centroid (weighted mean).
                merged = out_weights[-1] + weight
                out_means[-1] += (mean - out_means[-1]) * weight / merged
                out_weights[-1] = merged
            else:
                q_left += out_weights[-1] / total
                k_left = self._scale(q_left)
                out_means.append(mean)
                out_weights.append(weight)
        return np.asarray(out_means), np.asarray(out_weights)

    def merge(self, other: "QuantileSummary") -> "TDigestSummary":
        self._check_type(other)
        assert isinstance(other, TDigestSummary)
        self._flush()
        other_copy = other.copy()
        other_copy._flush()
        if other_copy._count == 0:
            return self
        self._count += other_copy._count
        self._min = min(self._min, other_copy._min)
        self._max = max(self._max, other_copy._max)
        means = np.concatenate([self._means, other_copy._means])
        weights = np.concatenate([self._weights, other_copy._weights])
        self._means, self._weights = self._cluster(means, weights)
        return self

    # ------------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        self._flush()
        if self._count == 0:
            raise ValueError("empty summary")
        if self._means.size == 1:
            return float(self._means[0])
        phi = min(max(phi, 0.0), 1.0)
        target = phi * self._count
        # Centroid i covers ranks (cum_i - w_i / 2, cum_i + w_i / 2);
        # interpolate linearly between adjacent centroid midpoints.
        cumulative = np.cumsum(self._weights)
        midpoints = cumulative - self._weights / 2.0
        if target <= midpoints[0]:
            # Interpolate from the exact minimum.
            frac = target / max(midpoints[0], 1e-12)
            return float(self._min + frac * (self._means[0] - self._min))
        if target >= midpoints[-1]:
            span = self._count - midpoints[-1]
            frac = (target - midpoints[-1]) / max(span, 1e-12)
            return float(self._means[-1] + frac * (self._max - self._means[-1]))
        index = int(np.searchsorted(midpoints, target, side="right")) - 1
        lo, hi = midpoints[index], midpoints[index + 1]
        frac = (target - lo) / max(hi - lo, 1e-12)
        return float(self._means[index] + frac * (self._means[index + 1] - self._means[index]))

    def size_bytes(self) -> int:
        self._flush()
        return 16 * self._means.size + 40

    def copy(self) -> "TDigestSummary":
        out = TDigestSummary(self.delta)
        out._means = self._means.copy()
        out._weights = self._weights.copy()
        out._count = self._count
        out._min = self._min
        out._max = self._max
        out._buffer = [b.copy() for b in self._buffer]
        out._buffered = self._buffered
        return out

    @property
    def count(self) -> float:
        return self._count + self._buffered

    def error_upper_bound(self, phi: float) -> float | None:
        """Largest centroid's half-weight as a rank-error ceiling.

        t-digest offers no worst-case guarantee; this data-dependent bound
        (a query can be off by at most half the covering centroid) is the
        honest analogue plotted in Figure 23.
        """
        self._flush()
        if self._count == 0:
            return None
        return float(np.max(self._weights)) / (2.0 * self._count)

    @property
    def centroid_count(self) -> int:
        self._flush()
        return self._means.size
