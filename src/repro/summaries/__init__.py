"""Mergeable quantile summaries: the paper's comparison set (Section 6.1).

``SUMMARY_REGISTRY`` maps the paper's display names to constructors so
benchmark harnesses can instantiate the whole comparison from Table 2-style
parameter dictionaries.
"""

from .base import QuantileSummary, weighted_quantile
from .exact import ExactSummary
from .ew_hist import EquiWidthHistogramSummary
from .gk import GKSummary
from .merge12 import Merge12Summary
from .moments_summary import MomentsSummary
from .random_sketch import RandomSummary
from .s_hist import StreamingHistogramSummary
from .sampling import SamplingSummary
from .tdigest import TDigestSummary

#: Paper display name -> summary class.
SUMMARY_REGISTRY: dict[str, type[QuantileSummary]] = {
    "M-Sketch": MomentsSummary,
    "Merge12": Merge12Summary,
    "RandomW": RandomSummary,
    "GK": GKSummary,
    "T-Digest": TDigestSummary,
    "Sampling": SamplingSummary,
    "S-Hist": StreamingHistogramSummary,
    "EW-Hist": EquiWidthHistogramSummary,
    "Exact": ExactSummary,
}

__all__ = [
    "QuantileSummary", "weighted_quantile", "SUMMARY_REGISTRY",
    "MomentsSummary", "Merge12Summary", "RandomSummary", "GKSummary",
    "TDigestSummary", "SamplingSummary", "StreamingHistogramSummary",
    "EquiWidthHistogramSummary", "ExactSummary",
]
