"""Low-discrepancy mergeable quantile summary of Agarwal et al. [3].

The "Merge12" label follows the paper's evaluation, which used the
implementation in the Yahoo datasketches library.  The structure is the
classic multi-level equal-weight buffer sketch:

* a *base buffer* of up to ``2k`` raw values (weight 1);
* *levels* 0, 1, 2, ... each holding either nothing or one sorted buffer of
  exactly ``k`` values with weight ``2^(level+1)``.

When the base buffer fills it is sorted and *compacted*: alternate elements
(random even/odd offset — the low-discrepancy trick that keeps the merge
error unbiased) survive into a weight-2 buffer that carry-propagates up the
levels, zip-merging with any occupant and compacting again.  Merging two
sketches merges base buffers and carry-propagates every occupied level of
the other sketch — cost proportional to summary size, which is what makes
it measurably slower than a moments sketch at comparable accuracy.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array, weighted_quantile


class Merge12Summary(QuantileSummary):
    """Mergeable low-discrepancy quantile sketch with buffer size ``k``."""

    name = "Merge12"

    def __init__(self, k: int = 32, seed: int | None = None):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = int(k)
        self._rng = np.random.default_rng(seed)
        self._base: list[float] = []
        self._levels: list[np.ndarray | None] = []
        self._count = 0.0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._count += x.size
        capacity = 2 * self.k
        cursor = 0
        while cursor < x.size:
            take = min(capacity - len(self._base), x.size - cursor)
            self._base.extend(x[cursor:cursor + take].tolist())
            cursor += take
            if len(self._base) >= capacity:
                self._compact_base()

    def _compact_base(self) -> None:
        buffer = np.sort(np.asarray(self._base))
        self._base = []
        self._carry(0, self._downsample(buffer))

    def _downsample(self, sorted_buffer: np.ndarray) -> np.ndarray:
        """Keep alternate elements with a random offset (low discrepancy)."""
        offset = int(self._rng.integers(0, 2))
        return sorted_buffer[offset::2][: self.k]

    def _carry(self, level: int, buffer: np.ndarray) -> None:
        """Propagate a weight-2^(level+1) buffer up the level array."""
        while True:
            while len(self._levels) <= level:
                self._levels.append(None)
            occupant = self._levels[level]
            if occupant is None:
                self._levels[level] = buffer
                return
            merged = np.sort(np.concatenate([occupant, buffer]), kind="stable")
            self._levels[level] = None
            buffer = self._downsample(merged)
            level += 1

    def merge(self, other: "QuantileSummary") -> "Merge12Summary":
        self._check_type(other)
        assert isinstance(other, Merge12Summary)
        if other.k != self.k:
            raise ValueError(f"buffer size mismatch: {self.k} vs {other.k}")
        self._count += other._count
        base = other._base
        levels = [lvl.copy() if lvl is not None else None for lvl in other._levels]
        # Base buffer values re-enter through the normal path (count already
        # added, so bypass accumulate's counter).
        capacity = 2 * self.k
        for value in base:
            self._base.append(value)
            if len(self._base) >= capacity:
                self._compact_base()
        for level, buffer in enumerate(levels):
            if buffer is not None:
                self._carry(level, buffer)
        return self

    # ------------------------------------------------------------------

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        values = [np.asarray(self._base, dtype=float)]
        weights = [np.ones(len(self._base))]
        for level, buffer in enumerate(self._levels):
            if buffer is not None:
                values.append(buffer)
                weights.append(np.full(buffer.size, 2.0 ** (level + 1)))
        all_values = np.concatenate(values)
        all_weights = np.concatenate(weights)
        return all_values, all_weights

    def quantile(self, phi: float) -> float:
        if self.count == 0:
            raise ValueError("empty summary")
        values, weights = self._weighted_items()
        return weighted_quantile(values, weights, phi)

    def size_bytes(self) -> int:
        stored = len(self._base) + sum(
            buf.size for buf in self._levels if buf is not None)
        return 8 * stored + 24

    def copy(self) -> "Merge12Summary":
        out = Merge12Summary(self.k)
        out._rng = np.random.default_rng(self._rng.integers(0, 2 ** 63))
        out._base = list(self._base)
        out._levels = [lvl.copy() if lvl is not None else None for lvl in self._levels]
        out._count = self._count
        return out

    @property
    def count(self) -> float:
        return self._count

    def error_upper_bound(self, phi: float) -> float | None:
        """Deterministic rank-error bound: sum of level half-weights / n.

        Each compaction at level L perturbs any rank by at most 2^L; summing
        over occupied levels bounds the total displacement (Agarwal et al.'s
        analysis gives the same O((log n) / k) shape).
        """
        if self._count == 0:
            return None
        slack = sum(2.0 ** level for level, buf in enumerate(self._levels)
                    if buf is not None)
        return min(1.0, slack / self._count) if slack else 1.0 / self._count
