"""Greenwald-Khanna quantile summary, GKArray variant [34, 52].

The summary keeps a sorted array of tuples ``(v, g, delta)``: ``v`` a seen
value, ``g`` the number of stream elements represented by the tuple, and
``delta`` the uncertainty of the tuple's rank.  The GK invariant
``g_i + delta_i <= 2 * epsilon * n`` guarantees epsilon-approximate ranks.

This is the batch-oriented "GKArray" formulation benchmarked by Luo et
al. [52]: incoming values buffer up, are sorted, merge-joined into the tuple
array, and a single left-to-right compression pass restores the invariant.

Merging concatenates the two tuple arrays (deltas intact) and compresses
against the combined count.  As the paper notes (Section 6.1 and App. D.4),
GK is not strictly mergeable: the array can grow substantially under
repeated merging of heterogeneous summaries — reproducing that behaviour is
part of the point.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array

_BUFFER_LIMIT = 512


class GKSummary(QuantileSummary):
    """epsilon-approximate GK summary (GKArray flavor).

    Parameters
    ----------
    epsilon:
        Target rank-error guarantee; the array holds O((1/epsilon) log(en))
        tuples.
    """

    name = "GK"

    def __init__(self, epsilon: float = 1.0 / 64):
        if not 0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)
        self._values = np.zeros(0)
        self._g = np.zeros(0)
        self._delta = np.zeros(0)
        self._count = 0.0
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._buffer.append(x)
        self._buffered += x.size
        if self._buffered >= _BUFFER_LIMIT:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        incoming = np.sort(np.concatenate(self._buffer))
        self._buffer.clear()
        self._buffered = 0
        self._count += incoming.size
        # Merge-join the sorted batch into the tuple array.  New values
        # enter with g = 1; a value inserted between existing tuples
        # inherits rank uncertainty from its right neighbour.
        if self._values.size == 0:
            self._values = incoming
            self._g = np.ones(incoming.size)
            self._delta = np.zeros(incoming.size)
        else:
            positions = np.searchsorted(self._values, incoming, side="left")
            right_delta = np.zeros(incoming.size)
            interior = positions < self._values.size
            right_delta[interior] = (self._g[positions[interior]]
                                     + self._delta[positions[interior]] - 1.0)
            right_delta = np.clip(right_delta, 0.0, None)
            self._values = np.insert(self._values, positions, incoming)
            self._g = np.insert(self._g, positions, np.ones(incoming.size))
            self._delta = np.insert(self._delta, positions, right_delta)
        self._compress()

    def _compress(self) -> None:
        """One pass of GK COMPRESS: absorb tuples into their right
        neighbour while the invariant budget 2 * epsilon * n allows it."""
        if self._values.size <= 2:
            return
        budget = 2.0 * self.epsilon * self._count
        values = self._values
        g = self._g
        delta = self._delta
        keep_values = [values[0]]
        keep_g = [g[0]]
        keep_delta = [delta[0]]
        for i in range(1, values.size):
            if (i < values.size - 1
                    and keep_g[-1] + g[i] + delta[i] <= budget
                    and len(keep_values) > 1):
                # Absorb the previous kept tuple into tuple i.
                gi = keep_g.pop() + g[i]
                keep_values.pop()
                keep_delta.pop()
                keep_values.append(values[i])
                keep_g.append(gi)
                keep_delta.append(delta[i])
            else:
                keep_values.append(values[i])
                keep_g.append(g[i])
                keep_delta.append(delta[i])
        self._values = np.asarray(keep_values)
        self._g = np.asarray(keep_g)
        self._delta = np.asarray(keep_delta)

    def merge(self, other: "QuantileSummary") -> "GKSummary":
        """GKArray merge: re-insert the other's tuples as weighted values.

        Each incoming tuple keeps its own rank uncertainty *and* inherits
        the uncertainty of the covering tuple on this side (the insert
        rule), so the invariant stays honest.  The inflated deltas resist
        compression — this is precisely why GK summaries grow when merged
        (Section 6.1 / Appendix D.4) and reproducing that growth is
        intentional.
        """
        self._check_type(other)
        assert isinstance(other, GKSummary)
        self._flush()
        other_copy = other.copy()
        other_copy._flush()
        if other_copy._values.size == 0:
            return self
        if self._values.size == 0:
            self._values = other_copy._values
            self._g = other_copy._g
            self._delta = other_copy._delta
            self._count = other_copy._count
            return self
        incoming = other_copy._values
        positions = np.searchsorted(self._values, incoming, side="left")
        inherited = np.zeros(incoming.size)
        interior = positions < self._values.size
        inherited[interior] = (self._g[positions[interior]]
                               + self._delta[positions[interior]] - 1.0)
        new_delta = other_copy._delta + np.clip(inherited, 0.0, None)
        self._values = np.insert(self._values, positions, incoming)
        self._g = np.insert(self._g, positions, other_copy._g)
        self._delta = np.insert(self._delta, positions, new_delta)
        self._count += other_copy._count
        self._compress()
        return self

    # ------------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        self._flush()
        if self._values.size == 0:
            raise ValueError("empty summary")
        target = phi * self._count
        # Tuple i's rank lies in [min_rank_i, min_rank_i + delta_i]; return
        # the tuple whose rank-interval midpoint first covers the target.
        min_rank = np.cumsum(self._g)
        midpoints = min_rank + self._delta / 2.0
        index = int(np.searchsorted(midpoints, target, side="left"))
        index = min(index, self._values.size - 1)
        return float(self._values[index])

    def size_bytes(self) -> int:
        self._flush()
        # v, g, delta stored as (double, int32, int32) as in [52]: 16 bytes.
        return 16 * self._values.size + 16

    def copy(self) -> "GKSummary":
        out = GKSummary(self.epsilon)
        out._values = self._values.copy()
        out._g = self._g.copy()
        out._delta = self._delta.copy()
        out._count = self._count
        out._buffer = [b.copy() for b in self._buffer]
        out._buffered = self._buffered
        return out

    @property
    def count(self) -> float:
        return self._count + self._buffered

    def error_upper_bound(self, phi: float) -> float | None:
        """Data-dependent guarantee: max (g + delta) / (2 n) over tuples."""
        self._flush()
        if self._count == 0:
            return None
        return float(np.max(self._g + self._delta)) / (2.0 * self._count)

    @property
    def tuple_count(self) -> int:
        self._flush()
        return self._values.size
