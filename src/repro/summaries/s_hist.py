"""Ben-Haim / Tom-Tov streaming histogram [12] — Druid's default ("S-Hist").

A bounded set of ``(centroid, mass)`` bins.  Inserting a value adds a unit
bin and, if the budget is exceeded, merges the two closest centroids
(weighted mean).  Merging two histograms concatenates bins and repeats
closest-pair merging down to the budget.

Quantile queries use the paper's "sum/uniform" interpolation: the CDF at a
centroid is the mass strictly to its left plus half its own mass, with
linear (trapezoid) interpolation between centroids.  The authors of [12]
observe ~5% average quantile error at 100 bins, which is why the paper's
Druid comparison (Figure 11) needs S-Hist at 1000+ bins to approach
moments-sketch accuracy on skewed data.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array

_BUFFER_LIMIT = 512


class StreamingHistogramSummary(QuantileSummary):
    """BTT streaming histogram with ``max_bins`` centroid budget."""

    name = "S-Hist"

    def __init__(self, max_bins: int = 100):
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = int(max_bins)
        self._centroids = np.zeros(0)
        self._masses = np.zeros(0)
        self._min = np.inf
        self._max = -np.inf
        self._buffer: list[np.ndarray] = []
        self._buffered = 0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        self._min = min(self._min, float(x.min()))
        self._max = max(self._max, float(x.max()))
        self._buffer.append(x)
        self._buffered += x.size
        if self._buffered >= _BUFFER_LIMIT:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        incoming = np.concatenate(self._buffer)
        self._buffer.clear()
        self._buffered = 0
        # Pre-bucket the batch: identical values collapse for free, then the
        # standard closest-pair reduction brings us under budget.
        values, counts = np.unique(incoming, return_counts=True)
        self._centroids = np.concatenate([self._centroids, values])
        self._masses = np.concatenate([self._masses, counts.astype(float)])
        self._sort_bins()
        self._reduce()

    def _sort_bins(self) -> None:
        # Sort and collapse exact duplicates produced by concatenation.
        unique, inverse = np.unique(self._centroids, return_inverse=True)
        if unique.size != self._centroids.size:
            masses = np.zeros(unique.size)
            np.add.at(masses, inverse, self._masses)
            self._centroids, self._masses = unique, masses
        else:
            order = np.argsort(self._centroids, kind="stable")
            self._centroids = self._centroids[order]
            self._masses = self._masses[order]

    def _reduce(self) -> None:
        """Merge closest centroid pairs until within the bin budget.

        Pairs are taken in rounds: each round selects a non-overlapping set
        of smallest-gap adjacent pairs covering the excess and merges them
        in one vectorized pass.  This matches the sequential
        merge-the-closest-pair rule of [12] up to tie-breaking while keeping
        large merges (e.g. two 1000-bin histograms) out of quadratic
        Python-loop territory.
        """
        while self._centroids.size > self.max_bins:
            excess = self._centroids.size - self.max_bins
            gaps = np.diff(self._centroids)
            order = np.argsort(gaps, kind="stable")
            blocked = np.zeros(self._centroids.size, dtype=bool)
            chosen: list[int] = []
            for i in order:
                if blocked[i] or blocked[i + 1]:
                    continue
                chosen.append(int(i))
                blocked[i] = blocked[i + 1] = True
                if len(chosen) >= excess:
                    break
            pair = np.asarray(sorted(chosen), dtype=int)
            mass = self._masses[pair] + self._masses[pair + 1]
            self._centroids[pair] = (
                self._centroids[pair] * self._masses[pair]
                + self._centroids[pair + 1] * self._masses[pair + 1]) / mass
            self._masses[pair] = mass
            keep = np.ones(self._centroids.size, dtype=bool)
            keep[pair + 1] = False
            self._centroids = self._centroids[keep]
            self._masses = self._masses[keep]

    def merge(self, other: "QuantileSummary") -> "StreamingHistogramSummary":
        self._check_type(other)
        assert isinstance(other, StreamingHistogramSummary)
        self._flush()
        other_copy = other.copy()
        other_copy._flush()
        if other_copy._centroids.size == 0:
            return self
        self._min = min(self._min, other_copy._min)
        self._max = max(self._max, other_copy._max)
        self._centroids = np.concatenate([self._centroids, other_copy._centroids])
        self._masses = np.concatenate([self._masses, other_copy._masses])
        self._sort_bins()
        self._reduce()
        return self

    # ------------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        self._flush()
        if self._centroids.size == 0:
            raise ValueError("empty summary")
        if self._centroids.size == 1:
            return float(self._centroids[0])
        total = self._masses.sum()
        target = min(max(phi, 0.0), 1.0) * total
        cumulative = np.cumsum(self._masses) - self._masses / 2.0
        if target <= cumulative[0]:
            frac = target / max(cumulative[0], 1e-12)
            return float(self._min + frac * (self._centroids[0] - self._min))
        if target >= cumulative[-1]:
            span = total - cumulative[-1]
            frac = (target - cumulative[-1]) / max(span, 1e-12)
            return float(self._centroids[-1] + frac * (self._max - self._centroids[-1]))
        index = int(np.searchsorted(cumulative, target, side="right")) - 1
        lo, hi = cumulative[index], cumulative[index + 1]
        frac = (target - lo) / max(hi - lo, 1e-12)
        return float(self._centroids[index]
                     + frac * (self._centroids[index + 1] - self._centroids[index]))

    def size_bytes(self) -> int:
        self._flush()
        return 16 * self._centroids.size + 24

    def copy(self) -> "StreamingHistogramSummary":
        out = StreamingHistogramSummary(self.max_bins)
        out._centroids = self._centroids.copy()
        out._masses = self._masses.copy()
        out._min = self._min
        out._max = self._max
        out._buffer = [b.copy() for b in self._buffer]
        out._buffered = self._buffered
        return out

    @property
    def count(self) -> float:
        return float(self._masses.sum()) + self._buffered

    @property
    def bin_count(self) -> int:
        self._flush()
        return self._centroids.size
