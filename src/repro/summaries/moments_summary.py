"""Moments sketch adapter to the common summary interface ("M-Sketch").

Wraps :class:`repro.core.MomentsSketch` plus the max-entropy estimator so
the workload harness and engines can benchmark it against the comparator
summaries through one API.  The solved estimator is cached and invalidated
on mutation, mirroring how an engine would finalize an aggregation once.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.bounds import quantile_error_bound
from ..core.errors import ConvergenceError
from ..core.quantile import QuantileEstimator
from ..core.sketch import MomentsSketch
from ..core.solver import SolverConfig
from .base import QuantileSummary


class MomentsSummary(QuantileSummary):
    """The paper's sketch behind the generic summary interface."""

    name = "M-Sketch"

    def __init__(self, k: int = 10, track_log: bool = True,
                 config: SolverConfig | None = None):
        self.sketch = MomentsSketch(k=k, track_log=track_log)
        self.config = config or SolverConfig()
        self._estimator: QuantileEstimator | None = None

    @property
    def k(self) -> int:
        return self.sketch.k

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        self.sketch.accumulate(values)
        self._estimator = None

    def merge(self, other: "QuantileSummary") -> "MomentsSummary":
        self._check_type(other)
        assert isinstance(other, MomentsSummary)
        self.sketch.merge(other.sketch)
        self._estimator = None
        return self

    def estimator(self) -> QuantileEstimator:
        """The solved max-entropy model (cached until the next mutation)."""
        if self._estimator is None:
            self._estimator = QuantileEstimator.fit(self.sketch, config=self.config,
                                                    allow_backoff=True)
        return self._estimator

    def quantile(self, phi: float) -> float:
        try:
            return self.estimator().quantile(phi)
        except ConvergenceError:
            # Near-discrete data (Figure 8): degrade to the two-point model.
            from ..core.quantile import safe_estimate_quantiles
            return float(safe_estimate_quantiles(self.sketch, [phi], self.config)[0])

    def quantiles(self, phis) -> np.ndarray:
        try:
            return self.estimator().quantiles(np.asarray(phis, dtype=float))
        except ConvergenceError:
            from ..core.quantile import safe_estimate_quantiles
            return safe_estimate_quantiles(self.sketch, phis, self.config)

    def size_bytes(self) -> int:
        return self.sketch.size_bytes()

    def copy(self) -> "MomentsSummary":
        out = MomentsSummary(k=self.sketch.k, track_log=self.sketch.track_log,
                             config=self.config)
        out.sketch = self.sketch.copy()
        return out

    @property
    def count(self) -> float:
        return self.sketch.count

    def error_upper_bound(self, phi: float) -> float | None:
        """RTT-certified worst-case rank error of the estimate (App. E)."""
        if self.sketch.is_empty:
            return None
        return quantile_error_bound(self.sketch, self.quantile(phi), phi)
