"""Mergeable reservoir sampling [76].

A uniform random sample of fixed capacity.  Pointwise updates use Vitter's
algorithm; merging two reservoirs draws each output slot from either input
with probability proportional to its count, which preserves uniformity over
the multiset union (the property required for mergeability [3]).

Quantile estimates are sample quantiles, so the error is the usual
O(1/sqrt(capacity)) sampling error — the paper's Figure 7 shows exactly
that slow decay versus summary size.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import QuantileSummary, as_array


class SamplingSummary(QuantileSummary):
    """Fixed-capacity uniform reservoir sample."""

    name = "Sampling"

    def __init__(self, capacity: int = 1000, seed: int | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.zeros(0)
        self._count = 0.0

    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        x = as_array(values)
        if x.size == 0:
            return
        fill = self.capacity - self._reservoir.size
        if fill > 0:
            take = min(fill, x.size)
            self._reservoir = np.concatenate([self._reservoir, x[:take]])
            self._count += take
            x = x[take:]
        if x.size == 0:
            return
        # Vitter's algorithm R, vectorized: element with global index i
        # (1-based) replaces a random slot with probability capacity / i.
        indices = self._count + 1.0 + np.arange(x.size)
        accept = self._rng.random(x.size) < self.capacity / indices
        slots = self._rng.integers(0, self.capacity, size=x.size)
        accepted = np.nonzero(accept)[0]
        # Later stream elements must win slot collisions: iterate in order.
        for i in accepted:
            self._reservoir[slots[i]] = x[i]
        self._count += x.size

    def merge(self, other: "QuantileSummary") -> "SamplingSummary":
        self._check_type(other)
        assert isinstance(other, SamplingSummary)
        if other.capacity != self.capacity:
            raise ValueError("capacity mismatch")
        if other._count == 0:
            return self
        if self._count == 0:
            self._reservoir = other._reservoir.copy()
            self._count = other._count
            return self
        total = self._count + other._count
        size = min(self.capacity, self._reservoir.size + other._reservoir.size)
        # Draw each slot from self with probability count_self / total,
        # sampling without replacement within each side.
        from_self = self._rng.random(size) < self._count / total
        need_self = int(from_self.sum())
        need_other = size - need_self
        need_self = min(need_self, self._reservoir.size)
        need_other = min(need_other, other._reservoir.size)
        picks_self = self._rng.choice(self._reservoir, size=need_self, replace=False)
        picks_other = self._rng.choice(other._reservoir, size=need_other, replace=False)
        self._reservoir = np.concatenate([picks_self, picks_other])
        self._count = total
        return self

    # ------------------------------------------------------------------

    def quantile(self, phi: float) -> float:
        if self._reservoir.size == 0:
            raise ValueError("empty summary")
        return float(np.quantile(self._reservoir, min(max(phi, 0.0), 1.0)))

    def size_bytes(self) -> int:
        return 8 * self._reservoir.size + 10

    def copy(self) -> "SamplingSummary":
        out = SamplingSummary(self.capacity)
        out._rng = np.random.default_rng(self._rng.integers(0, 2 ** 63))
        out._reservoir = self._reservoir.copy()
        out._count = self._count
        return out

    @property
    def count(self) -> float:
        return self._count

    def error_upper_bound(self, phi: float) -> float | None:
        """95% binomial confidence half-width on the sampled rank."""
        m = self._reservoir.size
        if m == 0:
            return None
        phi = min(max(phi, 0.0), 1.0)
        return min(1.0, 1.96 * float(np.sqrt(phi * (1.0 - phi) / m)) + 1.0 / m)
