"""Declarative experiment descriptions for the workload harness.

:class:`ExperimentSpec` is the harness twin of
:class:`~repro.api.QuerySpec` / :class:`~repro.ingest.IngestSpec`: one
validated, JSON-round-trippable value object that describes a complete
production-shaped experiment — dataset, backend set, ingest mix, query
mix with Zipfian cell skew and bursty open-loop arrivals, target QPS,
duration, seed, and the exact-oracle ε contract — independently of the
machinery that executes it (:mod:`repro.harness.runner`).

The same spec replayed with the same seed produces the identical event
schedule, the identical rows, and therefore the identical answers, so
harness runs are reproducible experiment records, not one-off load
tests.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Mapping

from ..core.errors import HarnessError
from ..datasets import available

#: Backends an experiment may exercise (ingest-spec registry names).
BACKENDS = ("cube", "druid", "packed", "cluster", "tiered")

#: Keys the ``storage`` knob accepts (tiered-backend tuning).
STORAGE_KEYS = ("hot_budget_bytes", "cold_fraction", "dir")

#: Query kinds the traffic generator can emit.
QUERY_KINDS = ("quantile", "group_by", "top_n", "threshold_count")

#: Datasets accepted beyond the Table 1 registry names.
EXTRA_DATASETS = ("production",)


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative workload experiment.

    Parameters
    ----------
    name:
        Label recorded in the emitted trajectory record.
    dataset:
        A :mod:`repro.datasets` registry name (``milan``, ``hepmass``,
        ...) or ``"production"`` for the Appendix D.4 telemetry shape
        (heavy-tailed cell sizes, long-tailed integer values).
    rows:
        Base rows preloaded into every backend before traffic starts.
    cells:
        Distinct cells (values of the single ``cell`` dimension).  Cell
        popularity — for both data volume and query targeting — follows
        the Zipfian weights below.
    backends:
        Backend kinds to drive, each fed the identical batches.  The
        first backend is the reference for cross-backend agreement.
    k:
        Moments-sketch order for spec-built backends.
    duration_seconds, target_qps:
        Open-loop traffic envelope: the schedule carries
        ``round(target_qps * duration_seconds)`` events with arrival
        offsets in ``[0, duration_seconds)``.
    query_mix:
        ``(kind, weight)`` pairs over :data:`QUERY_KINDS`; weights are
        normalized.
    ingest_fraction:
        Fraction of events that are ingest flushes instead of queries.
    ingest_batch_rows:
        Rows appended (to every backend and the oracle) per ingest event.
    zipf_s:
        Zipf skew exponent: cell ``i`` is hit with weight
        ``(i + 1) ** -zipf_s``.  ``0`` is uniform.
    burstiness:
        Fraction of arrivals concentrated into short bursts (0 = plain
        Poisson-like arrivals, 0.9 = heavily clustered).
    quantiles:
        Target fractions probed by quantile/group_by queries (single-
        quantile kinds use the first).
    top_n:
        Result-list size for ``top_n`` queries.
    threshold_q:
        The quantile fraction threshold_count queries test.
    epsilon:
        Per-query rank-error contract (paper Eq. 1): every validated
        quantile estimate must satisfy ``rank_error <= epsilon`` against
        the sqlite exact oracle, or the run records a violation.
    oracle:
        Validate estimates against the exact oracle (disable for pure
        load measurements).
    paced:
        Sleep until each event's scheduled arrival (true open-loop
        pacing); off, events replay back-to-back and achieved QPS
        measures raw service throughput.
    seed:
        Master seed for the schedule, the dataset, and the row stream.
    nodes, num_shards, replication, granularity:
        Cluster topology for spec-built ``cluster`` backends.
    storage:
        Tiered-storage tuning for a ``tiered`` backend, as a mapping
        with any of :data:`STORAGE_KEYS`: ``hot_budget_bytes`` (hot-tier
        byte budget before flushes seal into on-disk segments),
        ``cold_fraction`` (fraction of sealed segments demoted to the
        low-precision cold codec after preload; ``0`` keeps every tier
        lossless, so the tiered backend stays in the exact cross-backend
        agreement check), and ``dir`` (segment home directory; default
        is a throwaway temp directory).  Requires ``"tiered"`` among
        ``backends``; the emitted record gains a ``storage`` section
        with disk-vs-RAM byte deltas.
    optimizer:
        Attach a :class:`~repro.optimizer.Optimizer` to the run's query
        service: repeated scans are served from the epoch-invalidated
        cache (bit-exact, so the oracle ε gate and cross-backend
        agreement checks still apply verbatim), and the emitted record
        gains an ``optimizer`` section with cache hit/eviction stats.
    """

    name: str = "experiment"
    dataset: str = "milan"
    rows: int = 20_000
    cells: int = 64
    backends: tuple[str, ...] = ("cube",)
    k: int = 10
    duration_seconds: float = 5.0
    target_qps: float = 40.0
    query_mix: tuple[tuple[str, float], ...] = (
        ("quantile", 0.55), ("group_by", 0.2),
        ("top_n", 0.15), ("threshold_count", 0.1))
    ingest_fraction: float = 0.2
    ingest_batch_rows: int = 500
    zipf_s: float = 1.1
    burstiness: float = 0.3
    quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    top_n: int = 5
    threshold_q: float = 0.9
    epsilon: float = 0.05
    oracle: bool = True
    paced: bool = False
    seed: int = 0
    nodes: int = 2
    num_shards: int = 16
    replication: int = 2
    granularity: float = 1.0
    storage: tuple = ()
    optimizer: bool = False

    def __post_init__(self):
        object.__setattr__(self, "backends",
                           tuple(str(b) for b in self.backends))
        if not self.backends:
            raise HarnessError("an experiment needs at least one backend")
        unknown = set(self.backends) - set(BACKENDS)
        if unknown:
            raise HarnessError(f"unknown backends {sorted(unknown)}; "
                               f"use ones of {BACKENDS}")
        if len(set(self.backends)) != len(self.backends):
            raise HarnessError("duplicate backends in experiment spec")
        if self.dataset not in available() + EXTRA_DATASETS:
            raise HarnessError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{sorted(available() + EXTRA_DATASETS)}")
        for field, minimum in (("rows", 1), ("cells", 1), ("k", 1),
                               ("ingest_batch_rows", 1), ("top_n", 1),
                               ("nodes", 1), ("num_shards", 1),
                               ("replication", 1)):
            value = int(getattr(self, field))
            if value < minimum:
                raise HarnessError(f"{field} must be >= {minimum}, "
                                   f"got {getattr(self, field)}")
            object.__setattr__(self, field, value)
        for field in ("duration_seconds", "target_qps", "granularity"):
            value = float(getattr(self, field))
            if value <= 0:
                raise HarnessError(f"{field} must be positive, got {value}")
            object.__setattr__(self, field, value)
        zipf_s = float(self.zipf_s)
        if zipf_s < 0:
            raise HarnessError(f"zipf_s must be >= 0, got {zipf_s}")
        object.__setattr__(self, "zipf_s", zipf_s)
        epsilon = float(self.epsilon)
        if epsilon <= 0:
            raise HarnessError(
                f"epsilon must be positive (Eq. 1 is a strict accuracy "
                f"contract), got {epsilon}")
        object.__setattr__(self, "epsilon", epsilon)
        burstiness = float(self.burstiness)
        if not 0.0 <= burstiness < 1.0:
            raise HarnessError(
                f"burstiness must be in [0, 1), got {burstiness}")
        object.__setattr__(self, "burstiness", burstiness)
        ingest_fraction = float(self.ingest_fraction)
        if not 0.0 <= ingest_fraction < 1.0:
            raise HarnessError(
                f"ingest_fraction must be in [0, 1), got {ingest_fraction}")
        object.__setattr__(self, "ingest_fraction", ingest_fraction)
        mix = tuple((str(kind), float(weight))
                    for kind, weight in self.query_mix)
        if not mix:
            raise HarnessError("query_mix must not be empty")
        unknown = {kind for kind, _ in mix} - set(QUERY_KINDS)
        if unknown:
            raise HarnessError(f"unknown query kinds {sorted(unknown)}; "
                               f"use ones of {QUERY_KINDS}")
        if any(weight < 0 for _, weight in mix) \
                or not sum(weight for _, weight in mix) > 0:
            raise HarnessError("query_mix weights must be >= 0 with a "
                               "positive sum")
        object.__setattr__(self, "query_mix", mix)
        quantiles = tuple(float(q) for q in self.quantiles)
        if not quantiles:
            raise HarnessError("an experiment needs at least one quantile")
        for q in quantiles + (float(self.threshold_q),):
            if not 0.0 < q < 1.0:
                raise HarnessError(
                    f"quantile fractions must be in (0, 1), got {q}")
        object.__setattr__(self, "quantiles", quantiles)
        object.__setattr__(self, "threshold_q", float(self.threshold_q))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "oracle", bool(self.oracle))
        object.__setattr__(self, "paced", bool(self.paced))
        object.__setattr__(self, "optimizer", bool(self.optimizer))
        storage = self.storage
        pairs = (tuple(storage.items()) if isinstance(storage, Mapping)
                 else tuple((str(k), v) for k, v in storage))
        unknown = {key for key, _ in pairs} - set(STORAGE_KEYS)
        if unknown:
            raise HarnessError(f"unknown storage keys {sorted(unknown)}; "
                               f"use ones of {STORAGE_KEYS}")
        knobs = dict(pairs)
        if "hot_budget_bytes" in knobs:
            if int(knobs["hot_budget_bytes"]) < 1:
                raise HarnessError("storage.hot_budget_bytes must be "
                                   f"positive, got {knobs['hot_budget_bytes']}")
            knobs["hot_budget_bytes"] = int(knobs["hot_budget_bytes"])
        if "cold_fraction" in knobs:
            fraction = float(knobs["cold_fraction"])
            if not 0.0 <= fraction <= 1.0:
                raise HarnessError("storage.cold_fraction must be in "
                                   f"[0, 1], got {fraction}")
            knobs["cold_fraction"] = fraction
        if "dir" in knobs:
            knobs["dir"] = str(knobs["dir"])
        if knobs and "tiered" not in self.backends:
            raise HarnessError("the storage knob tunes the tiered backend; "
                               "add 'tiered' to backends")
        object.__setattr__(self, "storage",
                           tuple(sorted(knobs.items())))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        """Open-loop event count: the arrival schedule's length."""
        return max(int(round(self.target_qps * self.duration_seconds)), 1)

    def storage_dict(self) -> dict:
        """The storage knob as a plain dict (empty without the knob)."""
        return dict(self.storage)

    def mix_weights(self) -> tuple[tuple[str, ...], tuple[float, ...]]:
        """Normalized (kinds, probabilities) of the query mix."""
        kinds = tuple(kind for kind, _ in self.query_mix)
        weights = [weight for _, weight in self.query_mix]
        total = sum(weights)
        return kinds, tuple(weight / total for weight in weights)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "query_mix":
                value = [[kind, weight] for kind, weight in value]
            elif field.name == "storage":
                value = dict(value)
            elif isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        payload = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise HarnessError(
                f"unknown experiment spec fields: {sorted(unknown)}")
        for name in ("backends", "quantiles"):
            if name in payload:
                payload[name] = tuple(payload[name])
        if "query_mix" in payload:
            payload["query_mix"] = tuple(
                (kind, weight) for kind, weight in payload["query_mix"])
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise HarnessError(f"invalid experiment spec JSON: {exc}") \
                from None
        if not isinstance(payload, Mapping):
            raise HarnessError("experiment spec JSON must be an object")
        return cls.from_dict(payload)
