"""Experiment runner: replay one spec's schedule, grade it, record it.

``run_experiment`` executes the full production-shaped loop:

1. **Materialize** the seeded row stream (dataset values, Zipf-skewed
   cell assignment) and the open-loop event schedule.
2. **Preload** the base rows into every backend through one
   :class:`~repro.ingest.IngestSession` per backend — identical batches,
   so moments stay bit-comparable across backends — and mirror the same
   rows into the sqlite :class:`~repro.harness.oracle.ExactOracle`.
3. **Replay** the schedule: ingest events flush the next batch to every
   backend (and the oracle); query events build one
   :class:`~repro.api.QuerySpec` and execute it against every backend
   through one shared :class:`~repro.api.QueryService`, recording
   per-(backend, kind) latency and folded phase timings.
4. **Grade**: every quantile-bearing estimate is scored with the
   oracle's Eq. 1 rank error against the ε contract; threshold
   decisions must agree with the exact answer outside the ε rank
   margin; non-reference backends are checked for exact agreement with
   the reference backend's payloads.
5. **Record** a schema-versioned trajectory record
   (:mod:`repro.harness.report`), optionally appending it to
   ``BENCH_harness.json``, and — with ``fail_on_violation`` — raise
   :class:`~repro.core.errors.HarnessError` on any contract violation,
   so CI treats accuracy regressions as failures.

Timestamps are the row's cell id (granularity 1.0 buckets), which pins
every cell to one time chunk and one cluster shard: per-cell
accumulation therefore happens in identical per-batch vectorized passes
everywhere, and single-cell and per-group answers agree bit-for-bit
between the cube and a multi-node cluster.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from ..api import QueryService, QuerySpec, qkey
from ..core.errors import HarnessError
from ..datasets import load, production_columns
from ..ingest import IngestSession, IngestSpec, build_target
from ..telemetry import TELEMETRY
from .metrics import LatencyAggregator, ResourceSampler
from .oracle import ExactOracle
from .report import SCHEMA_VERSION, append_trajectory, utc_now_iso
from .spec import ExperimentSpec
from .traffic import assign_cells, generate_schedule

#: Worst graded queries kept verbatim in the record.
WORST_KEPT = 10


class _AccuracyTally:
    """Per-backend oracle scoreboard for one run."""

    def __init__(self, epsilon: float):
        self.epsilon = float(epsilon)
        self.checked = 0
        self.rank_errors: list[float] = []
        self.violations = 0
        self.threshold_checked = 0
        self.threshold_disagreements = 0
        self.worst: list[dict] = []

    def grade(self, kind: str, cell, q: float, estimate: float,
              oracle: ExactOracle) -> None:
        error = oracle.rank_error(estimate, q, cell)
        self.checked += 1
        self.rank_errors.append(error)
        if error > self.epsilon:
            self.violations += 1
        self.worst.append({"kind": kind,
                           "cell": int(cell) if cell is not None else None,
                           "q": float(q), "estimate": float(estimate),
                           "exact": oracle.exact_quantile(q, cell),
                           "rank_error": error})
        self.worst.sort(key=lambda w: w["rank_error"], reverse=True)
        del self.worst[WORST_KEPT:]

    def grade_threshold(self, cell: int, t: float, q: float,
                        exceeds: bool, oracle: ExactOracle) -> None:
        self.threshold_checked += 1
        if exceeds != oracle.exceeds_threshold(t, q, cell) \
                and oracle.threshold_margin(t, q, cell) > self.epsilon:
            self.threshold_disagreements += 1
            self.violations += 1

    def summary(self) -> dict:
        errors = np.asarray(self.rank_errors, dtype=float)
        return {"checked": self.checked,
                "mean_rank_error": (float(errors.mean()) if errors.size
                                    else 0.0),
                "max_rank_error": (float(errors.max()) if errors.size
                                   else 0.0),
                "violations": self.violations,
                "threshold_checked": self.threshold_checked,
                "threshold_disagreements": self.threshold_disagreements,
                "worst": list(self.worst)}


def _make_rows(spec: ExperimentSpec, total: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """The full seeded row stream: (cell ids, values), length ``total``."""
    if spec.dataset == "production":
        # Appendix D.4 shape: heavy-tailed cell sizes, long-tailed
        # integer values; re-keyed onto the harness's single dimension.
        return production_columns(spec.cells, total, seed=spec.seed)
    values = np.array(load(spec.dataset, n=total, seed=spec.seed),
                      dtype=float)
    cell_column = assign_cells(total, spec.cells, spec.zipf_s,
                               np.random.default_rng(spec.seed + 1))
    return cell_column, values


def _build_sessions(spec: ExperimentSpec, storage_dir: str | None
                    ) -> dict[str, IngestSession]:
    """One spec-built engine + ingest session per requested backend."""
    sessions = {}
    knobs = spec.storage_dict()
    for backend in spec.backends:
        ingest_spec = IngestSpec(
            backend=backend, dimensions=("cell",), k=spec.k,
            granularity=spec.granularity, num_shards=spec.num_shards,
            replication=spec.replication, nodes=spec.nodes,
            flush_rows=None,
            storage_dir=storage_dir if backend == "tiered" else None,
            hot_budget_bytes=(knobs.get("hot_budget_bytes")
                              if backend == "tiered" else None))
        sessions[backend] = IngestSession(build_target(ingest_spec),
                                          ingest_spec)
    return sessions


def _register_backends(service: QueryService,
                       sessions: dict[str, IngestSession]) -> None:
    """(Re-)register each session's current read target.

    Re-registration after ingest matters for the packed store, whose
    read adapter snapshots the key->row map at construction.
    """
    for name, session in sessions.items():
        service.register(name, session.backend.read_target())


def _query_spec(spec: ExperimentSpec, event, thresholds: tuple[float, ...]
                ) -> QuerySpec:
    """The QuerySpec one scheduled query event executes everywhere."""
    if event.op == "quantile":
        return QuerySpec(kind="quantile", quantiles=spec.quantiles,
                         filters={"cell": event.cell})
    if event.op == "group_by":
        return QuerySpec(kind="group_by", quantiles=spec.quantiles,
                         group_dimension="cell")
    if event.op == "top_n":
        return QuerySpec(kind="top_n", quantiles=(spec.quantiles[-1],),
                         group_dimension="cell", n=spec.top_n)
    if event.op == "threshold_count":
        t = thresholds[event.index % len(thresholds)]
        return QuerySpec(kind="threshold_count",
                         quantiles=(spec.threshold_q,), thresholds=(t,),
                         group_dimension="cell")
    raise HarnessError(f"unknown query op {event.op!r}")


def _grade_response(spec: ExperimentSpec, query: QuerySpec, response,
                    tally: _AccuracyTally, oracle: ExactOracle) -> None:
    """Score one response's estimates against the exact oracle."""
    if query.kind == "quantile":
        cell = query.filters_dict()["cell"]
        for q in query.quantiles:
            tally.grade("quantile", cell, q,
                        response.estimates[qkey(q)], oracle)
    elif query.kind == "group_by":
        for cell, estimates in response.groups.items():
            for q in query.quantiles:
                tally.grade("group_by", cell, q, estimates[qkey(q)], oracle)
    elif query.kind == "top_n":
        for cell, estimate in response.top:
            tally.grade("top_n", cell, query.q, estimate, oracle)
    elif query.kind == "threshold_count":
        t = query.thresholds[0]
        for cell, outcomes in response.groups.items():
            tally.grade_threshold(int(cell), t, query.q,
                                  outcomes[qkey(t)]["exceeds"], oracle)


def _payload_of(response) -> tuple:
    """The answer-defining parts of a response (agreement comparison)."""
    return (response.value, response.estimates, response.groups,
            response.top, response.count)


def run_experiment(spec: ExperimentSpec, trajectory_path=None,
                   fail_on_violation: bool = False) -> dict:
    """Run one experiment end to end; returns the trajectory record.

    ``trajectory_path`` appends the record to a ``BENCH_harness.json``
    trajectory file; ``fail_on_violation`` raises
    :class:`~repro.core.errors.HarnessError` after recording when any
    ε-contract violation (or out-of-margin threshold disagreement)
    occurred.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = (ExperimentSpec.from_json(spec) if isinstance(spec, str)
                else ExperimentSpec.from_dict(spec))
    schedule = generate_schedule(spec)
    n_ingest = sum(1 for event in schedule if event.kind == "ingest")
    total_rows = spec.rows + n_ingest * spec.ingest_batch_rows
    cell_column, values = _make_rows(spec, total_rows)
    timestamps = cell_column.astype(float)  # one chunk/shard per cell

    knobs = spec.storage_dict()
    cold_fraction = float(knobs.get("cold_fraction", 0.0))
    storage_dir = temp_storage = None
    if "tiered" in spec.backends:
        storage_dir = knobs.get("dir")
        if storage_dir is None:
            storage_dir = temp_storage = tempfile.mkdtemp(
                prefix="repro-tiered-")
    sessions = _build_sessions(spec, storage_dir)
    oracle = ExactOracle("cell") if spec.oracle else None
    optimizer = None
    if spec.optimizer:
        from ..optimizer import Optimizer
        optimizer = Optimizer()
    service = QueryService(optimizer=optimizer)
    latencies = LatencyAggregator()
    tallies = {name: _AccuracyTally(spec.epsilon) for name in spec.backends}
    # A cold fraction makes the tiered tier deliberately lossy, so it
    # leaves the bit-exact agreement check (the ε contract still grades it).
    agreement = {name: {"queries": 0, "exact_matches": 0}
                 for name in spec.backends[1:]
                 if not (name == "tiered" and cold_fraction > 0)}

    def flush_batch(start: int, stop: int) -> None:
        for name, session in sessions.items():
            began = time.perf_counter()
            session.append_columns(values[start:stop],
                                   dims=[cell_column[start:stop]],
                                   timestamps=timestamps[start:stop])
            session.flush()
            latencies.record(name, "ingest", time.perf_counter() - began)
        if oracle is not None:
            oracle.insert(cell_column[start:stop], values[start:stop])

    # ------------------------------------------------------------------
    # Preload, then derive the run's threshold pool from exact answers.
    # ------------------------------------------------------------------
    flush_batch(0, spec.rows)
    if "tiered" in sessions and cold_fraction > 0:
        if spec.backends[0] == "tiered":
            raise HarnessError(
                "a cold_fraction > 0 makes the tiered backend lossy; it "
                "cannot be the reference backend")
        from ..storage import ColdSpec
        store = sessions["tiered"].backend.read_target()
        store.seal()
        sealed = len(store.stats()["segments"])
        # Conservative cold profile: the harness still grades cold
        # answers against the ε contract, and the Newton solve amplifies
        # quantization of high-order moments (Figure 17), so the default
        # 10-bit mantissa can breach ε. 20 mantissa bits with the log
        # family kept stays within the contract; the aggressive >=4x
        # keep_log=False profile is bench_tiered's gate instead.
        store.demote(count=max(1, round(cold_fraction * sealed)),
                     spec=ColdSpec(mantissa_bits=20, keep_log=True))
    _register_backends(service, sessions)
    base = np.sort(values[:spec.rows])
    thresholds = tuple(float(base[min(int(f * base.size), base.size - 1)])
                       for f in (0.5, 0.9, 0.99))

    cursor = spec.rows
    queries = 0
    flushes = 0
    with ResourceSampler() as sampler:
        started = time.perf_counter()
        for event in schedule:
            if spec.paced:
                lag = started + event.at - time.perf_counter()
                if lag > 0:
                    time.sleep(lag)
            if event.kind == "ingest":
                flush_batch(cursor, cursor + spec.ingest_batch_rows)
                cursor += spec.ingest_batch_rows
                _register_backends(service, sessions)
                flushes += 1
                continue
            query = _query_spec(spec, event, thresholds)
            queries += 1
            reference_payload = None
            for name in spec.backends:
                began = time.perf_counter()
                response = service.execute(query, backend=name)
                latencies.record(name, event.op,
                                 time.perf_counter() - began,
                                 timings=response.timings)
                if not response.timings.solve_route:
                    raise HarnessError(
                        f"backend {name!r} returned an unset solve_route "
                        f"for kind {event.op!r}; every QueryService route "
                        f"must fill QueryTimings")
                if oracle is not None:
                    _grade_response(spec, query, response, tallies[name],
                                    oracle)
                payload = _payload_of(response)
                if name == spec.backends[0]:
                    reference_payload = payload
                elif name in agreement:
                    agreement[name]["queries"] += 1
                    agreement[name]["exact_matches"] += int(
                        payload == reference_payload)
        elapsed = time.perf_counter() - started

    storage_record = None
    if "tiered" in sessions:
        store = sessions["tiered"].backend.read_target()
        stats = store.stats()
        ram_bytes = store.gather()[0].size_bytes()
        disk_bytes = store.disk_bytes()
        storage_record = {
            "knobs": knobs,
            "hot_budget_bytes": stats["hot_budget_bytes"],
            "cold_fraction": cold_fraction,
            "segments": len(stats["segments"]),
            "seals": stats["seals"],
            "hot_rows": stats["hot_rows"],
            "warm_bytes": stats["warm_bytes"],
            "cold_bytes": stats["cold_bytes"],
            "disk_bytes": disk_bytes,
            "ram_bytes": ram_bytes,
            "disk_over_ram": (disk_bytes / ram_bytes if ram_bytes else 0.0),
        }

    for session in sessions.values():
        session.close()
    if "tiered" in sessions:
        sessions["tiered"].backend.read_target().close(seal=False)
    if temp_storage is not None:
        shutil.rmtree(temp_storage, ignore_errors=True)

    record = {
        "schema": SCHEMA_VERSION,
        "run_at": utc_now_iso(),
        "spec": spec.to_dict(),
        "workload": {
            "events": len(schedule),
            "queries": queries,
            "ingest_flushes": flushes,
            "rows_ingested": cursor,
            "elapsed_seconds": elapsed,
            "qps_target": spec.target_qps,
            "qps_achieved": (len(schedule) / elapsed if elapsed > 0
                             else 0.0)},
        "latency": latencies.summary(),
        "resources": sampler.summary(),
        "agreement": agreement,
    }
    if storage_record is not None:
        record["storage"] = storage_record
    if optimizer is not None:
        # Additive "optimizer" key (see report.py): cross-batch cache
        # behavior — a nonzero hit rate here rode the exact same ε and
        # agreement gates as every cold answer above.
        record["optimizer"] = optimizer.stats()
    if oracle is not None:
        record["accuracy"] = {"epsilon": spec.epsilon}
        for name, tally in tallies.items():
            record["accuracy"][name] = tally.summary()
        oracle.close()
    if TELEMETRY.enabled:
        # In-process observability snapshot (additive "telemetry" key,
        # see report.py): the run's metrics registry plus span/slow-query
        # totals, so trajectories carry internal phase/queue visibility
        # alongside the external latency grades.
        record["telemetry"] = TELEMETRY.snapshot()

    if trajectory_path is not None:
        append_trajectory(trajectory_path, record)

    if fail_on_violation and oracle is not None:
        broken = {name: tally.violations for name, tally in tallies.items()
                  if tally.violations}
        if broken:
            raise HarnessError(
                f"ε-contract violations (epsilon={spec.epsilon}): {broken}; "
                f"worst: {[t.worst[:2] for t in tallies.values() if t.worst]}")
    return record
