"""Exact-answer oracle: ground truth for every sketch estimate.

The oracle mirrors each row the harness ingests into an in-memory
stdlib :mod:`sqlite3` table, and answers the questions sketches only
approximate — exact quantiles by ``ORDER BY ... LIMIT 1 OFFSET rank``,
exact ranks by indexed ``COUNT`` — so every replayed query can be graded
against the true answer on the *identical* data, including rows that
arrived mid-run.

The accuracy currency is the paper's Eq. 1 **rank error**: for an
estimate ``x`` of quantile ``q`` over ``n`` rows,

    ``rank_error = distance(q * n, [count(< x), count(<= x)]) / n``

i.e. zero whenever the target rank falls inside ``x``'s tie range, else
the gap to the nearer edge, normalized by ``n``.  This is exactly the ε
the moments sketch promises (ε-approximate quantiles), so the harness's
contract check — ``rank_error <= spec.epsilon`` on every validated query
— is the paper's own guarantee, enforced continuously.
"""

from __future__ import annotations

import sqlite3

import numpy as np

from ..core.errors import HarnessError


class ExactOracle:
    """Exact quantile/rank answers over the rows a run has ingested."""

    def __init__(self, dimension: str = "cell"):
        self.dimension = str(dimension)
        self._db = sqlite3.connect(":memory:")
        self._db.execute(
            f"CREATE TABLE rows ({self.dimension} INTEGER, value REAL)")
        # Point lookups and per-group rank counts dominate; a composite
        # index makes both O(log n) instead of full scans.
        self._db.execute(
            f"CREATE INDEX idx_cell_value ON rows ({self.dimension}, value)")
        self.rows = 0

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # Ingest mirror
    # ------------------------------------------------------------------

    def insert(self, cells, values) -> int:
        """Mirror one ingested batch; returns rows inserted."""
        cells = np.asarray(cells)
        values = np.asarray(values, dtype=float)
        if cells.shape[0] != values.shape[0]:
            raise HarnessError(
                f"oracle batch length mismatch: {cells.shape[0]} cells "
                f"vs {values.shape[0]} values")
        self._db.executemany(
            "INSERT INTO rows VALUES (?, ?)",
            zip((int(c) for c in cells), (float(v) for v in values)))
        self._db.commit()
        self.rows += int(values.shape[0])
        return int(values.shape[0])

    # ------------------------------------------------------------------
    # Exact answers
    # ------------------------------------------------------------------

    def _where(self, cell: int | None) -> tuple[str, tuple]:
        if cell is None:
            return "", ()
        return f" WHERE {self.dimension} = ?", (int(cell),)

    def count(self, cell: int | None = None) -> int:
        where, params = self._where(cell)
        row = self._db.execute(f"SELECT COUNT(*) FROM rows{where}",
                               params).fetchone()
        return int(row[0])

    def cells(self) -> list[int]:
        """Distinct cells present, ascending."""
        return [int(row[0]) for row in self._db.execute(
            f"SELECT DISTINCT {self.dimension} FROM rows "
            f"ORDER BY {self.dimension}")]

    def exact_quantile(self, q: float, cell: int | None = None) -> float:
        """The true q-quantile (nearest-rank, the paper's definition)."""
        n = self.count(cell)
        if n == 0:
            raise HarnessError(f"oracle has no rows for cell {cell!r}")
        rank = min(max(int(np.floor(float(q) * n)), 0), n - 1)
        where, params = self._where(cell)
        row = self._db.execute(
            f"SELECT value FROM rows{where} ORDER BY value "
            f"LIMIT 1 OFFSET ?", (*params, rank)).fetchone()
        return float(row[0])

    def rank_of(self, value: float, cell: int | None = None
                ) -> tuple[int, int]:
        """``(count(< value), count(<= value))`` — the tie range."""
        where, params = self._where(cell)
        conjunction = "AND" if where else "WHERE"
        below = self._db.execute(
            f"SELECT COUNT(*) FROM rows{where} {conjunction} value < ?",
            (*params, float(value))).fetchone()[0]
        at_or_below = self._db.execute(
            f"SELECT COUNT(*) FROM rows{where} {conjunction} value <= ?",
            (*params, float(value))).fetchone()[0]
        return int(below), int(at_or_below)

    def rank_error(self, estimate: float, q: float,
                   cell: int | None = None) -> float:
        """Paper Eq. 1 rank error of ``estimate`` for quantile ``q``."""
        n = self.count(cell)
        if n == 0:
            raise HarnessError(f"oracle has no rows for cell {cell!r}")
        below, at_or_below = self.rank_of(estimate, cell)
        target = float(q) * n
        if below <= target <= at_or_below:
            return 0.0
        return min(abs(below - target), abs(at_or_below - target)) / n

    def exceeds_threshold(self, t: float, q: float, cell: int) -> bool:
        """Whether the cell's true q-quantile exceeds ``t``."""
        return self.exact_quantile(q, cell) > float(t)

    def threshold_margin(self, t: float, q: float, cell: int) -> float:
        """Rank distance of ``t`` from the cell's q-rank, normalized.

        A threshold decision that disagrees with the oracle is only a
        real violation when this margin exceeds ε — inside the margin the
        sketch's ε-approximate quantile is *allowed* to fall on either
        side of ``t``.
        """
        n = self.count(cell)
        below, at_or_below = self.rank_of(t, cell)
        target = float(q) * n
        if below <= target <= at_or_below:
            return 0.0
        return min(abs(below - target), abs(at_or_below - target)) / n
