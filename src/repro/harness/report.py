"""Schema-versioned ``BENCH_harness.json`` trajectory records.

A harness run emits one machine-readable record; the trajectory file
accumulates records across runs (and across PRs), so future re-anchors
can see performance and accuracy *over time* instead of flying blind.

``BENCH_harness.json`` schema (``schema = "repro.harness/1"``)::

    {
      "schema": "repro.harness/1",
      "runs": [                      # append-only, oldest first
        {
          "schema": "repro.harness/1",
          "run_at": "2026-08-07T12:00:00+00:00",   # UTC ISO 8601
          "spec": {...},             # ExperimentSpec.to_dict() verbatim
          "workload": {
            "events": int,           # scheduled events
            "queries": int, "ingest_flushes": int,
            "rows_ingested": int,    # base preload + mid-run batches
            "elapsed_seconds": float,
            "qps_target": float, "qps_achieved": float
          },
          "latency": {               # per backend
            "<backend>": {
              "<kind>": {            # quantile/group_by/top_n/
                                     # threshold_count/ingest
                "count": int, "mean_seconds": float,
                "max_seconds": float, "p50_seconds": float,
                "p95_seconds": float, "p99_seconds": float
              },
              "phase_totals": {      # folded QueryTimings
                "planner_seconds": float, "merge_seconds": float,
                "solve_seconds": float, "solve_calls": int
              }
            }
          },
          "resources": {
            "samples": int, "cpu_percent_mean": float,
            "cpu_percent_max": float, "rss_max_bytes": int,
            "rss_mean_bytes": float
          },
          "accuracy": {              # present when spec.oracle
            "epsilon": float,
            "<backend>": {
              "checked": int,        # graded quantile estimates
              "mean_rank_error": float, "max_rank_error": float,
              "violations": int,     # rank_error > epsilon
              "threshold_checked": int,
              "threshold_disagreements": int,   # outside the ε margin
              "worst": [             # up to 10 worst graded queries
                {"kind": str, "cell": int|null, "q": float,
                 "estimate": float, "exact": float,
                 "rank_error": float}
              ]
            }
          },
          "agreement": {             # cross-backend, vs backends[0]
            "<backend>": {"queries": int, "exact_matches": int}
          },
          "storage": {               # additive (still schema /1):
                                     # present when spec drives a
                                     # tiered backend
            "knobs": {...},          # spec.storage verbatim
            "hot_budget_bytes": int, "cold_fraction": float,
            "segments": int, "seals": int, "hot_rows": int,
            "warm_bytes": int, "cold_bytes": int,
            "disk_bytes": int,       # on-disk segment footprint
            "ram_bytes": int,        # gathered packed-store footprint
            "disk_over_ram": float   # the tiered-vs-RAM byte delta
          },
          "optimizer": {             # additive (still schema /1):
                                     # present when spec.optimizer
            "cache": {"entries": int, "bytes": int, "budget_bytes": int,
                      "hits": int, "misses": int, "hit_rate": float,
                      "evictions": int, "stale_drops": int},
            "profile": {"scans": int, "requests": int, "hits": int,
                        "cold_merge_seconds": float},
            "materialized": [        # advisor-pinned roll-ups
              {"scan_key": [str], "groups": int, "bytes": int,
               "refreshes": int}
            ]
          },
          "telemetry": {             # additive (still schema /1):
                                     # present when the in-process
                                     # telemetry plane was enabled
                                     # (``repro harness run --telemetry``)
            "enabled": true,
            "metrics": {...},        # MetricsRegistry.to_dict(): counters,
                                     # gauges, mergeable log-histograms
            "spans_recorded": int, "spans_dropped": int,
            "slow_queries_captured": int
          }
        }
      ]
    }

Records are self-describing: consumers must ignore unknown keys and
check ``schema`` before parsing, so the format can grow compatibly.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path

from ..core.errors import HarnessError

#: Version stamp written into every record and the trajectory envelope.
SCHEMA_VERSION = "repro.harness/1"

#: Default trajectory file name at the repository root.
DEFAULT_TRAJECTORY = "BENCH_harness.json"


def utc_now_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")


def load_trajectory(path) -> dict:
    """Read a trajectory file (empty envelope when absent)."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "runs": []}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise HarnessError(f"corrupt trajectory file {path}: {exc}") from None
    if not isinstance(payload, dict) or "runs" not in payload:
        raise HarnessError(
            f"{path} is not a harness trajectory (missing 'runs')")
    return payload


def append_trajectory(path, record: dict) -> dict:
    """Append one run record to the trajectory file; returns the envelope."""
    if record.get("schema") != SCHEMA_VERSION:
        raise HarnessError(
            f"record schema {record.get('schema')!r} != {SCHEMA_VERSION!r}")
    envelope = load_trajectory(path)
    envelope["schema"] = SCHEMA_VERSION
    envelope["runs"].append(record)
    Path(path).write_text(json.dumps(envelope, indent=2, default=float)
                          + "\n", encoding="utf-8")
    return envelope
