"""Observability primitives: latency aggregation and resource sampling.

:class:`LatencyAggregator` collects per-``(backend, kind)`` latency
samples during a replay and summarizes them as the production SLO
numbers — P50/P95/P99 (numpy linear-interpolation percentiles), mean,
max, count — plus aggregate solve/merge phase totals folded out of
:class:`~repro.api.QueryTimings`, so a harness report decomposes *where*
the tail goes, not just how long it is.

:class:`ResourceSampler` is a daemon thread sampling process CPU
utilization (``os.times`` user+system deltas over wall-clock deltas) and
resident set size (``/proc/self/statm`` on Linux, with a
``resource.getrusage`` peak-RSS fallback elsewhere) — stdlib only, no
psutil dependency.
"""

from __future__ import annotations

import os
import resource
import threading
import time
from collections import defaultdict

import numpy as np

#: Reported percentiles, in report-key order.
PERCENTILES = ((50, "p50"), (95, "p95"), (99, "p99"))

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def latency_summary(samples) -> dict:
    """P50/P95/P99/mean/max/count of one latency sample set (seconds).

    Percentiles are numpy's default linear interpolation; a single
    sample is its own percentile at every level, and an empty set
    summarizes to a zero-count record rather than crashing the report.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        return {"count": 0}
    summary = {"count": int(values.size),
               "mean_seconds": float(values.mean()),
               "max_seconds": float(values.max())}
    levels = [level for level, _ in PERCENTILES]
    for (_, key), value in zip(PERCENTILES, np.percentile(values, levels)):
        summary[f"{key}_seconds"] = float(value)
    return summary


class LatencyAggregator:
    """Per-(backend, kind) latency samples plus phase-time totals."""

    def __init__(self):
        self._samples: dict[tuple[str, str], list[float]] = defaultdict(list)
        self._phases: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float))

    def record(self, backend: str, kind: str, seconds: float,
               timings=None) -> None:
        """Add one latency sample (and optionally its QueryTimings)."""
        self._samples[(str(backend), str(kind))].append(float(seconds))
        if timings is not None:
            phases = self._phases[str(backend)]
            phases["planner_seconds"] += timings.planner_seconds
            phases["merge_seconds"] += timings.merge_seconds
            phases["solve_seconds"] += timings.solve_seconds
            phases["solve_calls"] += timings.solve_calls

    def count(self, backend: str | None = None) -> int:
        return sum(len(samples) for (b, _), samples in self._samples.items()
                   if backend is None or b == backend)

    def summary(self) -> dict:
        """``{backend: {kind: {count, mean, max, p50, p95, p99}}}``."""
        out: dict[str, dict] = {}
        for (backend, kind), samples in sorted(self._samples.items()):
            out.setdefault(backend, {})[kind] = latency_summary(samples)
        for backend, phases in self._phases.items():
            entry = out.setdefault(backend, {})
            entry["phase_totals"] = {
                "planner_seconds": phases["planner_seconds"],
                "merge_seconds": phases["merge_seconds"],
                "solve_seconds": phases["solve_seconds"],
                "solve_calls": int(phases["solve_calls"])}
        return out


def _rss_bytes() -> int:
    """Current resident set size (Linux /proc; peak-RSS fallback)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; KiB is the common case.
        return int(usage.ru_maxrss) * 1024


class ResourceSampler:
    """Background CPU/RSS sampler for the duration of one run.

    CPU utilization is the process's (user + system) CPU-second delta
    divided by the wall-clock delta since the previous sample, as a
    percentage of one core (values above 100 mean thread-pool
    parallelism).  Use as a context manager; ``summary()`` after exit.
    """

    def __init__(self, interval_seconds: float = 0.1):
        self.interval_seconds = max(float(interval_seconds), 0.01)
        self.samples: list[dict] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    def _cpu_seconds(self) -> float:
        times = os.times()
        return times.user + times.system

    def _run(self) -> None:
        last_wall = time.perf_counter()
        last_cpu = self._cpu_seconds()
        while not self._stop.wait(self.interval_seconds):
            wall = time.perf_counter()
            cpu = self._cpu_seconds()
            elapsed = wall - last_wall
            self.samples.append({
                "at_seconds": wall - self._started_at,
                "cpu_percent": (100.0 * (cpu - last_cpu) / elapsed
                                if elapsed > 0 else 0.0),
                "rss_bytes": _rss_bytes()})
            last_wall, last_cpu = wall, cpu

    def __enter__(self) -> "ResourceSampler":
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def summary(self) -> dict:
        """Aggregate CPU/RSS over the sampled window (always well-formed)."""
        if not self.samples:
            # Sub-interval runs still report a final RSS reading.
            return {"samples": 0, "rss_max_bytes": _rss_bytes()}
        cpu = np.asarray([s["cpu_percent"] for s in self.samples])
        rss = np.asarray([s["rss_bytes"] for s in self.samples])
        return {"samples": len(self.samples),
                "cpu_percent_mean": float(cpu.mean()),
                "cpu_percent_max": float(cpu.max()),
                "rss_max_bytes": int(rss.max()),
                "rss_mean_bytes": float(rss.mean())}
