"""Production workload harness: simulate, observe, and validate.

The harness closes the loop the point benchmarks leave open: it drives
the whole system — ingest sessions and query service together, against
any backend set — under a declarative, seeded, production-shaped load
(:class:`ExperimentSpec`), measures it like an SLO dashboard would
(P50/P95/P99 per query kind, throughput, solve/merge phase totals,
CPU/RSS), grades every estimate against a stdlib-sqlite exact oracle
under the paper's ε rank-error contract, and emits schema-versioned
``BENCH_harness.json`` trajectory records so performance and accuracy
are tracked over time.

Quick start::

    from repro.harness import ExperimentSpec, run_experiment
    record = run_experiment(ExperimentSpec(
        backends=("cube", "cluster"), duration_seconds=10.0,
        target_qps=40.0), trajectory_path="BENCH_harness.json")
"""

from .metrics import LatencyAggregator, ResourceSampler, latency_summary
from .oracle import ExactOracle
from .report import (DEFAULT_TRAJECTORY, SCHEMA_VERSION, append_trajectory,
                     load_trajectory)
from .runner import run_experiment
from .spec import BACKENDS, QUERY_KINDS, ExperimentSpec
from .traffic import (Event, arrival_offsets, assign_cells,
                      generate_schedule, zipf_weights)

__all__ = [
    "BACKENDS", "QUERY_KINDS", "ExperimentSpec",
    "Event", "arrival_offsets", "assign_cells", "generate_schedule",
    "zipf_weights",
    "LatencyAggregator", "ResourceSampler", "latency_summary",
    "ExactOracle",
    "DEFAULT_TRAJECTORY", "SCHEMA_VERSION", "append_trajectory",
    "load_trajectory",
    "run_experiment",
]
