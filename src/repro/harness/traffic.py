"""Deterministic open-loop traffic generation for workload experiments.

The generator turns an :class:`~repro.harness.spec.ExperimentSpec` into
a fully materialized event schedule *before* the run starts — the
open-loop discipline: arrival times are decided by the workload model,
never by how fast the system under test happens to respond, so a slow
backend shows up as latency (and, under pacing, as schedule slip)
rather than as silently reduced load.

Everything is a pure function of the spec's seed:

* **Arrivals** — exactly ``spec.num_events`` offsets in
  ``[0, duration)``.  A ``1 - burstiness`` fraction arrive as a
  Poisson-like process (sorted uniform draws, i.e. a Poisson process
  conditioned on its count); the remaining fraction lands in short
  Gaussian bursts around a handful of burst centers, which is what makes
  P99 latencies diverge from P50 under load.
* **Kinds** — each event is an ingest flush with probability
  ``ingest_fraction``, otherwise a query kind drawn from the normalized
  ``query_mix``.
* **Cell targeting** — point queries hit cell ``i`` with Zipfian weight
  ``(i + 1) ** -zipf_s``; lower-numbered cells are strictly hotter, the
  skew every caching/sharding layer downstream has to survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Event kinds (``op`` narrows a query event to its QuerySpec kind).
EVENT_KINDS = ("query", "ingest")


@dataclass(frozen=True)
class Event:
    """One scheduled arrival in an open-loop replay."""

    index: int
    at: float        # arrival offset from the run start, seconds
    kind: str        # "query" | "ingest"
    op: str          # query kind, or "flush" for ingest events
    cell: int | None = None  # Zipf-chosen target cell (point queries)


def zipf_weights(cells: int, s: float) -> np.ndarray:
    """Normalized Zipfian popularity over ``cells`` ranks (rank 0 hottest)."""
    weights = (np.arange(cells, dtype=float) + 1.0) ** -float(s)
    return weights / weights.sum()


def arrival_offsets(num_events: int, duration: float, burstiness: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Sorted arrival offsets in ``[0, duration)`` with optional bursts.

    ``burstiness`` is the fraction of events concentrated into bursts;
    each burst is a Gaussian cluster whose width is ~0.5% of the run, so
    a bursty schedule has the same total event count as a smooth one —
    only the instantaneous rate differs.
    """
    n_burst = int(round(burstiness * num_events))
    smooth = rng.uniform(0.0, duration, num_events - n_burst)
    if n_burst:
        n_centers = max(int(np.sqrt(n_burst) / 2), 1)
        centers = rng.uniform(0.0, duration, n_centers)
        where = rng.integers(0, n_centers, n_burst)
        jitter = rng.normal(0.0, duration * 0.005, n_burst)
        burst = np.clip(centers[where] + jitter, 0.0, np.nextafter(duration, 0.0))
        offsets = np.concatenate([smooth, burst])
    else:
        offsets = smooth
    offsets.sort()
    return offsets


def generate_schedule(spec) -> list[Event]:
    """Materialize the full event schedule for one experiment.

    Deterministic: the same spec (same seed) always yields the identical
    list of events — the property the replay tests pin down.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.num_events
    offsets = arrival_offsets(n, spec.duration_seconds, spec.burstiness, rng)
    is_ingest = rng.random(n) < spec.ingest_fraction
    kinds, probabilities = spec.mix_weights()
    ops = rng.choice(len(kinds), size=n, p=probabilities)
    cell_ids = rng.choice(spec.cells, size=n,
                          p=zipf_weights(spec.cells, spec.zipf_s))
    events = []
    for i in range(n):
        if is_ingest[i]:
            events.append(Event(index=i, at=float(offsets[i]),
                                kind="ingest", op="flush"))
        else:
            op = kinds[ops[i]]
            # Group kinds scan every cell; only point kinds target one.
            cell = int(cell_ids[i]) if op == "quantile" else None
            events.append(Event(index=i, at=float(offsets[i]),
                                kind="query", op=op, cell=cell))
    return events


def assign_cells(n_rows: int, cells: int, s: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Zipf-skewed cell assignment for ingested rows.

    The first ``cells`` rows are dealt round-robin so every cell exists
    (group queries and the oracle need non-empty groups); the rest
    follow the same popularity law as the query traffic, so hot cells
    are also the biggest — the paper's production workload shape.
    """
    cell_column = np.empty(n_rows, dtype=np.int64)
    head = min(cells, n_rows)
    cell_column[:head] = np.arange(head)
    if n_rows > head:
        cell_column[head:] = rng.choice(cells, size=n_rows - head,
                                        p=zipf_weights(cells, s))
    return cell_column
