"""Slow-query log: full span trees for queries over a latency threshold."""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import List, Optional

from .trace import Tracer

DEFAULT_CAPACITY = 32


class SlowQueryLog:
    """Keeps the newest N slow-query captures, each with its span tree.

    Disabled until a threshold is set (``threshold_seconds=None`` means
    never capture; ``0.0`` captures every query — useful in smoke CI).
    """

    def __init__(self, threshold_seconds: Optional[float] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.threshold_seconds = threshold_seconds
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.captured = 0

    def consider(self, root_payload: dict, tracer: Tracer) -> bool:
        """Capture the query if its root span crossed the threshold.

        Call right after the root span ends, while its child spans are
        still in the tracer ring.
        """
        if self.threshold_seconds is None:
            return False
        duration = root_payload.get("duration_seconds") or 0.0
        if duration < self.threshold_seconds:
            return False
        entry = {
            "captured_unix": time.time(),
            "trace_id": root_payload.get("trace_id"),
            "root": root_payload.get("name"),
            "duration_seconds": duration,
            "attributes": dict(root_payload.get("attributes") or {}),
            "spans": tracer.trace(root_payload["trace_id"]),
        }
        with self._lock:
            self._entries.append(entry)
            self.captured += 1
        return True

    def entries(self) -> List[dict]:
        with self._lock:
            return list(self._entries)

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self.captured = 0
