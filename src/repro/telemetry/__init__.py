"""repro.telemetry: tracing, mergeable metrics, and exposition.

An always-available, near-zero-overhead-when-disabled observability
plane.  See runtime.py for the ``TELEMETRY`` singleton that every
instrumentation site guards on, trace.py for hierarchical spans with
cross-thread/cross-node propagation, metrics.py for exactly-mergeable
counters/gauges/log-linear histograms, export.py for Prometheus/JSON
renderers, and slowlog.py for threshold-triggered span-tree capture.
"""

from .metrics import (
    Counter, Gauge, LogHistogram, MetricsRegistry, DEFAULT_SUBBUCKETS,
)
from .trace import (
    Span, SpanContext, Tracer, build_trace_tree, render_trace_tree,
    DEFAULT_RING_CAPACITY,
)
from .slowlog import SlowQueryLog
from .export import load_metrics, render_json, render_prometheus
from .runtime import TELEMETRY, TelemetryRuntime, disable, enable, reset, snapshot

__all__ = [
    "TELEMETRY", "TelemetryRuntime", "enable", "disable", "reset", "snapshot",
    "Tracer", "Span", "SpanContext", "build_trace_tree", "render_trace_tree",
    "MetricsRegistry", "Counter", "Gauge", "LogHistogram",
    "SlowQueryLog", "render_prometheus", "render_json", "load_metrics",
    "DEFAULT_SUBBUCKETS", "DEFAULT_RING_CAPACITY",
]
