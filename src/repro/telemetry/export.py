"""Exposition: Prometheus text format and JSON renderers.

Both renderers accept either a live :class:`MetricsRegistry` or the
plain dict produced by ``MetricsRegistry.to_dict()`` (the form stored in
``BENCH_harness.json`` records and ``--telemetry-out`` dumps), so the
CLI can re-render dumps offline.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Mapping, Set, Tuple, Union

from ..core.errors import TelemetryError
from .metrics import LogHistogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _coerce(registry: Union[MetricsRegistry, Mapping]) -> dict:
    if isinstance(registry, MetricsRegistry):
        return registry.to_dict()
    return dict(registry)


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", f"repro_{name}")


def _prom_labels(
    labels: Mapping[str, str],
    extra: Union[Mapping[str, object], Iterable[Tuple[str, object]]] = (),
) -> str:
    merged: Dict[str, object] = dict(labels)
    merged.update(dict(extra))
    pairs = sorted(merged.items())
    if not pairs:
        return ""
    body = ",".join(f'{_NAME_RE.sub("_", k)}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: Union[MetricsRegistry, Mapping]) -> str:
    """Prometheus text exposition format.

    Histograms are exposed as summaries (quantile series + ``_count`` +
    an approximate ``_sum`` reconstructed from bucket midpoints; the
    registry deliberately stores no float sum — see metrics.py).
    """
    payload = _coerce(registry)
    lines: List[str] = []
    typed: Set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for entry in payload.get("counters", []):
        name = _prom_name(entry["name"])
        _type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry.get('labels', {}))} {entry['value']}")
    for entry in payload.get("gauges", []):
        name = _prom_name(entry["name"])
        _type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry.get('labels', {}))} {entry['value']}")
    for entry in payload.get("histograms", []):
        name = _prom_name(entry["name"])
        _type_line(name, "summary")
        hist = LogHistogram.from_dict(entry)
        labels = entry.get("labels", {})
        for q in SUMMARY_QUANTILES:
            value = hist.quantile(q)
            lines.append(f"{name}{_prom_labels(labels, {'quantile': q})} {value}")
        lines.append(f"{name}_count{_prom_labels(labels)} {hist.count}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {hist.approx_sum()}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: Union[MetricsRegistry, Mapping], indent: int = 2) -> str:
    return json.dumps(_coerce(registry), indent=indent, sort_keys=True)


def load_metrics(path: str) -> dict:
    """Load a metrics dump for offline rendering.

    Accepts either a raw ``MetricsRegistry.to_dict()`` document, a
    telemetry snapshot (``{"metrics": {...}}``), or a harness trajectory
    (``{"runs": [...]}`` — uses the latest run carrying a snapshot).
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "runs" in doc:
        for run in reversed(doc["runs"]):
            snap = run.get("telemetry")
            if snap and "metrics" in snap:
                return snap["metrics"]
        raise TelemetryError(
            f"no run in {path} carries a telemetry snapshot")
    if "metrics" in doc and "counters" not in doc:
        return doc["metrics"]
    return doc
