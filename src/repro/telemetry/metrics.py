"""Mergeable runtime metrics: counters, gauges, log-linear histograms.

The histogram mirrors the paper's central trick — a tiny, mergeable
summary — applied to latencies instead of data values.  Buckets follow a
fixed log2 layout (``index = floor(S * log2(v))`` with ``S`` sub-buckets
per octave), so two histograms built from disjoint sample sets merge by
integer bucket-count addition plus min/max folds.  Integer adds are
exact, associative, and commutative, which makes fold order irrelevant:
partials shipped by cluster nodes can be folded in any order (or any
tree shape) and yield a byte-identical result.  No floating-point sum is
kept precisely because float addition is *not* associative and would
break that guarantee.

Quantile estimates return the geometric midpoint of the rank's bucket,
clamped into [min, max].  For positive samples the estimate's relative
error vs the exact rank statistic is bounded by ``2**(1/(2S)) - 1``
(about 4.4% at the default S=8).
"""

from __future__ import annotations

import math
import struct
import threading

from ..core.errors import TelemetryError
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

DEFAULT_SUBBUCKETS = 8

# Partial wire format: header + sorted (bucket_index, count) entries for
# the positive then negative bucket maps.  Sorting makes serialization
# deterministic, so equal histogram states produce equal bytes.
_MAGIC = b"RTH1"
_HEADER = struct.Struct("<4sBxHHQdd")  # magic, S, n_pos, n_neg, zeros, min, max
_ENTRY = struct.Struct("<iQ")


class LogHistogram:
    """Log-linear latency histogram with exact, order-free merges."""

    __slots__ = ("subbuckets", "zeros", "min", "max", "_pos", "_neg", "_lock")

    def __init__(self, subbuckets: int = DEFAULT_SUBBUCKETS) -> None:
        if not 1 <= int(subbuckets) <= 255:
            raise TelemetryError("subbuckets must be in [1, 255]")
        self.subbuckets = int(subbuckets)
        self.zeros = 0
        self.min = math.inf
        self.max = -math.inf
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------

    def _index(self, magnitude: float) -> int:
        return math.floor(self.subbuckets * math.log2(magnitude))

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise TelemetryError(f"cannot observe non-finite value {value!r}")
        with self._lock:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if value == 0.0:
                self.zeros += 1
            elif value > 0.0:
                i = self._index(value)
                self._pos[i] = self._pos.get(i, 0) + 1
            else:
                i = self._index(-value)
                self._neg[i] = self._neg.get(i, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    # -- state -------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return (self.zeros + sum(self._pos.values())
                    + sum(self._neg.values()))

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error of quantile() for positive samples."""
        return 2.0 ** (1.0 / (2.0 * self.subbuckets)) - 1.0

    def state(self) -> tuple:
        """Canonical comparable state (used by tests and __eq__)."""
        with self._lock:
            return (
                self.subbuckets,
                self.zeros,
                self.min,
                self.max,
                tuple(sorted(self._pos.items())),
                tuple(sorted(self._neg.items())),
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.state() == other.state()

    def __hash__(self) -> int:  # mutable; identity hash like list would refuse
        raise TypeError("LogHistogram is unhashable")

    # -- merging -----------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        if other.subbuckets != self.subbuckets:
            raise TelemetryError(
                f"cannot merge histograms with different layouts "
                f"(S={self.subbuckets} vs S={other.subbuckets})"
            )
        with self._lock:
            self.zeros += other.zeros
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
            for i, c in other._pos.items():
                self._pos[i] = self._pos.get(i, 0) + c
            for i, c in other._neg.items():
                self._neg[i] = self._neg.get(i, 0) + c
        return self

    # -- wire partials -----------------------------------------------

    def to_partial(self) -> bytes:
        """Serialize to a compact binary partial (~100 bytes in practice).

        Deterministic: equal states yield equal bytes, so a fold across
        N nodes can be checked for bit-identity against a single-process
        histogram of the same samples.
        """
        with self._lock:
            pos = sorted(self._pos.items())
            neg = sorted(self._neg.items())
            out = [_HEADER.pack(_MAGIC, self.subbuckets, len(pos), len(neg),
                                self.zeros, self.min, self.max)]
            for i, c in pos:
                out.append(_ENTRY.pack(i, c))
            for i, c in neg:
                out.append(_ENTRY.pack(i, c))
        return b"".join(out)

    @classmethod
    def from_partial(cls, blob: bytes) -> "LogHistogram":
        magic, sub, n_pos, n_neg, zeros, mn, mx = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise TelemetryError("bad histogram partial magic")
        hist = cls(subbuckets=sub)
        hist.zeros = zeros
        hist.min = mn
        hist.max = mx
        off = _HEADER.size
        for _ in range(n_pos):
            i, c = _ENTRY.unpack_from(blob, off)
            hist._pos[i] = c
            off += _ENTRY.size
        for _ in range(n_neg):
            i, c = _ENTRY.unpack_from(blob, off)
            hist._neg[i] = c
            off += _ENTRY.size
        return hist

    def merge_partial(self, blob: bytes) -> "LogHistogram":
        return self.merge(LogHistogram.from_partial(blob))

    # -- estimation --------------------------------------------------

    def _bucket_value(self, index: int, sign: int) -> float:
        mid = 2.0 ** ((index + 0.5) / self.subbuckets)
        return sign * mid

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from bucket midpoints."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("q must be in [0, 1]")
        with self._lock:
            total = (self.zeros + sum(self._pos.values())
                     + sum(self._neg.values()))
            if total == 0:
                return math.nan
            rank = max(1, math.ceil(q * total))
            seen = 0
            # Ascending value order: negatives (largest magnitude first),
            # zeros, then positives.
            for i in sorted(self._neg, reverse=True):
                seen += self._neg[i]
                if seen >= rank:
                    return self._clamp_locked(self._bucket_value(i, -1))
            seen += self.zeros
            if seen >= rank:
                return self._clamp_locked(0.0)
            for i in sorted(self._pos):
                seen += self._pos[i]
                if seen >= rank:
                    return self._clamp_locked(self._bucket_value(i, +1))
            return self.max  # pragma: no cover - rank <= total always lands

    def _clamp_locked(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def approx_sum(self) -> float:
        """Approximate sample sum from bucket midpoints (NOT mergeable
        exactly — derived on demand, never stored)."""
        with self._lock:
            total = 0.0
            for i, c in self._pos.items():
                total += c * self._bucket_value(i, +1)
            for i, c in self._neg.items():
                total += c * self._bucket_value(i, -1)
        return total

    # -- dict round trip ---------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "subbuckets": self.subbuckets,
                "zeros": self.zeros,
                "min": None if math.isinf(self.min) else self.min,
                "max": None if math.isinf(self.max) else self.max,
                "pos": sorted(self._pos.items()),
                "neg": sorted(self._neg.items()),
            }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LogHistogram":
        hist = cls(subbuckets=payload.get("subbuckets", DEFAULT_SUBBUCKETS))
        hist.zeros = int(payload.get("zeros", 0))
        mn = payload.get("min")
        mx = payload.get("max")
        hist.min = math.inf if mn is None else float(mn)
        hist.max = -math.inf if mx is None else float(mx)
        hist._pos = {int(i): int(c) for i, c in payload.get("pos", [])}
        hist._neg = {int(i): int(c) for i, c in payload.get("neg", [])}
        return hist


class Counter:
    """Monotonic counter (int increments)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Process-wide registry keyed by (metric name, sorted label set).

    Registries themselves merge (counters add, histograms fold, gauges
    last-write-wins), so a broker can fold node-level registries the
    same way it folds sketch partials.
    """

    def __init__(self) -> None:
        self._metrics: Dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, labels: Mapping[str, object],
             factory: Callable[[], object]) -> object:
        key = _key(name, labels)
        # Double-checked fast path: dict reads are atomic under the GIL
        # and metrics are never removed, so a hit needs no lock.
        metric = self._metrics.get(key)  # repro: noqa[LOCK001]
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory()
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        metric = self._get(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        metric = self._get(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def histogram(self, name: str, subbuckets: int = DEFAULT_SUBBUCKETS,
                  **labels: object) -> LogHistogram:
        metric = self._get(name, labels, lambda: LogHistogram(subbuckets))
        if not isinstance(metric, LogHistogram):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def items(self) -> List[Tuple[str, Dict[str, str], object]]:
        """Sorted (name, labels, metric) triples — a stable snapshot."""
        with self._lock:
            snap = sorted(self._metrics.items())
        return [(name, dict(labels), metric) for (name, labels), metric in snap]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, labels, metric in other.items():
            if isinstance(metric, Counter):
                self.counter(name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name, **labels).set(metric.value)
            elif isinstance(metric, LogHistogram):
                self.histogram(name, subbuckets=metric.subbuckets,
                               **labels).merge(metric)
        return self

    def to_dict(self) -> dict:
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [],
                                      "histograms": []}
        for name, labels, metric in self.items():
            entry: dict = {"name": name, "labels": labels}
            if isinstance(metric, Counter):
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                out["gauges"].append(entry)
            elif isinstance(metric, LogHistogram):
                entry.update(metric.to_dict())
                out["histograms"].append(entry)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        reg = cls()
        for entry in payload.get("counters", []):
            reg.counter(entry["name"], **entry.get("labels", {})).inc(int(entry["value"]))
        for entry in payload.get("gauges", []):
            reg.gauge(entry["name"], **entry.get("labels", {})).set(float(entry["value"]))
        for entry in payload.get("histograms", []):
            hist = LogHistogram.from_dict(entry)
            reg.histogram(entry["name"], subbuckets=hist.subbuckets,
                          **entry.get("labels", {})).merge(hist)
        return reg

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
