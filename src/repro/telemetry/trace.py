"""Hierarchical tracing: spans, context propagation, ring-buffered export.

Spans carry ``trace_id``/``span_id``/``parent_id``, a monotonic start
plus duration, and structured attributes.  The active span is tracked in
a :class:`contextvars.ContextVar`, so nesting works transparently on one
thread.  Thread pools do NOT inherit context vars automatically — code
fanning out across a pool captures ``tracer.current_span()`` before the
fan-out and passes it as the explicit ``parent`` of per-worker spans
(see ``ClusterBroker._scatter``).

Spans can also be created *detached*: they never touch the context var
and their payload is returned to the caller instead of recorded, so a
data node can serialize its per-shard spans into the reply partials and
the broker can :meth:`Tracer.adopt` them into the local ring, keeping a
single connected trace tree across the process boundary.

Completed spans land in a bounded ring buffer (newest win) and can be
exported as JSON-lines.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

DEFAULT_RING_CAPACITY = 8192


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span."""

    trace_id: str
    span_id: str


ParentLike = Union[None, SpanContext, "Span"]


def _parent_context(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None or isinstance(parent, SpanContext):
        return parent
    return parent.context


class Span:
    """One timed operation.  Use as a context manager to activate it."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "events", "status", "start_unix",
                 "start_monotonic", "duration_seconds", "detached",
                 "payload", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str], attributes: Dict[str, Any],
                 detached: bool = False) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self.attributes = attributes
        self.events: List[dict] = []
        self.status = "ok"
        self.start_unix = time.time()
        self.start_monotonic = time.perf_counter()
        self.duration_seconds: Optional[float] = None
        self.detached = detached
        self.payload: Optional[dict] = None
        self._token: Optional[contextvars.Token] = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        event = {"name": name,
                 "offset_seconds": time.perf_counter() - self.start_monotonic}
        if attributes:
            event.update(attributes)
        self.events.append(event)

    def end(self, duration_seconds: Optional[float] = None) -> dict:
        payload = self.payload
        if payload is None:
            self.duration_seconds = (duration_seconds
                                     if duration_seconds is not None
                                     else time.perf_counter() - self.start_monotonic)
            payload = self.to_dict()
            self.payload = payload
            if not self.detached:
                self.tracer._record(payload)
        return payload

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "start_monotonic": self.start_monotonic,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    def __enter__(self) -> "Span":
        if not self.detached:
            self._token = self.tracer._current.set(self)
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            self.tracer._current.reset(self._token)
            self._token = None
        self.end()
        return False


class Tracer:
    """Creates spans and collects finished ones in a bounded ring."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar[Optional[Span]] = \
            contextvars.ContextVar("repro_current_span", default=None)
        self.spans_recorded = 0
        self.spans_dropped = 0

    # -- creation ----------------------------------------------------

    def current_span(self) -> Optional[Span]:
        return self._current.get()

    def current_context(self) -> Optional[SpanContext]:
        span = self._current.get()
        return span.context if span is not None else None

    def span(self, name: str, parent: Union[str, ParentLike] = "current",
             detached: bool = False, **attributes: Any) -> Span:
        """Create a span.

        ``parent="current"`` (default) parents to the active span of this
        thread/context; pass an explicit Span/SpanContext when crossing a
        thread pool, or ``None`` to force a new root trace.
        """
        ctx = (self.current_context() if isinstance(parent, str)
               else _parent_context(parent))
        trace_id = ctx.trace_id if ctx is not None else _new_id(16)
        parent_id = ctx.span_id if ctx is not None else None
        return Span(self, name, trace_id, parent_id, attributes,
                    detached=detached)

    def record(self, name: str, duration_seconds: float,
               parent: Union[str, ParentLike] = "current",
               start_monotonic: Optional[float] = None,
               **attributes: Any) -> dict:
        """Record an already-measured span with an explicit duration.

        Used for phase spans whose durations must equal the values
        reported in :class:`~repro.api.spec.QueryTimings` exactly.
        """
        span = self.span(name, parent=parent, detached=True, **attributes)
        if start_monotonic is not None:
            span.start_unix -= span.start_monotonic - start_monotonic
            span.start_monotonic = start_monotonic
        payload = span.end(duration_seconds=duration_seconds)
        self._record(payload)
        return payload

    def adopt(self, payload: Mapping) -> None:
        """Record a span payload produced elsewhere (e.g. shipped inside
        a node's reply partial) into the local ring."""
        self._record(dict(payload))

    # -- collection --------------------------------------------------

    def _record(self, payload: dict) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.spans_dropped += 1
            self._ring.append(payload)
            self.spans_recorded += 1

    def spans(self) -> List[dict]:
        with self._lock:
            return list(self._ring)

    def trace(self, trace_id: str) -> List[dict]:
        return [s for s in self.spans() if s.get("trace_id") == trace_id]

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self.spans_recorded = 0
            self.spans_dropped = 0

    def export_jsonl(self, path: str) -> int:
        """Write every buffered span as one JSON object per line."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)


def build_trace_tree(spans: List[Mapping]) -> List[dict]:
    """Nest span payloads into parent->children trees (roots returned).

    Spans whose parent is absent from the set are treated as roots, so a
    truncated ring still renders.  Children sort by start time.
    """
    by_id: Dict[str, dict] = {}
    for span in spans:
        node = dict(span)
        node["children"] = []
        by_id[node["span_id"]] = node
    roots: List[dict] = []
    for node in by_id.values():
        parent = by_id.get(node.get("parent_id"))
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    def _sort(nodes: List[dict]) -> None:
        nodes.sort(key=lambda n: (n.get("start_unix") or 0, n["span_id"]))
        for n in nodes:
            _sort(n["children"])
    _sort(roots)
    return roots


def render_trace_tree(spans: List[Mapping]) -> List[str]:
    """ASCII rendering of a span tree, one line per span."""
    lines: List[str] = []

    def _walk(node: dict, depth: int) -> None:
        dur = node.get("duration_seconds")
        dur_ms = f"{dur * 1e3:.3f}ms" if dur is not None else "?"
        attrs = node.get("attributes") or {}
        attr_str = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        marker = "" if node.get("status", "ok") == "ok" else " [ERROR]"
        events = node.get("events") or []
        event_str = "".join(f" !{e['name']}" for e in events)
        lines.append("  " * depth
                     + f"{node['name']} {dur_ms}{marker}{event_str}"
                     + (f" ({attr_str})" if attr_str else ""))
        for child in node.get("children", []):
            _walk(child, depth + 1)

    for root in build_trace_tree(spans):
        _walk(root, 0)
    return lines
