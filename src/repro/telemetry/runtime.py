"""The process-wide telemetry switchboard.

Instrumentation sites throughout the codebase guard on the module-level
singleton ``TELEMETRY.enabled`` — a single attribute read when disabled,
which is what keeps the disabled-mode overhead near zero (gated ≤3% by
``benchmarks/bench_telemetry.py``).

Typical use::

    from repro.telemetry import TELEMETRY

    TELEMETRY.enable(slow_query_threshold_seconds=0.25)
    ...run queries/ingest...
    print(render_prometheus(TELEMETRY.registry))
    TELEMETRY.tracer.export_jsonl("spans.jsonl")
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import MetricsRegistry
from .slowlog import SlowQueryLog
from .trace import DEFAULT_RING_CAPACITY, Tracer


class TelemetryRuntime:
    """Holds the tracer, metrics registry, and slow-query log."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.slow_queries = SlowQueryLog()

    def enable(self, slow_query_threshold_seconds: Optional[float] = None,
               ring_capacity: int = DEFAULT_RING_CAPACITY,
               reset: bool = False) -> "TelemetryRuntime":
        if reset:
            self.tracer = Tracer(capacity=ring_capacity)
            self.registry = MetricsRegistry()
            self.slow_queries = SlowQueryLog(
                threshold_seconds=slow_query_threshold_seconds)
        else:
            if slow_query_threshold_seconds is not None:
                self.slow_queries.threshold_seconds = slow_query_threshold_seconds
        self.enabled = True
        return self

    def disable(self) -> "TelemetryRuntime":
        self.enabled = False
        return self

    def reset(self) -> "TelemetryRuntime":
        """Drop collected state, keeping the enabled flag as-is."""
        self.tracer.reset()
        self.registry.reset()
        self.slow_queries.reset()
        return self

    def snapshot(self) -> dict:
        """Compact JSON-safe summary for embedding in harness records."""
        return {
            "enabled": self.enabled,
            "metrics": self.registry.to_dict(),
            "spans_recorded": self.tracer.spans_recorded,
            "spans_dropped": self.tracer.spans_dropped,
            "slow_queries_captured": self.slow_queries.captured,
        }


TELEMETRY = TelemetryRuntime()


def enable(**kwargs: Any) -> TelemetryRuntime:
    return TELEMETRY.enable(**kwargs)


def disable() -> TelemetryRuntime:
    return TELEMETRY.disable()


def reset() -> TelemetryRuntime:
    return TELEMETRY.reset()


def snapshot() -> dict:
    return TELEMETRY.snapshot()
