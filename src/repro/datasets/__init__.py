"""Evaluation datasets: synthetic stand-ins for the paper's Table 1 data."""

from .registry import EVALUATION_DATASETS, available, load, spec
from .synthetic import (
    DatasetSpec, SPECS, summary_statistics,
    gamma_skew, gaussian_with_outliers, uniform_discrete,
)
from .production import (ProductionCell, generate_cells, all_values,
                         production_columns)

__all__ = [
    "EVALUATION_DATASETS", "available", "load", "spec",
    "DatasetSpec", "SPECS", "summary_statistics",
    "gamma_skew", "gaussian_with_outliers", "uniform_discrete",
    "ProductionCell", "generate_cells", "all_values", "production_columns",
]
