"""Production-workload substitute (Appendix D.4).

The paper's production benchmark uses 165M rows of Microsoft application
telemetry for an integer performance metric, grouped by four columns
(version, network type, location, time) into ~400k *variable-sized* cells —
minimum 5 rows, maximum 722k, mean ~2380 — with a long-tailed integer value
distribution (App. D.4, Figure 21).

This module synthesizes that workload: cell sizes follow a heavy-tailed
lognormal matching the published min/mean/max spread, and each cell draws
integer latency-like values from a shared long-tailed distribution whose
location varies by cell (so cells are heterogeneous, which is what makes
GK grow when merging them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProductionCell:
    """One pre-aggregation group of the telemetry workload."""

    key: tuple[int, int, int, int]
    values: np.ndarray


def cell_sizes(num_cells: int, rng: np.random.Generator,
               minimum: int = 5, mean_target: float = 2380.0) -> np.ndarray:
    """Heavy-tailed cell sizes: lognormal with min clamp, mean ~ target."""
    # sigma chosen to give a max/mean ratio in the hundreds at 400k cells.
    sigma = 2.0
    mu = np.log(mean_target) - sigma ** 2 / 2.0
    sizes = np.maximum(rng.lognormal(mu, sigma, num_cells), minimum)
    return sizes.astype(int)


def generate_cells(num_cells: int = 4000, seed: int = 0,
                   mean_cell_size: float = 400.0) -> list[ProductionCell]:
    """Synthesize the variable-cell-size telemetry workload.

    ``mean_cell_size`` is scaled down from the paper's 2380 by default so
    the harness runs quickly; pass a larger value to approach the original.
    Values are positive integers spanning ~5 decades (Figure 21 left).
    """
    rng = np.random.default_rng(seed)
    sizes = cell_sizes(num_cells, rng, mean_target=mean_cell_size)
    # Dimension coordinates: version x network x location x time-bucket.
    versions = rng.integers(0, 8, num_cells)
    networks = rng.integers(0, 4, num_cells)
    locations = rng.integers(0, 50, num_cells)
    times = rng.integers(0, 250, num_cells)
    cells = []
    for i in range(num_cells):
        # Per-cell latency scale varies by an order of magnitude so the
        # workload is heterogeneous across cells.
        scale = np.exp(rng.normal(4.0, 0.8))
        values = np.ceil(rng.lognormal(np.log(scale), 1.1, sizes[i]))
        values = np.clip(values, 1.0, 10 ** 5.5)
        cells.append(ProductionCell(
            key=(int(versions[i]), int(networks[i]), int(locations[i]), int(times[i])),
            values=values))
    return cells


def all_values(cells: list[ProductionCell]) -> np.ndarray:
    """Concatenate every cell's rows (ground truth for accuracy checks)."""
    return np.concatenate([cell.values for cell in cells])


def production_columns(num_cells: int, total_rows: int, seed: int = 0
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the telemetry workload into shuffled ingest columns.

    Returns ``(cell_ids, values)`` of exactly ``total_rows`` rows: cell
    ``i`` is the i-th :class:`ProductionCell` (heavy-tailed sizes,
    heterogeneous long-tailed values), rows are shuffled into a single
    arrival stream, and the stream is tiled when the generated workload
    is shorter than requested.  This is the workload harness's
    production-shaped row source.
    """
    mean_size = max(total_rows / num_cells, 8.0)
    cells = generate_cells(num_cells=num_cells, seed=seed,
                           mean_cell_size=mean_size)
    cell_ids = np.concatenate(
        [np.full(cell.values.size, index, dtype=np.int64)
         for index, cell in enumerate(cells)])
    values = all_values(cells)
    order = np.random.default_rng(seed + 1).permutation(values.size)
    cell_ids, values = cell_ids[order], values[order]
    if values.size < total_rows:
        reps = -(-total_rows // values.size)
        cell_ids = np.tile(cell_ids, reps)
        values = np.tile(values, reps)
    return cell_ids[:total_rows], values[:total_rows]
