"""Named access to the evaluation datasets.

``load(name, n, seed)`` returns the synthetic stand-in for any Table 1
dataset; ``available()`` lists them.  Generated arrays are memoized per
(name, n, seed) because benchmarks re-request the same data repeatedly.
"""

from __future__ import annotations

import functools
from typing import Callable

import numpy as np

from ..core.errors import DatasetError
from . import synthetic

_GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "milan": synthetic.milan,
    "hepmass": synthetic.hepmass,
    "occupancy": synthetic.occupancy,
    "retail": synthetic.retail,
    "power": synthetic.power,
    "exponential": synthetic.exponential,
}

#: Datasets used in the headline evaluation figures, in paper order.
EVALUATION_DATASETS = ("milan", "hepmass", "occupancy", "retail", "power", "exponential")


def available() -> tuple[str, ...]:
    """Names accepted by :func:`load`."""
    return tuple(_GENERATORS)


@functools.lru_cache(maxsize=32)
def _load_cached(name: str, n: int, seed: int) -> np.ndarray:
    data = _GENERATORS[name](n=n, seed=seed)
    data.setflags(write=False)
    return data


def load(name: str, n: int = 200_000, seed: int = 0) -> np.ndarray:
    """Generate (or fetch cached) dataset ``name`` with ``n`` rows.

    The returned array is read-only; copy before mutating.
    """
    if name not in _GENERATORS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}")
    if n < 1:
        raise DatasetError(f"n must be positive, got {n}")
    return _load_cached(name, int(n), int(seed))


def spec(name: str) -> synthetic.DatasetSpec:
    """Published Table 1 characteristics for ``name``."""
    if name not in synthetic.SPECS:
        raise DatasetError(f"no spec for dataset {name!r}")
    return synthetic.SPECS[name]
