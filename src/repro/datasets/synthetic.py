"""Synthetic datasets reproducing the paper's evaluation data (Table 1).

The paper evaluates on six real datasets (Telecom Italia milan, UCI
hepmass / occupancy / retail / power, and a synthetic exponential).  The
raw files are not redistributable, so each generator below synthesizes data
matching the published Table 1 characteristics — support, central moments,
skew, and qualitative shape (long-tailed, bimodal, discretized...) — which
is what drives quantile-estimation difficulty.  Generator-vs-paper summary
statistics are recorded by the Table 1 benchmark and in EXPERIMENTS.md.

Sizes are parameterized (the paper's milan has 81M rows; the default here
is laptop-scale) and every generator is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """Declared properties of a generated dataset (mirrors Table 1)."""

    name: str
    description: str
    paper_size: int
    paper_min: float
    paper_max: float
    paper_mean: float
    paper_stddev: float
    paper_skew: float


SPECS: dict[str, DatasetSpec] = {
    "milan": DatasetSpec(
        "milan", "Telecom Italia internet usage, Nov 2013: heavy-tailed",
        81_000_000, 2.3e-6, 7936.0, 36.77, 103.5, 8.585),
    "hepmass": DatasetSpec(
        "hepmass", "UCI HEPMASS first feature: near-Gaussian mixture",
        10_500_000, -1.961, 4.378, 0.0163, 1.004, 0.2946),
    "occupancy": DatasetSpec(
        "occupancy", "UCI occupancy CO2 readings: bimodal, offset support",
        20_000, 412.8, 2077.0, 690.6, 311.2, 1.654),
    "retail": DatasetSpec(
        "retail", "UCI online retail integer quantities: extreme discrete skew",
        530_000, 1.0, 80995.0, 10.66, 156.8, 460.1),
    "power": DatasetSpec(
        "power", "UCI household global active power: multimodal, positive",
        2_000_000, 0.076, 11.12, 1.092, 1.057, 1.786),
    "exponential": DatasetSpec(
        "exponential", "synthetic Exp(lambda=1)",
        100_000_000, 1.2e-7, 16.30, 1.000, 0.999, 1.994),
}


def milan(n: int = 500_000, seed: int = 0) -> np.ndarray:
    """Heavy-tailed internet-usage-like values.

    A *trimodal-in-log-space* lognormal mixture (idle / normal / heavy
    usage sessions) plus a sliver of near-zero keep-alive readings.  This
    reproduces milan's signature: mean ~37, stddev ~104, skew ~9-11,
    support spanning nine decades, global q99 near 500 (the value the
    paper's Druid experiment reports) — and, critically, multimodal
    structure *within* the log scale, which is what makes standard moments
    insufficient and log moments necessary (Figure 9).
    """
    rng = np.random.default_rng(seed)
    component = rng.choice(3, n, p=[0.52, 0.40, 0.08])
    mu = np.asarray([0.8, 3.2, 5.2])[component]
    sigma = np.asarray([0.80, 0.65, 0.85])[component]
    body = np.exp(rng.normal(mu, sigma))
    # ~0.5% of rows come from near-zero keep-alive readings.
    tiny = np.exp(rng.uniform(np.log(2.3e-6), np.log(1e-2),
                              size=max(n // 200, 1)))
    data = np.concatenate([body, tiny])[:n]
    return np.clip(data, 2.3e-6, 7936.0)


def hepmass(n: int = 500_000, seed: int = 0) -> np.ndarray:
    """Signal/background mixture: two overlapping near-unit Gaussians."""
    rng = np.random.default_rng(seed)
    label = rng.random(n) < 0.5
    values = np.where(label,
                      rng.normal(-0.33, 0.85, n),
                      rng.normal(0.37, 1.06, n))
    return np.clip(values, -1.961, 4.378)


def occupancy(n: int = 20_000, seed: int = 0) -> np.ndarray:
    """Bimodal CO2-like readings on an offset support [413, 2077]."""
    rng = np.random.default_rng(seed)
    occupied = rng.random(n) < 0.23
    baseline = 440.0 + rng.gamma(2.0, 45.0, n)
    busy = 750.0 + rng.gamma(2.2, 260.0, n)
    values = np.where(occupied, busy, baseline)
    return np.clip(values, 412.8, 2077.0)


def retail(n: int = 500_000, seed: int = 0) -> np.ndarray:
    """Integer purchase quantities: Zipf-like with rare enormous orders.

    Discreteness at small integers plus skew ~460 is what breaks
    histogram summaries and stresses the max-entropy solver's
    discrete-data weakness (Sections 6.2.3 / Figure 8 discussion).
    """
    rng = np.random.default_rng(seed)
    base = np.ceil(rng.lognormal(1.1, 1.3, size=n))
    values = np.clip(base, 1, 3000)
    bulk = rng.random(n) < 2e-5
    values[bulk] = rng.integers(10_000, 80_995, size=int(bulk.sum())).astype(float)
    return values


def power(n: int = 500_000, seed: int = 0) -> np.ndarray:
    """Household active-power-like readings: standby mode plus usage modes."""
    rng = np.random.default_rng(seed)
    mode = rng.random(n)
    standby = 0.076 + rng.gamma(3.0, 0.09, n)
    cooking = 1.0 + rng.gamma(2.0, 0.3, n)
    heating = 2.6 + rng.gamma(2.0, 0.5, n)
    values = np.where(mode < 0.62, standby, np.where(mode < 0.89, cooking, heating))
    return np.clip(values, 0.076, 11.12)


def exponential(n: int = 500_000, seed: int = 0) -> np.ndarray:
    """Exp(1), the paper's synthetic dataset."""
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0, size=n)


def gamma_skew(n: int = 500_000, shape: float = 1.0, seed: int = 0) -> np.ndarray:
    """Gamma(ks, theta=1) for the skew sweep of Figure 18 (skew = 2/sqrt(ks))."""
    if shape <= 0:
        raise DatasetError(f"gamma shape must be positive, got {shape}")
    rng = np.random.default_rng(seed)
    return rng.gamma(shape, 1.0, size=n)


def gaussian_with_outliers(n: int = 1_000_000, outlier_magnitude: float = 10.0,
                           outlier_fraction: float = 0.01,
                           seed: int = 0) -> np.ndarray:
    """Standard Gaussian with a delta-fraction outlier cluster (Figure 19).

    Outliers are drawn from N(magnitude, 0.1) exactly as in Appendix D.2.
    """
    if not 0.0 <= outlier_fraction < 1.0:
        raise DatasetError(f"outlier_fraction must be in [0, 1), got {outlier_fraction}")
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, 1.0, size=n)
    n_out = int(round(n * outlier_fraction))
    if n_out:
        indices = rng.choice(n, size=n_out, replace=False)
        data[indices] = rng.normal(outlier_magnitude, 0.1, size=n_out)
    return data


def uniform_discrete(n: int = 100_000, cardinality: int = 100,
                     seed: int = 0) -> np.ndarray:
    """``cardinality`` uniformly spaced point masses on [-1, 1] (Figure 8)."""
    if cardinality < 1:
        raise DatasetError(f"cardinality must be >= 1, got {cardinality}")
    rng = np.random.default_rng(seed)
    if cardinality == 1:
        return np.zeros(n)
    support = np.linspace(-1.0, 1.0, cardinality)
    return support[rng.integers(0, cardinality, size=n)]


def summary_statistics(data: np.ndarray) -> dict[str, float]:
    """The Table 1 row for a dataset: size/min/max/mean/stddev/skew."""
    data = np.asarray(data, dtype=float)
    mean = float(data.mean())
    std = float(data.std())
    skew = float(np.mean(((data - mean) / std) ** 3)) if std > 0 else 0.0
    return {
        "size": float(data.size),
        "min": float(data.min()),
        "max": float(data.max()),
        "mean": mean,
        "stddev": std,
        "skew": skew,
    }
