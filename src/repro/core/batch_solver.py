"""Batched maximum-entropy estimation: one Newton loop for many sketches.

The paper's profiling (Section 5.2, Figure 5) puts the per-group solve at
the top of every high-cardinality aggregation's cost profile, and the
scalar :func:`repro.core.solver.solve` pays the whole numpy dispatch
overhead once per group.  This module runs the *same* damped Newton
iteration for N bases at once:

* problems are grouped by basis shape ``(k1, k2, domain, grid)`` and their
  basis matrices stacked into one ``(P, m, G)`` block;
* each iteration is one stacked matmul per contraction — gradient,
  Hessian, dual potential — plus one stacked ``np.linalg.solve`` for the
  Newton steps, with per-problem convergence, damping, and line-search
  masks (a problem that converges drops out of the stack; a problem whose
  line search stalls is handled exactly like the scalar solver's stall);
* every converged solution is re-verified on the fine grid, batched;
* problems the stacked loop cannot settle (overflow, stalls above the
  relaxed tolerance, verification failures) fall back to the scalar
  solver one by one, so the hard cases get exactly the canonical
  treatment (including the caller-selected moment backoff ladder).

Numerically, numpy executes stacked matmuls and stacked LAPACK solves
slice by slice with the same kernels the scalar path calls, so each
problem's trajectory is independent of which other problems share its
batch — the property the cross-backend bit-exactness suite leans on —
and matches the scalar trajectory to the last ulp on mainstream BLAS
builds.  The contract the rest of the stack relies on is tolerance-based:
batched quantile estimates within 1e-6 of the scalar path, and identical
cascade/top-N decisions.

:func:`fit_estimators` is the high-level entry point: it batches moment
selection (:func:`repro.core.selector.select_moments_batch`), the Newton
solves, the Chebyshev-antiderivative CDF construction, and the monotone
CDF tabulation, and returns per-sketch
:class:`~repro.core.quantile.QuantileEstimator` objects that behave
exactly like scalar-fit ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dct

import functools

from .chebyshev import (chebyshev_nodes, clenshaw_curtis_weights,
                        eval_chebyshev_series_stacked)
from .errors import ConvergenceError
from .quantile import QuantileEstimator
from .selector import MomentSelection, select_moments_batch
from .solver import (MaxEntBasis, MaxEntResult, SolverConfig,
                     _basis_matrices_stacked, _solve_newton_step,
                     build_bases_batch, solve)


@dataclass
class BatchSolveOutcome:
    """Per-problem results of one :func:`solve_batch` call.

    ``results[i]`` is the solved :class:`MaxEntResult` for ``bases[i]`` or
    ``None`` when the solve failed; ``errors[i]`` then holds the
    :class:`ConvergenceError` the scalar fallback raised.  ``stragglers``
    lists the indices that were re-run through the scalar solver;
    ``batched`` counts problems settled entirely by the stacked loop.
    """

    results: list
    errors: list
    stragglers: tuple
    batched: int


@dataclass(frozen=True)
class BatchEstimationReport:
    """How one :func:`fit_estimators` call split its work."""

    problems: int
    point_masses: int
    batched: int
    stragglers: int
    failures: int


# ----------------------------------------------------------------------
# Stacked evaluation helpers
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=8)
def _chebyshev_value_table(grid_size: int, orders: int) -> np.ndarray:
    """``T[k, j] = T_k(u_j)`` on the uniform tabulation grid, cached.

    The CDF tabulation evaluates each problem's antiderivative series on
    the same ``linspace(-1, 1, grid_size)`` grid; with the Chebyshev
    values precomputed once per grid, that evaluation collapses to one
    small matmul per problem instead of a length-L Clenshaw recurrence
    over the full grid.
    """
    u = np.clip(np.linspace(-1.0, 1.0, grid_size), -1.0, 1.0)
    table = np.empty((orders, grid_size))
    table[0] = 1.0
    if orders > 1:
        table[1] = u
    for order in range(2, orders):
        table[order] = 2.0 * u * table[order - 1] - table[order - 2]
    table.setflags(write=False)
    return table


def _row_dots(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row dot products via stacked matmul (bit-equal to ``np.dot``)."""
    return np.matmul(a[:, None, :], b[..., None])[..., 0, 0]


def _potential_rows(theta: np.ndarray, B: np.ndarray, w: np.ndarray,
                    d: np.ndarray) -> np.ndarray:
    """Row-wise dual potential, mirroring :func:`solver.dual_potential`."""
    with np.errstate(over="ignore"):
        f = np.exp(np.matmul(theta[:, None, :], B)[:, 0, :])
    integral = np.matmul(f[:, None, :], w[:, None])[:, 0, 0]
    return integral - _row_dots(theta, d)


# ----------------------------------------------------------------------
# Stacked Newton
# ----------------------------------------------------------------------

def solve_batch(bases, config: SolverConfig | None = None) -> BatchSolveOutcome:
    """Solve many max-entropy duals with one stacked Newton loop per shape.

    Problems are grouped by ``(k1, k2, domain, grid size)``; each group
    runs the masked stacked iteration of :func:`_solve_group` and is then
    fine-grid verified in one batched pass.  Problems the batch cannot
    settle are re-solved by the scalar :func:`repro.core.solver.solve`
    (the straggler fallback), whose outcome — result or
    :class:`ConvergenceError` — is recorded verbatim.
    """
    config = config or SolverConfig()
    bases = list(bases)
    results: list = [None] * len(bases)
    errors: list = [None] * len(bases)
    groups: dict[tuple, list[int]] = {}
    for index, basis in enumerate(bases):
        key = (basis.k1, basis.k2, basis.domain, basis.matrix.shape[1])
        groups.setdefault(key, []).append(index)
    stragglers: list[int] = []
    batched = 0
    for indices in groups.values():
        group = [bases[i] for i in indices]
        thetas, meta, failed = _solve_group(group, config)
        verified_bad = _verify_group(group, thetas, meta, config)
        for local, basis in enumerate(group):
            if local in failed or local in verified_bad:
                stragglers.append(indices[local])
                continue
            iterations, grad_norm = meta[local]
            results[indices[local]] = MaxEntResult(
                basis, thetas[local].copy(), iterations, grad_norm, True)
            batched += 1
    for index in stragglers:
        try:
            results[index] = solve(bases[index], config)
        except ConvergenceError as exc:
            errors[index] = exc
    return BatchSolveOutcome(results=results, errors=errors,
                             stragglers=tuple(stragglers), batched=batched)


def _solve_group(bases: list, config: SolverConfig
                 ) -> tuple[np.ndarray, dict, set]:
    """Masked stacked Newton over same-shape bases.

    Returns ``(thetas, meta, failed)`` where ``meta[local] = (iterations,
    grad_norm)`` for every problem that converged (by gradient tolerance
    or the scalar solver's relaxed stall/cap acceptance) and ``failed``
    holds the local indices that must go to the scalar fallback.  Each
    problem's update sequence reproduces the scalar solver's exactly
    (same candidate points, same Armijo tests) via per-problem masks.
    """
    count = len(bases)
    m = bases[0].size
    theta = np.zeros((count, m))
    theta[:, 0] = np.log(0.5)  # uniform density integrating to 1 on [-1, 1]
    w = np.asarray(bases[0].weights)
    meta: dict[int, tuple[int, float]] = {}
    failed: set[int] = set()

    # Compacted working state: row i of these arrays belongs to problem
    # ``active[i]``.  Finished problems are compacted out instead of
    # re-gathering the full stack every iteration.
    active = np.arange(count)
    Ba = np.stack([b.matrix for b in bases])
    da = np.stack([b.targets for b in bases])
    tha = theta.copy()
    lva = _potential_rows(tha, Ba, w, da)
    gna = np.full(count, np.inf)  # latest gradient norm per working row

    def retire(keep: np.ndarray) -> None:
        nonlocal active, Ba, da, tha, lva, gna
        theta[active] = tha
        active = active[keep]
        Ba, da, tha, lva, gna = (Ba[keep], da[keep], tha[keep], lva[keep],
                                 gna[keep])

    for iteration in range(1, config.max_iterations + 1):
        if active.size == 0:
            break
        with np.errstate(over="ignore"):
            f = np.exp(np.matmul(tha[:, None, :], Ba)[:, 0, :])
        finite = np.isfinite(f).all(axis=1)
        wf = w * f
        with np.errstate(invalid="ignore"):
            grad = np.matmul(Ba, wf[:, :, None])[:, :, 0] - da
            gnorm = np.abs(grad).max(axis=1)
        gna = np.where(finite, gnorm, gna)
        failed.update(int(i) for i in active[~finite])  # density overflow
        conv = finite & (gnorm < config.gradient_tol)
        for position in np.flatnonzero(conv):
            meta[int(active[position])] = (iteration - 1, float(gna[position]))
        working = finite & ~conv
        if not working.all():
            grad, wf = grad[working], wf[working]
            retire(working)
        if active.size == 0:
            break
        hessian = np.matmul(Ba * wf[:, None, :], np.swapaxes(Ba, 1, 2))
        try:
            step = np.linalg.solve(hessian, grad[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            # Some problem's Hessian is singular: give each problem the
            # scalar solver's progressive ridge treatment individually.
            step = np.stack([_solve_newton_step(hessian[i], grad[i],
                                                config.ridge)
                             for i in range(active.size)])
        slope = _row_dots(grad, step)
        # Backtracking line search (Armijo on the convex dual), masked:
        # each problem halves its own alpha until its own candidate is
        # accepted, probing exactly the points the scalar search would.
        alpha = np.ones(active.size)
        accepted = np.zeros(active.size, dtype=bool)
        for search in range(config.max_line_search_steps):
            if search == 0:
                pending = np.arange(active.size)
                candidate = tha - step
                cvalue = _potential_rows(candidate, Ba, w, da)
            else:
                pending = np.flatnonzero(~accepted)
                if pending.size == 0:
                    break
                candidate = (tha[pending]
                             - alpha[pending, None] * step[pending])
                cvalue = _potential_rows(candidate, Ba[pending], w,
                                         da[pending])
            ok = np.isfinite(cvalue) & (
                cvalue <= lva[pending] - 1e-4 * alpha[pending] * slope[pending])
            taken = pending[ok]
            tha[taken] = candidate[ok]
            lva[taken] = cvalue[ok]
            accepted[taken] = True
            alpha[pending[~ok]] *= 0.5
        stalled = ~accepted
        if stalled.any():
            for position in np.flatnonzero(stalled):
                local = int(active[position])
                if gna[position] <= config.relaxed_gradient_tol:
                    meta[local] = (iteration, float(gna[position]))
                else:
                    failed.add(local)  # line search failed to make progress
            retire(~stalled)
    # Iteration cap: accept under the relaxed tolerance, like the scalar
    # solver, else leave the problem to the straggler fallback.
    theta[active] = tha
    for position, local in enumerate(active):
        local = int(local)
        if gna[position] <= config.relaxed_gradient_tol:
            meta[local] = (config.max_iterations, float(gna[position]))
        else:
            failed.add(local)
    return theta, meta, failed


def _verify_group(bases: list, thetas: np.ndarray, meta: dict,
                  config: SolverConfig) -> set:
    """Batched fine-grid verification (see ``solver._verify_solution``).

    Returns the local indices whose converged solutions fail the
    twice-finer moment re-check — grid-aliased "solutions" on
    near-discrete data — which are then demoted to the scalar fallback
    so they surface the canonical :class:`ConvergenceError`.
    """
    converged = sorted(meta)
    if not converged:
        return set()
    fine_nodes = chebyshev_nodes(2 * config.grid_size)
    fine_weights = clenshaw_curtis_weights(2 * config.grid_size)
    group = [bases[local] for local in converged]
    matrices = _basis_matrices_stacked(group, fine_nodes)
    targets = np.stack([b.targets for b in group])
    theta_c = thetas[converged]
    with np.errstate(all="ignore"):
        f = np.exp(np.matmul(theta_c[:, None, :], matrices)[:, 0, :])
        achieved = np.matmul(matrices, (fine_weights * f)[:, :, None])[:, :, 0]
        deviation = np.abs(achieved - targets).max(axis=1)
    grad_norms = np.array([meta[local][1] for local in converged])
    tolerance = np.maximum(config.verification_tol, 100.0 * grad_norms)
    bad = ~np.isfinite(deviation) | (deviation > tolerance)
    rejected = set()
    for position in np.flatnonzero(bad):
        local = converged[position]
        rejected.add(local)
        del meta[local]
    return rejected


# ----------------------------------------------------------------------
# Batched estimator construction
# ----------------------------------------------------------------------

def fit_estimators(sketches, config: SolverConfig | None = None,
                   allow_backoff: bool = False
                   ) -> tuple[list, list, BatchEstimationReport]:
    """Fit a :class:`QuantileEstimator` per sketch with one batched solve.

    The batched counterpart of ``QuantileEstimator.fit`` called in a
    loop: selection, Newton, CDF construction, and tabulation all run
    stacked.  Returns ``(estimators, errors, report)`` aligned with the
    input; ``estimators[i]`` is ``None`` exactly when ``errors[i]`` holds
    the :class:`ConvergenceError` the scalar path would have raised.
    ``allow_backoff`` applies the scalar moment-backoff ladder to
    problems the batch could not settle (matching
    ``QuantileEstimator.fit(..., allow_backoff=True)``).
    """
    config = config or SolverConfig()
    sketches = list(sketches)
    estimators: list = [None] * len(sketches)
    errors: list = [None] * len(sketches)
    solvable: list[int] = []
    point_masses = 0
    for index, sketch in enumerate(sketches):
        sketch.require_nonempty()
        if not sketch.max > sketch.min:
            estimators[index] = QuantileEstimator._point_mass(sketch, config)
            point_masses += 1
        else:
            solvable.append(index)
    if not solvable:
        return estimators, errors, BatchEstimationReport(
            problems=len(sketches), point_masses=point_masses,
            batched=0, stragglers=0, failures=0)

    selections = select_moments_batch([sketches[i] for i in solvable], config)
    bases = build_bases_batch([sketches[i] for i in solvable],
                              [sel.k1 for sel in selections],
                              [sel.k2 for sel in selections], config)
    outcome = solve_batch(bases, config)

    stragglers = len(outcome.stragglers)
    failures = 0
    pending: list[tuple[int, MaxEntBasis, MaxEntResult, MomentSelection]] = []
    for position, index in enumerate(solvable):
        result = outcome.results[position]
        if result is not None:
            pending.append((index, bases[position], result,
                            selections[position]))
            continue
        # The scalar solve failed too; apply the caller-selected backoff
        # ladder (or record the canonical error).
        if allow_backoff:
            try:
                estimators[index] = QuantileEstimator.fit(
                    sketches[index], config=config, allow_backoff=True)
            except ConvergenceError as exc:
                errors[index] = exc
                failures += 1
        else:
            errors[index] = outcome.errors[position]
            failures += 1
    _attach_cdfs(pending, sketches, estimators, config)
    return estimators, errors, BatchEstimationReport(
        problems=len(sketches), point_masses=point_masses,
        batched=outcome.batched, stragglers=stragglers, failures=failures)


def _attach_cdfs(pending: list, sketches: list, estimators: list,
                 config: SolverConfig) -> None:
    """Build every solved problem's CDF table in stacked passes.

    Reproduces ``QuantileEstimator._build_cdf`` + ``_tabulate`` row-wise:
    density on the fine Lobatto grid, batched DCT interpolation, noise
    trimming, closed-form antiderivative, and the dense monotone CDF
    table — each an element-wise or slice-wise operation, so every row
    matches the scalar construction for the same theta.
    """
    by_shape: dict[tuple, list] = {}
    for entry in pending:
        basis = entry[1]
        by_shape.setdefault((basis.k1, basis.k2, basis.domain), []).append(entry)
    for entries in by_shape.values():
        group = [entry[1] for entry in entries]
        nodes = chebyshev_nodes(config.cdf_grid_size)
        matrices = _basis_matrices_stacked(group, nodes)
        theta = np.stack([entry[2].theta for entry in entries])
        density = np.exp(np.matmul(theta[:, None, :], matrices)[:, 0, :])
        coeffs = dct(density, type=1, axis=-1) / config.cdf_grid_size
        coeffs[:, 0] *= 0.5
        coeffs[:, -1] *= 0.5
        # Trim float dust below each row's relative noise floor (same rule
        # as the scalar build; rows with nothing significant keep full
        # length there too).
        full = coeffs.shape[1]
        above = np.abs(coeffs) > (np.abs(coeffs).max(axis=1) * 1e-14)[:, None]
        has_significant = above.any(axis=1)
        last = np.where(has_significant,
                        full - 1 - np.argmax(above[:, ::-1], axis=1), full - 1)
        trim_len = last + 1
        columns = np.arange(full)
        coeffs = np.where(columns[None, :] < trim_len[:, None], coeffs, 0.0)
        # Antiderivative of each trimmed series (chebyshev.antiderivative_
        # series vectorized over rows; entries past a row's own length are
        # zeroed so trailing-zero Clenshaw padding stays exact).
        padded = np.zeros((len(entries), full + 2))
        padded[:, :full] = coeffs
        anti = np.zeros((len(entries), full + 1))
        anti[:, 1] = padded[:, 0] - padded[:, 2] / 2.0
        orders = np.arange(2, full + 1)
        anti[:, 2:] = (padded[:, 1:full] - padded[:, 3:full + 2]) \
            / (2.0 * orders)
        anti_len = trim_len + 1
        anti_columns = np.arange(full + 1)
        anti = np.where(anti_columns[None, :] < anti_len[:, None], anti, 0.0)
        lo = eval_chebyshev_series_stacked(anti, np.asarray(-1.0))
        hi = eval_chebyshev_series_stacked(anti, np.asarray(1.0))
        scale = hi - lo
        degenerate = ~(hi > lo)
        by_grid: dict[tuple[int, int], list[int]] = {}
        for row in range(len(entries)):
            if degenerate[row]:
                # "solved density integrates to zero": re-run the scalar
                # fit so the canonical EstimationError (or a backoff
                # recovery) surfaces exactly as it would have.
                index = entries[row][0]
                estimators[index] = QuantileEstimator.fit(
                    sketches[index], config=config)
                continue
            # Rows are bucketed by their own padded series length (a
            # multiple of 64), never by their batch-mates', so a row's
            # tabulation is identical whatever batch it rides in.
            bucket = min(-(-int(anti_len[row]) // 64) * 64, anti.shape[1])
            by_grid.setdefault(
                (max(4 * int(anti_len[row]), 2049), bucket), []).append(row)
        for (grid_size, bucket), rows in by_grid.items():
            grid = np.linspace(-1.0, 1.0, grid_size)
            # One small matmul per problem against the cached Chebyshev
            # value table (per-slice, so each row is independent of its
            # batch-mates); agrees with the scalar Clenshaw evaluation to
            # ~1e-13 relative, far inside the 1e-6 estimate contract.
            table = _chebyshev_value_table(grid_size, anti.shape[1])[:bucket]
            raw = np.matmul(anti[rows][:, None, :bucket], table)[:, 0, :]
            values = np.clip((raw - lo[rows, None]) / scale[rows, None],
                             0.0, 1.0)
            values = np.maximum.accumulate(values, axis=1)
            for position, row in enumerate(rows):
                index, basis, result, selection = entries[row]
                estimators[index] = QuantileEstimator(
                    sketch=sketches[index], basis=basis, result=result,
                    selection=selection,
                    _cdf_coeffs=anti[row, :int(anti_len[row])].copy(),
                    _cdf_offset=float(lo[row]), _cdf_scale=float(scale[row]),
                    _grid_u=grid, _grid_cdf=values[position].copy())


def estimate_quantiles_batch(sketches, qs, config: SolverConfig | None = None,
                             allow_backoff: bool = True) -> np.ndarray:
    """Quantile estimates for many sketches, ``(N, len(qs))``, batched.

    Convenience wrapper over :func:`fit_estimators` with the production
    degradation of ``MomentsSummary``: problems that stay non-convergent
    even after backoff fall back to the two-point-mass model of
    :func:`repro.core.quantile.safe_estimate_quantiles`.
    """
    from .quantile import safe_estimate_quantiles

    qs = np.atleast_1d(np.asarray(qs, dtype=float))
    estimators, _, _ = fit_estimators(sketches, config,
                                      allow_backoff=allow_backoff)
    out = np.empty((len(estimators), qs.size))
    for row, (sketch, estimator) in enumerate(zip(sketches, estimators)):
        if estimator is None:
            out[row] = safe_estimate_quantiles(sketch, qs, config=config)
        else:
            out[row] = estimator.quantiles(qs)
    return out
