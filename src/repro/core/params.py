"""Canonical query-parameter naming shared by every engine surface.

Historically each layer spelled the quantile argument differently
(``phi`` in the paper-facing modules, ``q`` in ad-hoc scripts).  The
unified query API (:mod:`repro.api`) standardizes on ``q``; the legacy
``phi=`` keyword keeps working on every public entry point but emits a
:class:`DeprecationWarning` through :func:`normalize_q` so callers can
migrate incrementally.
"""

from __future__ import annotations

import warnings

from .errors import QueryError


def normalize_q(q: float | None = None, phi: float | None = None,
                default: float | None = None, stacklevel: int = 3) -> float:
    """Resolve the canonical quantile fraction from ``q``/legacy ``phi``.

    Exactly one of ``q`` and ``phi`` may be given; ``phi`` triggers a
    :class:`DeprecationWarning`.  When neither is given, ``default`` is
    used (an error if there is no default).
    """
    if phi is not None:
        if q is not None:
            raise QueryError("pass either q or the deprecated phi, not both")
        warnings.warn(
            "the 'phi' keyword is deprecated; use 'q' (see repro.api.QuerySpec)",
            DeprecationWarning, stacklevel=stacklevel)
        q = phi
    if q is None:
        if default is None:
            raise QueryError("a quantile fraction q is required")
        q = default
    q = float(q)
    if not 0.0 < q < 1.0:
        raise QueryError(f"quantile fraction must be in (0, 1), got {q}")
    return q
