"""Exception hierarchy for the moments-sketch library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at system boundaries (e.g. the Druid aggregator layer
converts any :class:`ReproError` into a query-level error response).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SketchError(ReproError):
    """Invalid sketch state or invalid operation on a sketch."""


class IncompatibleSketchError(SketchError):
    """Raised when merging/subtracting sketches of different orders."""


class EmptySketchError(SketchError):
    """Raised when an estimate is requested from a sketch with count == 0."""


class ConvergenceError(ReproError):
    """The maximum-entropy solver failed to converge.

    The paper observes this on very low cardinality datasets (fewer than
    about five distinct values, Figure 8); callers such as the cascade fall
    back to bound midpoints when this is raised.
    """

    def __init__(self, message: str, iterations: int = 0, grad_norm: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.grad_norm = grad_norm


class EstimationError(ReproError):
    """A quantile estimator could not produce an estimate."""


class BoundError(ReproError):
    """A moment-based bound routine could not produce a valid bound."""


class EncodingError(ReproError):
    """Invalid low-precision encoding parameters or corrupt payload."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid generator parameters."""


class QueryError(ReproError):
    """Malformed query against the cube / engine layers."""


class IngestError(QueryError):
    """Malformed or inconsistent write at an ingest boundary.

    Raised uniformly by every ingest entry point (cube, Druid engine,
    packed store sessions, window monitors, cluster routing) for
    mismatched column lengths, wrong dimension arity, missing
    timestamps, and invalid ingest specs.  Subclasses
    :class:`QueryError` so callers that already guard engine boundaries
    with ``except QueryError`` keep working.
    """


class BackpressureError(IngestError):
    """An ingest buffer exceeded its configured pending-row budget.

    Raised by :class:`~repro.ingest.IngestSession` when auto-flush is
    disabled and an append would push the buffered row count past
    ``max_pending_rows`` — the caller must flush (or drop) before
    appending more.
    """


class OptimizerError(QueryError):
    """The multi-query optimizer could not serve or materialize a scan.

    Raised by :mod:`repro.optimizer` when a roll-up cannot be pinned
    (e.g. its group summaries are not moments-backed and therefore have
    no packed representation).  Subclasses :class:`QueryError` so the
    advisor can skip such candidates with the same guard callers already
    use at engine boundaries.
    """


class ClusterError(ReproError):
    """Invalid cluster topology operation or unroutable shard."""


class StorageError(ReproError):
    """Invalid tiered-storage operation or corrupt on-disk state.

    Raised by :mod:`repro.storage` for malformed segment files (bad
    magic, checksum mismatch, truncated columns), unreplayable
    manifests, and tier-configuration errors.  Corruption is always an
    explicit error — the storage layer never silently serves a damaged
    segment.
    """


class TelemetryError(ReproError, ValueError):
    """Invalid telemetry configuration, observation, or partial payload.

    Raised by :mod:`repro.telemetry` for malformed histogram layouts,
    non-finite observations, corrupt wire partials, and metric dumps
    that carry no telemetry.  Subclasses :class:`ValueError` so callers
    that guarded the pre-taxonomy surface with ``except ValueError``
    keep working.
    """


class AnalysisError(ReproError):
    """Invalid static-analysis invocation or unreadable baseline.

    Raised by :mod:`repro.analysis` for unparseable target paths, a
    corrupt baseline document, or a malformed checker configuration.
    """


class HarnessError(ReproError):
    """Invalid workload-harness experiment spec or failed run contract.

    Raised by :mod:`repro.harness` for malformed
    :class:`~repro.harness.ExperimentSpec` documents and — when a run is
    executed with ``fail_on_violation`` — for exact-oracle ε-contract
    violations, so CI treats an accuracy regression exactly like a test
    failure.
    """
