"""Core moments-sketch package: the paper's primary contribution."""

from .sketch import MomentsSketch, merge_all, DEFAULT_ORDER
from .params import normalize_q
from .quantile import QuantileEstimator, estimate_quantile, estimate_quantiles, safe_estimate_quantiles
from .solver import SolverConfig
from .errors import (
    ReproError, SketchError, IncompatibleSketchError, EmptySketchError,
    ConvergenceError, EstimationError, BoundError, EncodingError,
    DatasetError, QueryError, IngestError, BackpressureError,
)

__all__ = [
    "MomentsSketch", "merge_all", "DEFAULT_ORDER", "normalize_q",
    "QuantileEstimator", "estimate_quantile", "estimate_quantiles",
    "safe_estimate_quantiles", "SolverConfig",
    "ReproError", "SketchError", "IncompatibleSketchError", "EmptySketchError",
    "ConvergenceError", "EstimationError", "BoundError", "EncodingError",
    "DatasetError", "QueryError", "IngestError", "BackpressureError",
]
