"""Core moments-sketch package: the paper's primary contribution."""

from .sketch import ColumnarMoments, MomentsSketch, merge_all, DEFAULT_ORDER
from .params import normalize_q
from .quantile import QuantileEstimator, estimate_quantile, estimate_quantiles, safe_estimate_quantiles
from .solver import SolverConfig
from .batch_solver import (BatchEstimationReport, BatchSolveOutcome,
                           estimate_quantiles_batch, fit_estimators,
                           solve_batch)
from .errors import (
    ReproError, SketchError, IncompatibleSketchError, EmptySketchError,
    ConvergenceError, EstimationError, BoundError, EncodingError,
    DatasetError, QueryError, IngestError, BackpressureError,
    OptimizerError, TelemetryError, AnalysisError,
)

__all__ = [
    "ColumnarMoments", "MomentsSketch", "merge_all", "DEFAULT_ORDER",
    "normalize_q",
    "QuantileEstimator", "estimate_quantile", "estimate_quantiles",
    "safe_estimate_quantiles", "SolverConfig",
    "BatchEstimationReport", "BatchSolveOutcome", "estimate_quantiles_batch",
    "fit_estimators", "solve_batch",
    "ReproError", "SketchError", "IncompatibleSketchError", "EmptySketchError",
    "ConvergenceError", "EstimationError", "BoundError", "EncodingError",
    "DatasetError", "QueryError", "IngestError", "BackpressureError",
    "OptimizerError", "TelemetryError", "AnalysisError",
]
