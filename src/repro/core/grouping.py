"""Shared vectorized row-grouping kernel for every ingest path.

Each roll-up ingest in this repository — data-cube cells, Druid
``(chunk, key)`` groups, packed-store key->row sessions, cluster shard
routing — groups a row batch by its dimension tuple with the same
stable lexsort + boundary-detection pass.  Keeping the kernel in one
place is what keeps those systems bit-for-bit interchangeable: the
group visit order and the per-group value order are identical
everywhere, so the same rows accumulate the same float adds in the
same association no matter which layer ingested them.

:func:`check_columns` is the matching uniform boundary validation:
every write path raises the same :class:`~repro.core.errors
.IngestError` for wrong dimension arity, misaligned column lengths, or
missing timestamps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import IngestError


def check_columns(ndims: int, dims: Sequence, values,
                  timestamps=None, *, needs_timestamps: bool = False,
                  context: str = "ingest") -> None:
    """Uniform ingest-boundary validation (arity + aligned lengths).

    Every write path — legacy entry points, write backends, and cluster
    shard sub-batches — funnels through this check so a malformed batch
    raises the same :class:`~repro.core.errors.IngestError` everywhere.
    A zero-row batch is valid as long as every column is empty too
    (idle polls are no-ops, matching the legacy cluster entry point).
    """
    n = np.shape(values)[0] if np.ndim(values) else 1
    if len(dims) != ndims:
        raise IngestError(
            f"{context}: expected {ndims} dimension columns, got {len(dims)}")
    for position, column in enumerate(dims):
        m = np.shape(column)[0] if np.ndim(column) else 1
        if m != n:
            raise IngestError(
                f"{context}: dimension column {position} has {m} rows, "
                f"values has {n}")
    if needs_timestamps and timestamps is None:
        raise IngestError(f"{context}: this backend rolls up by time and "
                          "needs a timestamps column")
    if timestamps is not None:
        m = np.shape(timestamps)[0] if np.ndim(timestamps) else 1
        if m != n:
            raise IngestError(
                f"{context}: timestamps has {m} rows, values has {n}")


def lexsort_groups(columns: Sequence, primary=None):
    """Stable-sort rows by their key tuple and locate group boundaries.

    Sort keys follow the engines' convention: ``np.lexsort`` over the
    reversed dimension columns (first dimension most significant), with
    ``primary`` (e.g. Druid's time chunk) as the overall most
    significant key when given.  Returns ``(order, sorted_columns,
    sorted_primary, starts, ends)``: groups are the
    ``[starts[i], ends[i])`` slices of the sorted arrays, and the sort
    stability makes each group's row order the input order — the
    invariant the bit-exactness gates rest on.
    """
    arrays = [np.asarray(col) for col in columns]
    keys = tuple(reversed(arrays))
    if primary is not None:
        primary = np.asarray(primary)
        keys = keys + (primary,)
    if not keys:
        raise IngestError("grouping needs at least one key column")
    n = keys[0].shape[0]
    order = np.lexsort(keys)
    sorted_columns = [col[order] for col in arrays]
    sorted_primary = primary[order] if primary is not None else None
    if n == 0:
        empty = np.empty(0, dtype=np.intp)
        return order, sorted_columns, sorted_primary, empty, empty
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    if sorted_primary is not None:
        boundary[1:] |= sorted_primary[1:] != sorted_primary[:-1]
    for col in sorted_columns:
        boundary[1:] |= col[1:] != col[:-1]
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], n)
    return order, sorted_columns, sorted_primary, starts, ends
