"""Chebyshev polynomial toolkit used by the maximum-entropy solver.

The solver (Section 4.3 of the paper) relies on Chebyshev polynomials of the
first kind for two purposes:

1. *Conditioning*: the Newton objective is expressed in the basis
   ``T_i(s(x))`` instead of raw powers ``x**i``, which drops the Hessian
   condition number from ~1e31 to ~10 in the paper's example.
2. *Fast integration*: smooth integrands are replaced by their Chebyshev
   interpolants, which integrate in closed form.  Interpolation coefficients
   come from a DCT (the "fast cosine transform" the paper cites as the solver
   bottleneck); integration against the interpolant is equivalent to
   Clenshaw-Curtis quadrature.

Everything here works on ``numpy`` arrays and is deliberately free of any
sketch-specific logic so it can be unit-tested against closed forms.
"""

from __future__ import annotations

import functools

import numpy as np
from scipy.fft import dct


def chebyshev_coefficient_table(max_order: int) -> np.ndarray:
    """Monomial coefficients of ``T_0 .. T_max_order``.

    Returns a ``(max_order + 1, max_order + 1)`` lower-triangular matrix ``C``
    with ``T_i(x) = sum_j C[i, j] * x**j``, built from the recurrence
    ``T_{n+1}(x) = 2 x T_n(x) - T_{n-1}(x)``.

    Coefficients grow like ``2**(i-1)`` which stays exactly representable in
    float64 for every order this library permits (``i <= 32``).
    """
    if max_order < 0:
        raise ValueError(f"max_order must be >= 0, got {max_order}")
    table = np.zeros((max_order + 1, max_order + 1))
    table[0, 0] = 1.0
    if max_order >= 1:
        table[1, 1] = 1.0
    for i in range(2, max_order + 1):
        # 2 * x * T_{i-1}: shift coefficients up one power.
        table[i, 1:] = 2.0 * table[i - 1, :-1]
        table[i] -= table[i - 2]
    return table


@functools.lru_cache(maxsize=64)
def _cached_coefficient_table(max_order: int) -> np.ndarray:
    table = chebyshev_coefficient_table(max_order)
    table.setflags(write=False)
    return table


def eval_chebyshev(order: int, u: np.ndarray) -> np.ndarray:
    """Evaluate ``T_order(u)`` via the numerically stable recurrence.

    For ``|u| <= 1`` this is equivalent to ``cos(order * arccos(u))``.  The
    recurrence is used instead of the trigonometric form so values slightly
    outside [-1, 1] (from floating-point slop at the support edges) do not
    produce NaNs.
    """
    u = np.asarray(u, dtype=float)
    if order == 0:
        return np.ones_like(u)
    if order == 1:
        return u.copy()
    t_prev = np.ones_like(u)
    t_cur = u.copy()
    for _ in range(order - 1):
        t_prev, t_cur = t_cur, 2.0 * u * t_cur - t_prev
    return t_cur


def eval_chebyshev_series(coeffs: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Evaluate ``sum_k coeffs[k] * T_k(u)`` using Clenshaw's algorithm."""
    coeffs = np.asarray(coeffs, dtype=float)
    u = np.asarray(u, dtype=float)
    if coeffs.size == 0:
        return np.zeros_like(u)
    b_next = np.zeros_like(u)
    b_cur = np.zeros_like(u)
    for c in coeffs[:0:-1]:
        b_cur, b_next = 2.0 * u * b_cur - b_next + c, b_cur
    return u * b_cur - b_next + coeffs[0]


@functools.lru_cache(maxsize=16)
def chebyshev_nodes(n: int) -> np.ndarray:
    """Chebyshev-Gauss-Lobatto nodes ``cos(pi * j / n)`` for ``j = 0..n``.

    These are the Clenshaw-Curtis quadrature points, returned in descending
    order (node 0 is +1).  ``n`` must be a positive even integer; even sizes
    give quadrature rules with the symmetric weight structure used below.

    Cached (read-only): every solve on a given grid size shares one node
    array, which the batched solver relies on to stack problems without
    re-deriving per-problem grids.
    """
    if n <= 0 or n % 2 != 0:
        raise ValueError(f"n must be positive and even, got {n}")
    nodes = np.cos(np.pi * np.arange(n + 1) / n)
    nodes.setflags(write=False)
    return nodes


def interpolation_coefficients(values: np.ndarray) -> np.ndarray:
    """Chebyshev coefficients of the interpolant through Lobatto node values.

    Given ``values[j] = f(cos(pi j / n))`` for ``j = 0..n``, returns ``c`` such
    that ``sum_k c[k] T_k(u)`` interpolates ``f`` at the nodes.  Uses a type-I
    DCT, which is the fast cosine transform of Press et al. referenced by the
    paper (Eq. 5.9.4 in Numerical Recipes).
    """
    values = np.asarray(values, dtype=float)
    n = values.size - 1
    if n <= 0:
        raise ValueError("need at least two node values")
    coeffs = dct(values, type=1) / n
    coeffs[0] *= 0.5
    coeffs[-1] *= 0.5
    return coeffs


def integrate_series(coeffs: np.ndarray) -> float:
    """Exact integral over [-1, 1] of a Chebyshev series.

    Uses ``int_{-1}^{1} T_k(u) du = 2 / (1 - k^2)`` for even ``k`` and 0 for
    odd ``k``.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    k = np.arange(0, coeffs.size, 2)
    weights = 2.0 / (1.0 - k.astype(float) ** 2)
    return float(np.dot(coeffs[::2], weights))


def antiderivative_series(coeffs: np.ndarray) -> np.ndarray:
    """Chebyshev coefficients of an antiderivative of a Chebyshev series.

    Standard relation: if ``f = sum a_k T_k`` then ``F' = f`` with
    ``F = sum b_k T_k`` where ``b_k = (a_{k-1} - a_{k+1}) / (2k)`` for
    ``k >= 2``, ``b_1 = a_0 - a_2 / 2``, and ``b_0`` a free constant (set so
    that the caller can normalize; we leave it at 0).
    """
    a = np.asarray(coeffs, dtype=float)
    n = a.size
    b = np.zeros(n + 1)
    padded = np.zeros(n + 2)
    padded[:n] = a
    if n >= 1:
        b[1] = padded[0] - padded[2] / 2.0
    for k in range(2, n + 1):
        b[k] = (padded[k - 1] - padded[k + 1]) / (2.0 * k)
    return b


@functools.lru_cache(maxsize=16)
def clenshaw_curtis_weights(n: int) -> np.ndarray:
    """Clenshaw-Curtis quadrature weights for the ``n + 1`` Lobatto nodes.

    ``sum_j w[j] f(nodes[j])`` equals the exact integral over [-1, 1] of the
    degree-``n`` Chebyshev interpolant of ``f``.  Computed via the DCT route:
    the weight vector is the image of the per-mode integrals under the
    (symmetric) transform that maps node values to coefficients.

    Cached (read-only), like :func:`chebyshev_nodes`.
    """
    if n <= 0 or n % 2 != 0:
        raise ValueError(f"n must be positive and even, got {n}")
    # Integral of each Chebyshev mode over [-1, 1].
    mode_integrals = np.zeros(n + 1)
    k = np.arange(0, n + 1, 2)
    mode_integrals[::2] = 2.0 / (1.0 - k.astype(float) ** 2)
    # interpolation_coefficients is linear in the node values; applying its
    # adjoint to the per-mode integrals yields the quadrature weights.  The
    # adjoint of the endpoint-scaled DCT-I works out to a plain DCT-I with
    # the two endpoint weights halved.
    weights = dct(mode_integrals, type=1) / n
    weights[0] *= 0.5
    weights[-1] *= 0.5
    weights.setflags(write=False)
    return weights


def eval_chebyshev_series_stacked(coeffs: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Row-wise Clenshaw: series ``p`` has coefficients ``coeffs[p]``.

    ``coeffs`` is ``(P, L)``, ``u`` is ``(G,)`` (shared across rows); the
    result is ``(P, G)`` with row ``p`` equal — bit for bit — to
    ``eval_chebyshev_series(coeffs[p], u)``.  Rows whose series are
    shorter than ``L`` must be padded with *trailing* zeros: Clenshaw
    iterates from the highest coefficient down, and a zero coefficient
    leaves the recurrence state untouched exactly, so zero padding
    changes nothing (the batched CDF tabulation depends on this).
    """
    coeffs = np.asarray(coeffs, dtype=float)
    u = np.asarray(u, dtype=float)
    if coeffs.ndim != 2:
        raise ValueError("coeffs must be a (P, L) matrix")
    if coeffs.shape[1] == 0:
        return np.zeros((coeffs.shape[0],) + u.shape)
    b_next = np.zeros((coeffs.shape[0],) + u.shape)
    b_cur = np.zeros_like(b_next)
    column = (slice(None),) + (None,) * u.ndim
    for j in range(coeffs.shape[1] - 1, 0, -1):
        b_cur, b_next = 2.0 * u * b_cur - b_next + coeffs[:, j][column], b_cur
    return u * b_cur - b_next + coeffs[:, 0][column]


def multiply_series(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two Chebyshev series, in the Chebyshev basis.

    Uses the linearization ``T_i T_j = (T_{i+j} + T_{|i-j|}) / 2``.  The
    result has length ``len(a) + len(b) - 1``.  This is the identity the
    paper's Section 4.3.1 exploits to keep Hessian assembly polynomial.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        return np.zeros(0)
    out = np.zeros(a.size + b.size - 1)
    for i, ai in enumerate(a):
        if ai == 0.0:
            continue
        for j, bj in enumerate(b):
            term = 0.5 * ai * bj
            out[i + j] += term
            out[abs(i - j)] += term
    return out


def monomial_to_chebyshev(power_coeffs: np.ndarray) -> np.ndarray:
    """Convert monomial coefficients ``sum c_j x**j`` to Chebyshev basis."""
    power_coeffs = np.asarray(power_coeffs, dtype=float)
    degree = power_coeffs.size - 1
    table = _cached_coefficient_table(max(degree, 0))
    # Solve C^T a = c where C is the (lower-triangular) coefficient table.
    return np.linalg.solve(table[: degree + 1, : degree + 1].T, power_coeffs)


def chebyshev_to_monomial(cheb_coeffs: np.ndarray) -> np.ndarray:
    """Convert Chebyshev-basis coefficients to monomial coefficients."""
    cheb_coeffs = np.asarray(cheb_coeffs, dtype=float)
    degree = cheb_coeffs.size - 1
    table = _cached_coefficient_table(max(degree, 0))
    return cheb_coeffs @ table[: degree + 1, : degree + 1]
