"""Conversions between sketch power sums and solver-ready moment vectors.

The sketch stores *unscaled power sums* ``sum(x**i)`` and ``sum(log(x)**i)``
(Section 4.1, "implementation detail").  The solver and the bound routines
need moments of data shifted and scaled onto [-1, 1] (Section 4.4), and
ultimately *Chebyshev moments* ``E[T_i(s(x))]`` (Section 4.3.1 / Appendix A).

This module implements those conversions:

``raw_moments``          power sums -> sample moments mu_i = (1/n) sum x**i
``shifted_scaled_moments``  mu_i of x -> mu_i of (x - c) / r  (binomial shift)
``chebyshev_moments``    mu_i of scaled data -> E[T_i(u)]

It also implements the Appendix-B floating point stability analysis:
``shift_error_bound`` bounds the absolute error of the shifted moments and
``max_stable_order`` reproduces Eq. (21)'s conservative usable-order cutoff
(k <= 13.35 / (0.78 + log10(|c| + 1))), used by the k1/k2 selector and the
Figure 15 benchmark.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np
from scipy.special import comb

from .chebyshev import _cached_coefficient_table

#: Relative error assumed for each stored power sum (Appendix B's eps_s);
#: float64 machine epsilon.
POWER_SUM_RELATIVE_ERROR = 2.0 ** -53


@dataclass(frozen=True)
class ScaledSupport:
    """Affine map taking a data interval [lo, hi] onto [-1, 1].

    ``scale(x) = (x - center) / half_width``.  ``center_offset`` is the
    quantity the paper calls ``c``: the midpoint of the *scaled* data when
    only the half-width scaling (not the shift) has been applied, i.e.
    ``center / half_width``.  It controls how much precision the binomial
    shift burns (Appendix B).
    """

    lo: float
    hi: float

    @property
    def center(self) -> float:
        return 0.5 * (self.hi + self.lo)

    @property
    def half_width(self) -> float:
        return 0.5 * (self.hi - self.lo)

    @property
    def degenerate(self) -> bool:
        """True when the support is a single point (constant data)."""
        return not (self.hi > self.lo)

    @property
    def center_offset(self) -> float:
        """Appendix B's ``c``: center measured in half-width units."""
        if self.degenerate:
            return 0.0
        return self.center / self.half_width

    def scale(self, x: np.ndarray) -> np.ndarray:
        """Map data values onto [-1, 1]."""
        x = np.asarray(x, dtype=float)
        if self.degenerate:
            return np.zeros_like(x)
        return (x - self.center) / self.half_width

    def unscale(self, u: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`scale`."""
        u = np.asarray(u, dtype=float)
        return self.center + self.half_width * u


def raw_moments(power_sums: np.ndarray, count: float) -> np.ndarray:
    """Sample moments ``mu_i = power_sums[i] / count`` with ``mu_0 = 1``.

    ``power_sums[i]`` must be ``sum(x**i)`` with ``power_sums[0] == count``
    permitted but not required (index 0 is overwritten with 1 exactly).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    mu = np.asarray(power_sums, dtype=float) / float(count)
    mu = mu.copy()
    mu[0] = 1.0
    return mu


@functools.lru_cache(maxsize=64)
def binomial_table(size: int) -> np.ndarray:
    """Lower-triangular Pascal matrix ``C[k, i] = comb(k, i)`` (read-only)."""
    k = np.arange(size)[:, None]
    i = np.arange(size)[None, :]
    table = comb(k, i) * (i <= k)
    table.setflags(write=False)
    return table


def shifted_moments(mu: np.ndarray, shift) -> np.ndarray:
    """``E[(x - shift)**k]`` for every k, from raw moments of ``x``.

    One vectorized binomial expansion (Appendix B):
    ``E[(x - shift)**k] = sum_i C(k, i) mu_i (-shift)**(k - i)``.  This sits
    on the hot path of the moment bounds, which the threshold cascade calls
    once per subgroup.

    Stacked form: ``mu`` may be ``(rows, size)`` with a matching
    ``(rows,)`` array of shifts, evaluating every row in one pass.  The
    stacked contraction is an explicit left fold over the moment index
    (elementwise operations only), so every row of a stacked call is
    bit-for-bit identical regardless of which other rows share the batch
    — the property the vectorized cascade bounds are gated on.  (The
    scalar bound entry points delegate to the batched kernels, so the
    1-D fast path below is only reached by the solver's per-problem
    target computation.)
    """
    mu = np.asarray(mu, dtype=float)
    size = mu.shape[-1]
    pascal, exponent_index = _shift_structure(size)
    if mu.ndim == 1:
        with np.errstate(all="ignore"):
            powers = (-float(shift)) ** np.arange(size)
            out = (pascal * powers[exponent_index]) @ mu
        out[0] = 1.0
        return out
    with np.errstate(all="ignore"):
        powers = (-np.asarray(shift, dtype=float))[..., None] ** np.arange(size)
        matrix = pascal * powers[..., exponent_index]
        out = matrix[..., :, 0] * mu[..., 0, None]
        for j in range(1, size):
            out += matrix[..., :, j] * mu[..., j, None]
    out[..., 0] = 1.0
    return out


@functools.lru_cache(maxsize=64)
def _shift_structure(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached Pascal matrix and exponent-index matrix for one size.

    ``pascal[k, i] * powers[k - i]`` realizes the binomial shift; the
    exponent index is clamped at zero where the Pascal entry is already
    zero, so no masking is needed at call time.
    """
    pascal = binomial_table(size)
    exponents = np.arange(size)[:, None] - np.arange(size)[None, :]
    index = np.clip(exponents, 0, size - 1)
    index.setflags(write=False)
    return pascal, index


def shifted_scaled_moments(mu: np.ndarray, support: ScaledSupport) -> np.ndarray:
    """Moments of ``u = (x - center) / half_width`` from moments of ``x``.

    Binomial shift (see :func:`shifted_moments`) followed by the power
    scaling.  This is the step that loses floating-point precision when the
    data is centered far from zero; see :func:`shift_error_bound`.  Extreme
    supports can overflow intermediates; the resulting non-finite moments
    are recognized downstream by the stability checks.
    """
    mu = np.asarray(mu, dtype=float)
    k_max = mu.size - 1
    if support.degenerate:
        out = np.zeros(k_max + 1)
        out[0] = 1.0
        return out
    with np.errstate(all="ignore"):
        out = shifted_moments(mu, support.center)
        out /= support.half_width ** np.arange(k_max + 1, dtype=float)
    out[0] = 1.0
    return out


def chebyshev_moments(scaled_mu: np.ndarray) -> np.ndarray:
    """Chebyshev moments ``E[T_i(u)]`` from monomial moments of ``u``.

    Linear map through the Chebyshev coefficient table:
    ``E[T_i(u)] = sum_j C[i, j] E[u**j]``.
    """
    scaled_mu = np.asarray(scaled_mu, dtype=float)
    order = scaled_mu.size - 1
    table = _cached_coefficient_table(max(order, 0))
    return table[: order + 1, : order + 1] @ scaled_mu


def power_sums_to_chebyshev_moments(
    power_sums: np.ndarray, count: float, support: ScaledSupport
) -> np.ndarray:
    """Full pipeline: unscaled power sums -> ``E[T_i(u)]`` on [-1, 1]."""
    return chebyshev_moments(shifted_scaled_moments(raw_moments(power_sums, count), support))


def shift_error_bound(order: int, center_offset: float,
                      relative_error: float = POWER_SUM_RELATIVE_ERROR) -> float:
    """Appendix-B bound on the absolute error of the k-th shifted moment.

    ``delta_k <= 2**k (|c| + 1)**k * eps_s`` where ``c`` is the center offset
    in half-width units and ``eps_s`` the relative error of the stored power
    sums.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    return (2.0 * (abs(center_offset) + 1.0)) ** order * relative_error


def max_stable_order(center_offset: float) -> int:
    """Eq. (21): conservative highest usable moment order for float64 sums.

    ``k <= 13.35 / (0.78 + log10(|c| + 1))``.  Data centered at zero gives
    k ~ 17; data at ``c = 2`` (range ``[xmin, 3 xmin]``) gives k ~ 10.  The
    library additionally hard-caps usable order at 16, matching the paper's
    empirical observation that k >= 16 is unstable even for centered data.
    """
    denom = 0.78 + np.log10(abs(center_offset) + 1.0)
    return int(min(np.floor(13.35 / denom), 16))


def stable_order_empirical(scaled_mu: np.ndarray,
                           tolerance: float = 1.0) -> int:
    """Highest order whose shifted moment is numerically meaningful.

    A scaled moment must satisfy ``|mu_k| <= 1`` (the data lives on [-1, 1]);
    precision loss shows up as violations of this invariant or as wild
    magnitudes.  Returns the largest prefix length whose moments all satisfy
    ``|mu_k| <= tolerance`` (tolerance slightly above 1 allows for harmless
    rounding).  Used by the selector as a data-driven backstop on top of
    :func:`max_stable_order`.
    """
    scaled_mu = np.asarray(scaled_mu, dtype=float)
    limit = 1.0 + 1e-9 if tolerance == 1.0 else tolerance
    for k in range(scaled_mu.size):
        if not np.isfinite(scaled_mu[k]) or abs(scaled_mu[k]) > limit:
            return k - 1
    return scaled_mu.size - 1


def uniform_chebyshev_moments(order: int) -> np.ndarray:
    """``E[T_i(U)]`` for ``U`` uniform on [-1, 1].

    Closed form: 0 for odd i, ``1 / (1 - i**2)`` for even i.  The k1/k2
    selection heuristic prefers observed Chebyshev moments close to these
    values (Section 4.3.1).
    """
    out = np.zeros(order + 1)
    i = np.arange(0, order + 1, 2)
    out[::2] = 1.0 / (1.0 - i.astype(float) ** 2)
    return out
