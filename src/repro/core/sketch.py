"""The moments sketch data structure (Section 4.1, Algorithm 1).

A :class:`MomentsSketch` of order ``k`` is an array of floating point values:
the minimum, the maximum, the count ``n``, the unscaled power sums
``sum(x**i)`` for ``i = 1..k`` and the log power sums ``sum(log(x)**i)`` for
``i = 1..k``.  It supports

* ``accumulate`` — pointwise update (vectorized over numpy arrays),
* ``merge`` — combine with another sketch (min/max comparison + vector add),
* ``subtract`` — remove a previously merged sketch (turnstile semantics,
  Section 7.2.2); min/max are *not* subtractable, so the caller supplies the
  surviving support (the sliding-window processor keeps per-pane extrema),
* ``to_bytes`` / ``from_bytes`` — flat little-endian float64 serialization.

The log sums are only meaningful while every accumulated value is positive.
The paper's policy (Section 4.1) is adopted verbatim: negative or zero values
poison the log moments and estimation falls back to standard moments only.
Quantile estimation itself lives in :mod:`repro.core.quantile`; this module
is pure state so it stays trivially cheap to merge.
"""

from __future__ import annotations

import struct
from typing import Iterable

import numpy as np

from .errors import EmptySketchError, IncompatibleSketchError, SketchError

#: Default number of moments; the paper's headline configuration (k = 10,
#: about 200 bytes storing both standard and log moments).
DEFAULT_ORDER = 10

#: Highest order the library accepts; beyond this float64 power sums are
#: useless for estimation (Section 4.3.2) and coefficient tables overflow.
MAX_ORDER = 32

_HEADER = struct.Struct("<4sBBxx")
_MAGIC = b"MSK1"


class MomentsSketch:
    """Mergeable quantile sketch tracking sample moments (Algorithm 1).

    Parameters
    ----------
    k:
        Order: the highest power tracked for both the standard and the log
        moments.  Higher ``k`` is more precise but costs space, merge time,
        and numerical stability (Section 4.3.2).
    track_log:
        Whether to maintain log power sums at all.  The paper's default is
        to track both sets of moments (Section 4.1); pass ``False`` when the
        data is known to be non-positive or discrete to halve the footprint.
    """

    __slots__ = ("k", "track_log", "count", "min", "max",
                 "power_sums", "log_sums", "log_valid")

    def __init__(self, k: int = DEFAULT_ORDER, track_log: bool = True):
        if not 1 <= k <= MAX_ORDER:
            raise SketchError(f"order k must be in [1, {MAX_ORDER}], got {k}")
        self.k = int(k)
        self.track_log = bool(track_log)
        self.count = 0.0
        self.min = np.inf
        self.max = -np.inf
        # Index i holds sum(x**i); index 0 duplicates the count so the whole
        # vector merges with one addition.
        self.power_sums = np.zeros(self.k + 1)
        self.log_sums = np.zeros(self.k + 1)
        # True while every accumulated value was positive; once False the log
        # sums are ignored by estimation (paper Section 4.1).
        self.log_valid = self.track_log

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_data(cls, data: Iterable[float], k: int = DEFAULT_ORDER,
                  track_log: bool = True) -> "MomentsSketch":
        """Build a sketch over ``data`` in one vectorized pass."""
        sketch = cls(k=k, track_log=track_log)
        sketch.accumulate(data)
        return sketch

    def copy(self) -> "MomentsSketch":
        """Deep copy (the arrays are owned by the new sketch)."""
        out = MomentsSketch(self.k, self.track_log)
        out.count = self.count
        out.min = self.min
        out.max = self.max
        out.power_sums = self.power_sums.copy()
        out.log_sums = self.log_sums.copy()
        out.log_valid = self.log_valid
        return out

    # ------------------------------------------------------------------
    # Updates (Algorithm 1)
    # ------------------------------------------------------------------

    def accumulate(self, values: Iterable[float]) -> None:
        """Add values pointwise (Algorithm 1's ``Accumulate``, vectorized).

        Accepts a scalar, any iterable, or a numpy array.  NaNs are rejected
        because they would silently poison every future estimate.
        """
        x = np.atleast_1d(np.asarray(values, dtype=float))
        if x.size == 0:
            return
        if np.isnan(x).any():
            raise SketchError("cannot accumulate NaN values")
        self.count += x.size
        self.min = min(self.min, float(x.min()))
        self.max = max(self.max, float(x.max()))
        # Vandermonde-style accumulation: powers[i] = sum(x**i).
        powers = np.vander(x, self.k + 1, increasing=True)
        self.power_sums += powers.sum(axis=0)
        if self.track_log:
            if (x <= 0).any():
                self.log_valid = False
            if self.log_valid:
                logs = np.log(x)
                self.log_sums += np.vander(logs, self.k + 1, increasing=True).sum(axis=0)

    def merge(self, other: "MomentsSketch") -> "MomentsSketch":
        """Merge ``other`` into this sketch in place (Algorithm 1's ``Merge``).

        Returns ``self`` so merges fold cleanly:
        ``functools.reduce(MomentsSketch.merge, sketches)``.
        """
        self._check_compatible(other)
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.power_sums += other.power_sums
        if self.track_log:
            if other.track_log and other.log_valid:
                if self.log_valid:
                    self.log_sums += other.log_sums
            else:
                self.log_valid = False
        return self

    def subtract(self, other: "MomentsSketch",
                 new_min: float | None = None,
                 new_max: float | None = None) -> "MomentsSketch":
        """Remove a previously merged sketch (turnstile semantics, §7.2.2).

        Power sums and counts subtract exactly; the min/max cannot be
        un-merged, so the caller passes the extrema of the surviving data
        (e.g. from per-pane records).  When omitted the old, conservative
        extrema are kept — estimates stay correct but may be looser.
        """
        self._check_compatible(other)
        if other.count > self.count:
            raise SketchError("cannot subtract a sketch with larger count")
        self.count -= other.count
        self.power_sums -= other.power_sums
        if self.track_log and self.log_valid and other.track_log and other.log_valid:
            self.log_sums -= other.log_sums
        elif self.track_log and other.count > 0 and not (other.track_log and other.log_valid):
            # Removing data whose log sums were unknown leaves ours unknown.
            self.log_valid = False
        if new_min is not None:
            self.min = float(new_min)
        if new_max is not None:
            self.max = float(new_max)
        if self.count == 0:
            self.min = np.inf
            self.max = -np.inf
            # Cancel any accumulated float dust so an emptied sketch behaves
            # exactly like a fresh one.
            self.power_sums[:] = 0.0
            self.log_sums[:] = 0.0
            self.log_valid = self.track_log
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def require_nonempty(self) -> None:
        if self.is_empty:
            raise EmptySketchError("sketch holds no data")

    @property
    def has_log_moments(self) -> bool:
        """True when log moments are usable (tracked, valid, positive data)."""
        return self.track_log and self.log_valid and self.min > 0

    def standard_moments(self) -> np.ndarray:
        """Sample moments ``mu_i = (1/n) sum x**i``, index 0 is 1.

        Always a freshly owned buffer: callers (the solver, the packed
        store) scale the returned vector in place, so it must never alias
        ``power_sums`` even if the internal representation changes.
        """
        self.require_nonempty()
        mu = np.empty_like(self.power_sums)
        np.divide(self.power_sums, self.count, out=mu)
        mu[0] = 1.0
        return mu

    def log_moments(self) -> np.ndarray:
        """Sample log moments ``nu_i = (1/n) sum log(x)**i``, index 0 is 1.

        Freshly owned, like :meth:`standard_moments`.
        """
        self.require_nonempty()
        if not self.has_log_moments:
            raise SketchError("log moments unavailable (non-positive data or disabled)")
        nu = np.empty_like(self.log_sums)
        np.divide(self.log_sums, self.count, out=nu)
        nu[0] = 1.0
        return nu

    def size_bytes(self) -> int:
        """Serialized footprint in bytes.

        8 bytes each for min/max/count plus the power sums (indices 1..k for
        each tracked family) plus the 8-byte header; the paper's k = 10 with
        both families is 8 * (3 + 20) + 8 = 192 bytes, matching the "fewer
        than 200 bytes" headline.
        """
        families = 2 if self.track_log else 1
        return _HEADER.size + 8 * (3 + families * self.k)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Flat little-endian encoding: header, min, max, count, sums."""
        flags = (1 if self.track_log else 0) | (2 if self.log_valid else 0)
        body = [np.float64(self.min), np.float64(self.max), np.float64(self.count)]
        payload = np.concatenate([
            np.asarray(body),
            self.power_sums[1:],
            self.log_sums[1:] if self.track_log else np.zeros(0),
        ])
        return _HEADER.pack(_MAGIC, self.k, flags) + payload.astype("<f8").tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MomentsSketch":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < _HEADER.size:
            raise SketchError("buffer too short for a moments sketch")
        magic, k, flags = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise SketchError(f"bad magic {magic!r}")
        track_log = bool(flags & 1)
        sketch = cls(k=k, track_log=track_log)
        families = 2 if track_log else 1
        expected = 3 + families * k
        payload = len(blob) - _HEADER.size
        if payload != 8 * expected:
            raise SketchError(
                f"payload holds {payload} bytes, expected {8 * expected}")
        values = np.frombuffer(blob, dtype="<f8", offset=_HEADER.size)
        sketch.min = float(values[0])
        sketch.max = float(values[1])
        sketch.count = float(values[2])
        sketch.power_sums[1:] = values[3:3 + k]
        sketch.power_sums[0] = sketch.count
        if track_log:
            sketch.log_sums[1:] = values[3 + k:3 + 2 * k]
            sketch.log_sums[0] = sketch.count
        sketch.log_valid = bool(flags & 2)
        return sketch

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_empty:
            return f"MomentsSketch(k={self.k}, empty)"
        return (f"MomentsSketch(k={self.k}, n={self.count:.0f}, "
                f"range=[{self.min:.4g}, {self.max:.4g}], "
                f"log={'on' if self.has_log_moments else 'off'})")

    def _check_compatible(self, other: "MomentsSketch") -> None:
        if not isinstance(other, MomentsSketch):
            raise IncompatibleSketchError(
                f"expected MomentsSketch, got {type(other).__name__}")
        if other.k != self.k:
            raise IncompatibleSketchError(
                f"order mismatch: {self.k} vs {other.k}")


class ColumnarMoments:
    """Structure-of-arrays view over N homogeneous sketches' statistics.

    The hand-off format between columnar storage and the batched
    estimation layer: the vectorized bound kernels
    (:func:`repro.core.bounds.markov_bound_batch`,
    :func:`repro.core.bounds.rtt_bound_batch`) and the cascade's
    :meth:`~repro.core.cascade.ThresholdCascade.evaluate_batch` all
    consume one of these instead of N sketch objects.
    :meth:`repro.store.PackedSketchStore.moment_columns` produces one
    zero-copy from packed rows; :meth:`from_sketches` gathers one from
    standalone sketches.

    ``power_sums``/``log_sums`` are ``(N, k + 1)`` with index 0
    duplicating the count, exactly like the row layout of
    :class:`~repro.store.PackedSketchStore`.
    """

    __slots__ = ("k", "track_log", "counts", "mins", "maxs",
                 "power_sums", "log_sums", "log_valid")

    def __init__(self, k: int, track_log: bool, counts: np.ndarray,
                 mins: np.ndarray, maxs: np.ndarray, power_sums: np.ndarray,
                 log_sums: np.ndarray, log_valid: np.ndarray):
        self.k = int(k)
        self.track_log = bool(track_log)
        self.counts = np.asarray(counts, dtype=float)
        self.mins = np.asarray(mins, dtype=float)
        self.maxs = np.asarray(maxs, dtype=float)
        self.power_sums = np.asarray(power_sums, dtype=float)
        self.log_sums = np.asarray(log_sums, dtype=float)
        self.log_valid = np.asarray(log_valid, dtype=bool)
        n = self.counts.shape[0]
        if not (self.mins.shape == self.maxs.shape == self.log_valid.shape
                == (n,) and self.power_sums.shape == self.log_sums.shape
                == (n, self.k + 1)):
            raise SketchError("misaligned columnar moment arrays")

    def __len__(self) -> int:
        return self.counts.shape[0]

    @classmethod
    def from_sketches(cls, sketches: "Iterable[MomentsSketch]"
                      ) -> "ColumnarMoments":
        """Gather standalone sketches into one columnar block.

        All sketches must share ``k``; log sums of non-log sketches are
        zeros with ``log_valid`` false, mirroring
        :meth:`repro.store.PackedSketchStore.set_row`.
        """
        sketches = list(sketches)
        if not sketches:
            raise EmptySketchError("need at least one sketch")
        k = sketches[0].k
        track_log = any(s.track_log for s in sketches)
        n = len(sketches)
        counts = np.empty(n)
        mins = np.empty(n)
        maxs = np.empty(n)
        power_sums = np.empty((n, k + 1))
        log_sums = np.zeros((n, k + 1))
        log_valid = np.zeros(n, dtype=bool)
        for i, sketch in enumerate(sketches):
            if sketch.k != k:
                raise IncompatibleSketchError(
                    f"order mismatch: {k} vs {sketch.k}")
            counts[i] = sketch.count
            mins[i] = sketch.min
            maxs[i] = sketch.max
            power_sums[i] = sketch.power_sums
            if sketch.track_log:
                log_sums[i] = sketch.log_sums
                log_valid[i] = sketch.log_valid
        return cls(k=k, track_log=track_log, counts=counts, mins=mins,
                   maxs=maxs, power_sums=power_sums, log_sums=log_sums,
                   log_valid=log_valid)

    def usable_log(self) -> np.ndarray:
        """Per-row ``has_log_moments``: tracked, valid, and positive data."""
        if not self.track_log:
            return np.zeros(len(self), dtype=bool)
        return self.log_valid & (self.mins > 0.0)

    def take(self, rows) -> "ColumnarMoments":
        """Gather a row subset into a new columnar block (copies)."""
        rows = np.asarray(rows, dtype=np.intp)
        return ColumnarMoments(
            k=self.k, track_log=self.track_log, counts=self.counts[rows],
            mins=self.mins[rows], maxs=self.maxs[rows],
            power_sums=self.power_sums[rows], log_sums=self.log_sums[rows],
            log_valid=self.log_valid[rows])

    def sketch_at(self, row: int) -> MomentsSketch:
        """Materialize one row as a standalone sketch (copies)."""
        out = MomentsSketch(self.k, self.track_log)
        out.count = float(self.counts[row])
        out.min = float(self.mins[row])
        out.max = float(self.maxs[row])
        out.power_sums = self.power_sums[row].copy()
        out.log_sums = self.log_sums[row].copy()
        out.log_valid = bool(self.log_valid[row])
        return out


def merge_all(sketches: Iterable[MomentsSketch]) -> MomentsSketch:
    """Merge an iterable of sketches into a fresh sketch.

    The inputs are not modified.  Raises :class:`EmptySketchError` on an
    empty iterable because there is no order to give the result.
    """
    iterator = iter(sketches)
    try:
        first = next(iterator)
    except StopIteration:
        raise EmptySketchError("merge_all needs at least one sketch") from None
    out = first.copy()
    for sketch in iterator:
        out.merge(sketch)
    return out
