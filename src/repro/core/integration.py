"""Closed-form Chebyshev-product integration (Appendix A.2).

The default solver evaluates its integrals with Clenshaw-Curtis quadrature
on a fixed grid (see :mod:`.solver`).  This module implements the paper's
integration scheme *literally*: approximate the density (and any
non-polynomial basis function) by a degree-``nc`` Chebyshev expansion via
the fast cosine transform, then evaluate every gradient/Hessian integral in
closed form through the product linearization

    T_i(u) T_j(u) = (T_{i+j}(u) + T_{|i-j|}(u)) / 2
    integral T_m(u) du over [-1, 1] = 2 / (1 - m^2)   (even m, else 0).

Concretely, with f ~ sum_k c_k T_k and a basis function expansion
b ~ sum_m b_m T_m, the integral of b * f is ``b^T M c`` where
``M[m, k] = (I(m + k) + I(|m - k|)) / 2`` and ``I`` is the per-mode
integral vector.  All basis-dependent quantities — the expansions, the
pairwise product series, and their images under ``M`` — are precomputed
once per solve, so each Newton iteration costs one cosine transform plus
dense dot products, matching the cost profile of Section 4.3.1.

The two integration engines agree to solver tolerance on smooth problems
(asserted by the test suite); the grid engine remains the default because
its numpy inner loop is marginally faster at the paper's basis sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chebyshev import (
    chebyshev_nodes,
    interpolation_coefficients,
    multiply_series,
)
from .errors import ConvergenceError
from .solver import MaxEntBasis, MaxEntResult, SolverConfig, _basis_matrix_on

#: Default expansion degree for the density and non-polynomial factors.
DEFAULT_EXPANSION_DEGREE = 256


def _mode_integrals(size: int) -> np.ndarray:
    """``I[m] = integral of T_m over [-1, 1]``: 2/(1-m^2) even, 0 odd."""
    integrals = np.zeros(size)
    m = np.arange(0, size, 2)
    integrals[::2] = 2.0 / (1.0 - m.astype(float) ** 2)
    return integrals


def _product_integral_matrix(rows: int, cols: int) -> np.ndarray:
    """``M[m, k] = (I(m + k) + I(|m - k|)) / 2`` for the linearization."""
    integrals = _mode_integrals(rows + cols)
    m = np.arange(rows)[:, None]
    k = np.arange(cols)[None, :]
    return 0.5 * (integrals[m + k] + integrals[np.abs(m - k)])


@dataclass
class ChebyshevProductIntegrator:
    """Precomputed closed-form integration state for one basis.

    ``basis_series[i]`` is the Chebyshev expansion of basis function i
    (exact unit vectors for polynomial functions, interpolated otherwise);
    ``pair_images[i, j]`` is the product series of functions i and j pushed
    through the product-integral matrix, so that a Hessian entry is a
    single dot product with the density coefficients.
    """

    basis: MaxEntBasis
    degree: int
    nodes: np.ndarray
    matrix_on_nodes: np.ndarray
    basis_images: np.ndarray      # (m, degree + 1)
    pair_images: np.ndarray       # (m, m, degree + 1)

    @classmethod
    def build(cls, basis: MaxEntBasis,
              degree: int = DEFAULT_EXPANSION_DEGREE) -> "ChebyshevProductIntegrator":
        nodes = chebyshev_nodes(degree)
        matrix = _basis_matrix_on(basis, nodes)
        m = basis.size

        series: list[np.ndarray] = []
        for i in range(m):
            if basis.domain == "linear" and i <= basis.k1:
                exact = np.zeros(i + 1)
                exact[i] = 1.0
                series.append(exact)
            elif basis.domain == "log" and (i == 0 or i > basis.k1):
                order = 0 if i == 0 else i - basis.k1
                exact = np.zeros(order + 1)
                exact[order] = 1.0
                series.append(exact)
            else:
                # Non-polynomial factor: expand via the cosine transform.
                series.append(interpolation_coefficients(matrix[i]))

        width = degree + 1
        # Product series reach mode 2*width - 1; sums with density modes
        # reach 3*width - 2.
        integrals = _mode_integrals(3 * width)
        product_matrix = _product_integral_matrix(width, width)

        basis_images = np.zeros((m, width))
        for i in range(m):
            padded = np.zeros(width)
            padded[: min(series[i].size, width)] = series[i][:width]
            basis_images[i] = product_matrix.T @ padded

        pair_images = np.zeros((m, m, width))
        for i in range(m):
            for j in range(i, m):
                product = multiply_series(series[i], series[j])[: 2 * width]
                # integral (b_i b_j f) = sum_m p[m] sum_k c[k] M'(m, k)
                # with M' built at the product's (longer) mode range.
                mode = np.arange(product.size)[:, None]
                k = np.arange(width)[None, :]
                image = product @ (
                    0.5 * (integrals[mode + k] + integrals[np.abs(mode - k)]))
                pair_images[i, j] = image
                pair_images[j, i] = image
        return cls(basis=basis, degree=degree, nodes=nodes,
                   matrix_on_nodes=matrix, basis_images=basis_images,
                   pair_images=pair_images)

    # ------------------------------------------------------------------

    def density_coefficients(self, theta: np.ndarray) -> np.ndarray:
        """Chebyshev expansion of exp(theta . basis) — one cosine transform."""
        with np.errstate(over="ignore"):
            values = np.exp(theta @ self.matrix_on_nodes)
        if not np.all(np.isfinite(values)):
            raise ConvergenceError("density overflow in product integrator")
        return interpolation_coefficients(values)

    def objective_parts(self, theta: np.ndarray
                        ) -> tuple[float, np.ndarray, np.ndarray]:
        """(integral of f, gradient integrals, Hessian integrals)."""
        c = self.density_coefficients(theta)
        total = float(self.basis_images[0] @ c)  # basis 0 is the constant
        gradient = self.basis_images @ c
        hessian = self.pair_images @ c
        return total, gradient, hessian


def solve_with_products(basis: MaxEntBasis, config: SolverConfig | None = None,
                        degree: int = DEFAULT_EXPANSION_DEGREE) -> MaxEntResult:
    """Newton's method using the closed-form integrals (Appendix A.2).

    Produces the same maximum-entropy solution as :func:`repro.core.solver.
    solve` up to integration truncation; exists to validate the default
    engine and to mirror the paper's described implementation exactly.
    """
    config = config or SolverConfig()
    integrator = ChebyshevProductIntegrator.build(basis, degree=degree)
    d = basis.targets
    theta = np.zeros(basis.size)
    theta[0] = np.log(0.5)

    def potential(th: np.ndarray) -> float:
        total = float(integrator.basis_images[0]
                      @ integrator.density_coefficients(th))
        return total - float(th @ d)

    lvalue = potential(theta)
    grad_norm = np.inf
    for iteration in range(1, config.max_iterations + 1):
        _, raw_grad, hessian = integrator.objective_parts(theta)
        grad = raw_grad - d
        grad_norm = float(np.max(np.abs(grad)))
        if grad_norm < config.gradient_tol:
            return MaxEntResult(basis, theta, iteration - 1, grad_norm, True)
        try:
            step = np.linalg.solve(hessian, grad)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hessian, grad, rcond=None)[0]
        alpha = 1.0
        slope = float(grad @ step)
        for _ in range(config.max_line_search_steps):
            candidate = theta - alpha * step
            try:
                cvalue = potential(candidate)
            except ConvergenceError:
                cvalue = np.inf
            if np.isfinite(cvalue) and cvalue <= lvalue - 1e-4 * alpha * slope:
                theta = candidate
                lvalue = cvalue
                break
            alpha *= 0.5
        else:
            if grad_norm <= config.relaxed_gradient_tol:
                return MaxEntResult(basis, theta, iteration, grad_norm, True)
            raise ConvergenceError("product-integrator line search stalled",
                                   iterations=iteration, grad_norm=grad_norm)
    raise ConvergenceError(
        f"product-integrator Newton did not converge (|grad|={grad_norm:.3g})",
        iterations=config.max_iterations, grad_norm=grad_norm)
