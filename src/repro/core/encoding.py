"""Low-precision moments-sketch storage (Appendix C).

When space is heavily constrained, a moments sketch can be compressed by
storing its float64 entries at reduced precision.  Appendix C's
proof-of-concept encoder quantizes the significand with *randomized
rounding* (so aggregation over many compressed sketches stays unbiased) and
compresses the exponent into a narrow offset field.

The layout per value is ``1 sign bit | exponent_bits | mantissa_bits``
relative to a shared base exponent stored once in the header.  ``bits per
value`` in Figure 17 is exactly ``1 + exponent_bits + mantissa_bits``.

Decoding returns native float64, so merge-time cost is unaffected — the
paper's observation that the representation has "negligible impact on merge
times".
"""

from __future__ import annotations

import struct

import numpy as np

from .errors import EncodingError
from .sketch import MAX_ORDER, MomentsSketch

_HEADER = struct.Struct("<4sBBBBhH")
_MAGIC = b"MSKC"

#: Exponent field width.  11 bits covers the full float64 exponent range;
#: smaller fields clamp to the representable window around the base.
DEFAULT_EXPONENT_BITS = 8


def _split(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sign, exponent, and mantissa-in-[0.5, 1) decomposition."""
    signs = np.signbit(values)
    mantissa, exponent = np.frexp(np.abs(values))
    return signs, exponent, mantissa


# ----------------------------------------------------------------------
# Shared bit-packing kernels
# ----------------------------------------------------------------------
#
# ``width``-bit words packed MSB-first into a contiguous bitstream.
# These are the vectorized kernels behind both the per-sketch
# :class:`LowPrecisionCodec` and the cold-tier column codec in
# :mod:`repro.storage.format` — one ``np.packbits``/``np.unpackbits``
# pass instead of a per-bit Python loop.

def pack_words(words: np.ndarray, width: int) -> bytes:
    """Pack uint64 words of ``width`` significant bits into a bitstream."""
    if not 1 <= width <= 64:
        raise EncodingError(f"word width must be in [1, 64], got {width}")
    words = np.ascontiguousarray(words, dtype=np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((words[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def unpack_words(payload: np.ndarray | bytes, count: int,
                 width: int) -> np.ndarray:
    """Inverse of :func:`pack_words`: ``count`` uint64 words."""
    if not 1 <= width <= 64:
        raise EncodingError(f"word width must be in [1, 64], got {width}")
    payload = np.frombuffer(bytes(payload), dtype=np.uint8) \
        if not isinstance(payload, np.ndarray) else payload
    bits = np.unpackbits(payload, count=None)
    if bits.size < width * count:
        raise EncodingError("truncated bit-packed payload")
    bits = bits[: width * count].reshape(count, width).astype(np.uint64)
    weights = np.left_shift(np.uint64(1),
                            np.arange(width - 1, -1, -1, dtype=np.uint64))
    return (bits * weights).sum(axis=1, dtype=np.uint64)


def split_fields(words: np.ndarray, mantissa_bits: int, exponent_bits: int
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose packed words into (signs, exponent offsets, significands)."""
    width = 1 + exponent_bits + mantissa_bits
    signs = words >> np.uint64(width - 1)
    offsets = (words >> np.uint64(mantissa_bits)) \
        & np.uint64((1 << exponent_bits) - 1)
    significands = words & np.uint64((1 << mantissa_bits) - 1)
    return signs, offsets, significands


def quantize(values: np.ndarray, mantissa_bits: int,
             rng: np.random.Generator | None = None) -> np.ndarray:
    """Randomized rounding of each value to ``mantissa_bits`` of significand.

    The expectation of the output equals the input, which keeps sums of many
    independently quantized sketches unbiased (the property Figure 17 relies
    on: accuracy holds after 100k merges at 20 bits/value).
    """
    if mantissa_bits < 1:
        raise EncodingError(f"mantissa_bits must be >= 1, got {mantissa_bits}")
    rng = rng or np.random.default_rng()
    values = np.asarray(values, dtype=float)
    signs, exponent, mantissa = _split(values)
    scale = 2.0 ** mantissa_bits
    scaled = mantissa * scale
    floor = np.floor(scaled)
    frac = scaled - floor
    floor += (rng.random(values.shape) < frac).astype(float)
    out = np.ldexp(floor / scale, exponent)
    out[signs] = -out[signs]
    out[values == 0.0] = 0.0
    return out


class LowPrecisionCodec:
    """Encode/decode a :class:`MomentsSketch` at reduced bits per value."""

    def __init__(self, mantissa_bits: int = 10,
                 exponent_bits: int = DEFAULT_EXPONENT_BITS,
                 seed: int | None = None):
        if not 1 <= mantissa_bits <= 52:
            raise EncodingError(f"mantissa_bits must be in [1, 52], got {mantissa_bits}")
        if not 2 <= exponent_bits <= 11:
            raise EncodingError(f"exponent_bits must be in [2, 11], got {exponent_bits}")
        self.mantissa_bits = mantissa_bits
        self.exponent_bits = exponent_bits
        self._rng = np.random.default_rng(seed)

    @property
    def bits_per_value(self) -> int:
        """Figure 17's x-axis: sign + exponent + mantissa bits."""
        return 1 + self.exponent_bits + self.mantissa_bits

    # ------------------------------------------------------------------

    def encode(self, sketch: MomentsSketch) -> bytes:
        """Compress a sketch.  min/max/count stay at full precision (they
        are 3 values regardless of k; the sums dominate the footprint)."""
        values = np.concatenate([
            sketch.power_sums[1:],
            sketch.log_sums[1:] if sketch.track_log else np.zeros(0),
        ])
        quantized = quantize(values, self.mantissa_bits, self._rng)
        signs, exponent, mantissa = _split(quantized)

        # Shared base exponent: center the per-value offsets in the field.
        finite = exponent[quantized != 0.0]
        base = int(finite.min()) if finite.size else 0
        span = 1 << self.exponent_bits
        offsets = np.where(quantized == 0.0, 0, exponent - base + 1)
        if offsets.max(initial=0) >= span:
            raise EncodingError(
                f"exponent range {int(offsets.max())} exceeds {self.exponent_bits}-bit field; "
                "increase exponent_bits")

        significands = np.round(mantissa * (1 << self.mantissa_bits)).astype(np.uint64)
        significands[quantized == 0.0] = 0

        packed = self._pack(signs.astype(np.uint64), offsets.astype(np.uint64), significands)
        flags = (1 if sketch.track_log else 0) | (2 if sketch.log_valid else 0)
        header = _HEADER.pack(_MAGIC, sketch.k, flags, self.mantissa_bits,
                              self.exponent_bits, base, values.size)
        tail = struct.pack("<ddd", sketch.min, sketch.max, sketch.count)
        return header + tail + packed.tobytes()

    def decode(self, blob: bytes) -> MomentsSketch:
        """Inverse of :meth:`encode` (up to the quantization applied)."""
        if len(blob) < _HEADER.size + 24:
            raise EncodingError("buffer too short for a compressed sketch")
        magic, k, flags, mantissa_bits, exponent_bits, base, count_values = \
            _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise EncodingError(f"bad magic {magic!r}")
        if not 1 <= k <= MAX_ORDER:
            raise EncodingError(f"corrupt header: order {k} out of range")
        if not 1 <= mantissa_bits <= 52 or not 2 <= exponent_bits <= 11:
            raise EncodingError(
                f"corrupt header: {mantissa_bits} mantissa / "
                f"{exponent_bits} exponent bits out of range")
        families = 2 if flags & 1 else 1
        if count_values != families * k:
            raise EncodingError(
                f"corrupt header: {count_values} packed values for order "
                f"{k} with {families} moment families")
        width = 1 + exponent_bits + mantissa_bits
        expected = _HEADER.size + 24 + (count_values * width + 7) // 8
        if len(blob) != expected:
            raise EncodingError(
                f"payload holds {len(blob)} bytes, expected {expected}")
        xmin, xmax, count = struct.unpack_from("<ddd", blob, _HEADER.size)
        payload = np.frombuffer(blob, dtype=np.uint8, offset=_HEADER.size + 24)
        signs, offsets, significands = self._unpack(
            payload, count_values, mantissa_bits, exponent_bits)

        mantissa = significands.astype(float) / (1 << mantissa_bits)
        exponent = offsets.astype(int) + base - 1
        values = np.ldexp(mantissa, exponent)
        values[offsets == 0] = 0.0
        values[signs.astype(bool)] *= -1.0

        track_log = bool(flags & 1)
        sketch = MomentsSketch(k=k, track_log=track_log)
        sketch.min, sketch.max, sketch.count = xmin, xmax, count
        sketch.power_sums[1:] = values[:k]
        sketch.power_sums[0] = count
        if track_log:
            sketch.log_sums[1:] = values[k:2 * k]
            sketch.log_sums[0] = count
        sketch.log_valid = bool(flags & 2)
        return sketch

    def size_bytes(self, sketch: MomentsSketch) -> int:
        """Encoded footprint (header + full-precision extrema + packed sums)."""
        families = 2 if sketch.track_log else 1
        bits = families * sketch.k * self.bits_per_value
        return _HEADER.size + 24 + (bits + 7) // 8

    # ------------------------------------------------------------------
    # Bit packing
    # ------------------------------------------------------------------

    def _pack(self, signs: np.ndarray, offsets: np.ndarray,
              significands: np.ndarray) -> np.ndarray:
        width = self.bits_per_value
        words = ((signs << np.uint64(width - 1))
                 | (offsets << np.uint64(self.mantissa_bits)) | significands)
        return np.frombuffer(pack_words(words, width), dtype=np.uint8)

    def _unpack(self, payload: np.ndarray, count: int, mantissa_bits: int,
                exponent_bits: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        width = 1 + exponent_bits + mantissa_bits
        words = unpack_words(payload, count, width)
        return split_fields(words, mantissa_bits, exponent_bits)
