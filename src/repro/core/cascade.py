"""Threshold-query cascade (Section 5.2, Algorithm 2).

Threshold queries ("HAVING p99 > 100") over many subgroups would pay the
~millisecond max-entropy solve per group.  The cascade sequences
progressively tighter, progressively more expensive checks:

1. **simple** — range filter against [xmin, xmax],
2. **markov** — Markov-inequality rank bounds,
3. **rtt** — RTT canonical-representation rank bounds,
4. **maxent** — the full quantile estimate.

Each stage either resolves the predicate or falls through.  Because stages
2-3 bound the rank for *every* distribution matching the moments, the
cascade returns exactly the same answer the max-entropy estimate alone
would — no false negatives or positives relative to the baseline
(Section 5.2).  Per-stage hit counts and timings are collected for the
Figure 13 analysis.

:meth:`ThresholdCascade.evaluate_batch` runs the cascade over a whole
cell set at once: the cheap stages filter with the vectorized bound
kernels of :mod:`repro.core.bounds` (element-wise equal to their scalar
counterparts, so stage decisions are bit-identical), and the surviving
cells share one batched max-entropy solve
(:func:`repro.core.batch_solver.fit_estimators`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .bounds import (markov_bound, markov_bound_batch, rtt_bound,
                     rtt_bound_batch)
from .errors import ConvergenceError, EmptySketchError
from .params import normalize_q
from .quantile import QuantileEstimator
from .sketch import ColumnarMoments, MomentsSketch
from .solver import SolverConfig

#: Cascade stage names, cheapest first.
STAGES = ("simple", "markov", "rtt", "maxent")


@dataclass
class StageStats:
    """Hits and cumulative time for one cascade stage."""

    entered: int = 0
    resolved: int = 0
    seconds: float = 0.0

    @property
    def hit_fraction_of(self) -> float:  # pragma: no cover - convenience
        return self.resolved / self.entered if self.entered else 0.0


@dataclass
class CascadeStats:
    """Aggregated per-stage statistics across many threshold evaluations."""

    stages: dict[str, StageStats] = field(
        default_factory=lambda: {name: StageStats() for name in STAGES})
    queries: int = 0

    def fraction_entered(self, stage: str) -> float:
        """Fraction of all queries that reached ``stage`` (Figure 13c)."""
        if self.queries == 0:
            return 0.0
        return self.stages[stage].entered / self.queries

    def stage_throughput(self, stage: str) -> float:
        """Evaluations per second for ``stage`` in isolation (Figure 13b)."""
        stats = self.stages[stage]
        if stats.seconds <= 0:
            return float("inf")
        return stats.entered / stats.seconds

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "entered": self.stages[name].entered,
                "resolved": self.stages[name].resolved,
                "fraction_entered": self.fraction_entered(name),
                "throughput_qps": self.stage_throughput(name),
            }
            for name in STAGES
        }


@dataclass(frozen=True)
class ThresholdOutcome:
    """Result of one threshold evaluation: the answer and which stage won."""

    result: bool
    stage: str


class ThresholdCascade:
    """Evaluates ``quantile(q) > t`` predicates over moments sketches.

    ``enabled_stages`` restricts which filters run (the Figure 12/13 lesion
    adds them one at a time); the max-entropy fallback always runs last.
    """

    def __init__(self, config: SolverConfig | None = None,
                 enabled_stages: tuple[str, ...] = ("simple", "markov", "rtt")):
        unknown = set(enabled_stages) - set(STAGES)
        if unknown:
            raise ValueError(f"unknown cascade stages: {sorted(unknown)}")
        self.config = config or SolverConfig()
        self.enabled_stages = tuple(s for s in STAGES[:3] if s in enabled_stages)
        self.stats = CascadeStats()

    # ------------------------------------------------------------------

    def threshold(self, sketch: MomentsSketch, t: float,
                  q: float | None = None, *, phi: float | None = None) -> bool:
        """Algorithm 2: is the q-quantile estimate greater than ``t``?

        The ``phi=`` keyword is deprecated in favor of the canonical
        ``q`` (see :func:`repro.core.params.normalize_q`).
        """
        return self.evaluate(sketch, t, normalize_q(q, phi)).result

    def evaluate(self, sketch: MomentsSketch, t: float,
                 q: float | None = None, *,
                 phi: float | None = None) -> ThresholdOutcome:
        """Like :meth:`threshold` but reports which stage decided."""
        q = normalize_q(q, phi)
        sketch.require_nonempty()
        self.stats.queries += 1
        target_rank = sketch.count * q

        if "simple" in self.enabled_stages:
            outcome = self._timed("simple", self._simple, sketch, t)
            if outcome is not None:
                return ThresholdOutcome(outcome, "simple")
        if "markov" in self.enabled_stages:
            outcome = self._timed("markov", self._markov, sketch, t, target_rank)
            if outcome is not None:
                return ThresholdOutcome(outcome, "markov")
        if "rtt" in self.enabled_stages:
            outcome = self._timed("rtt", self._rtt, sketch, t, target_rank)
            if outcome is not None:
                return ThresholdOutcome(outcome, "rtt")
        result = self._timed("maxent", self._maxent, sketch, t, q)
        return ThresholdOutcome(bool(result), "maxent")

    def evaluate_batch(self, sketches, t: float, q: float | None = None, *,
                       phi: float | None = None) -> list[ThresholdOutcome]:
        """Run the cascade over a whole cell set with batched stages.

        ``sketches`` is a sequence of :class:`MomentsSketch` or a
        :class:`~repro.core.sketch.ColumnarMoments` block (e.g. from
        :meth:`repro.store.PackedSketchStore.moment_columns`).  Each
        filter stage evaluates its bound for every still-undecided cell
        with one vectorized kernel; cells that survive all bounds share
        one batched max-entropy solve.  The vectorized bounds are
        element-wise equal to their scalar counterparts, so every
        bound-stage decision is exactly the one :meth:`evaluate` makes;
        maxent-stage decisions compare the batched estimate (which
        agrees with the scalar estimate to ~1e-13 relative) against
        ``t``, so they can only differ for a cell whose estimate sits
        within that slack of the threshold — never observed in practice
        and gated in CI.  Per-stage stats record the batched timings
        (one span per stage, not one per cell).
        """
        q = normalize_q(q, phi)
        if isinstance(sketches, ColumnarMoments):
            moments = sketches
            cells: list[MomentsSketch | None] = [None] * len(moments)
        else:
            cells = list(sketches)
            moments = ColumnarMoments.from_sketches(cells)
        if np.any(moments.counts <= 0):
            raise EmptySketchError("sketch holds no data")
        size = len(moments)
        self.stats.queries += size
        target_ranks = moments.counts * q
        results = np.zeros(size, dtype=bool)
        stages = [""] * size
        undecided = np.arange(size)

        def record(local_decided: np.ndarray, values: np.ndarray,
                   stage: str) -> np.ndarray:
            rows = undecided[local_decided]
            results[rows] = values[local_decided]
            for row in rows:
                stages[row] = stage
            return undecided[~local_decided]

        if "simple" in self.enabled_stages and undecided.size:
            stats = self.stats.stages["simple"]
            stats.entered += undecided.size
            start = time.perf_counter()
            mins = moments.mins[undecided]
            maxs = moments.maxs[undecided]
            decided = (t >= maxs) | (t < mins)
            undecided = record(decided, t < mins, "simple")
            stats.seconds += time.perf_counter() - start
            stats.resolved += int(decided.sum())
        for name, bound_batch in (("markov", markov_bound_batch),
                                  ("rtt", rtt_bound_batch)):
            if name not in self.enabled_stages or not undecided.size:
                continue
            stats = self.stats.stages[name]
            stats.entered += undecided.size
            start = time.perf_counter()
            bounds = bound_batch(moments.take(undecided), t)
            exceeds = bounds.upper < target_ranks[undecided]
            misses = bounds.lower > target_ranks[undecided]
            decided = exceeds | misses
            undecided = record(decided, exceeds, name)
            stats.seconds += time.perf_counter() - start
            stats.resolved += int(decided.sum())
        if undecided.size:
            stats = self.stats.stages["maxent"]
            stats.entered += undecided.size
            start = time.perf_counter()
            survivors = [cells[row] if cells[row] is not None
                         else moments.sketch_at(row) for row in undecided]
            from .batch_solver import fit_estimators
            estimators, _, _ = fit_estimators(survivors, self.config)
            for position, row in enumerate(undecided):
                estimator = estimators[position]
                if estimator is None:
                    # Non-convergent (near-discrete) cell: same sound
                    # degradation as the scalar maxent stage — the CDF
                    # midpoint of the RTT bounds.
                    bounds = rtt_bound(survivors[position], t)
                    lo, hi = bounds.fraction()
                    results[row] = 0.5 * (lo + hi) < q
                else:
                    results[row] = estimator.quantile(q) > t
                stages[row] = "maxent"
            stats.seconds += time.perf_counter() - start
            stats.resolved += int(undecided.size)
        return [ThresholdOutcome(bool(results[row]), stages[row])
                for row in range(size)]

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _timed(self, name: str, fn, *args):
        stats = self.stats.stages[name]
        stats.entered += 1
        start = time.perf_counter()
        outcome = fn(*args)
        stats.seconds += time.perf_counter() - start
        if outcome is not None:
            stats.resolved += 1
        return outcome

    @staticmethod
    def _simple(sketch: MomentsSketch, t: float) -> bool | None:
        """Range filter: t outside [xmin, xmax] decides immediately."""
        if t >= sketch.max:
            return False
        if t < sketch.min:
            return True
        return None

    @staticmethod
    def _check_rank_bounds(lower: float, upper: float, target_rank: float) -> bool | None:
        """Resolve the predicate from rank bounds when they clear the target.

        rank(t) < n*phi for every matching dataset implies the quantile
        estimate exceeds t; rank(t) > n*phi implies it does not.  (This is
        Algorithm 2's CheckBound with the rank convention "elements below
        t" spelled out.)
        """
        if upper < target_rank:
            return True
        if lower > target_rank:
            return False
        return None

    def _markov(self, sketch: MomentsSketch, t: float, target_rank: float) -> bool | None:
        bounds = markov_bound(sketch, t)
        return self._check_rank_bounds(bounds.lower, bounds.upper, target_rank)

    def _rtt(self, sketch: MomentsSketch, t: float, target_rank: float) -> bool | None:
        bounds = rtt_bound(sketch, t)
        return self._check_rank_bounds(bounds.lower, bounds.upper, target_rank)

    def _maxent(self, sketch: MomentsSketch, t: float, q: float) -> bool:
        """Final stage: full estimate.  Convergence failures use the CDF
        midpoint of the RTT bounds, the only sound degradation available."""
        try:
            estimator = QuantileEstimator.fit(sketch, config=self.config)
        except ConvergenceError:
            bounds = rtt_bound(sketch, t)
            lo, hi = bounds.fraction()
            return 0.5 * (lo + hi) < q
        return estimator.quantile(q) > t
