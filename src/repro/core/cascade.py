"""Threshold-query cascade (Section 5.2, Algorithm 2).

Threshold queries ("HAVING p99 > 100") over many subgroups would pay the
~millisecond max-entropy solve per group.  The cascade sequences
progressively tighter, progressively more expensive checks:

1. **simple** — range filter against [xmin, xmax],
2. **markov** — Markov-inequality rank bounds,
3. **rtt** — RTT canonical-representation rank bounds,
4. **maxent** — the full quantile estimate.

Each stage either resolves the predicate or falls through.  Because stages
2-3 bound the rank for *every* distribution matching the moments, the
cascade returns exactly the same answer the max-entropy estimate alone
would — no false negatives or positives relative to the baseline
(Section 5.2).  Per-stage hit counts and timings are collected for the
Figure 13 analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .bounds import markov_bound, rtt_bound
from .errors import ConvergenceError
from .quantile import QuantileEstimator
from .sketch import MomentsSketch
from .solver import SolverConfig

#: Cascade stage names, cheapest first.
STAGES = ("simple", "markov", "rtt", "maxent")


@dataclass
class StageStats:
    """Hits and cumulative time for one cascade stage."""

    entered: int = 0
    resolved: int = 0
    seconds: float = 0.0

    @property
    def hit_fraction_of(self) -> float:  # pragma: no cover - convenience
        return self.resolved / self.entered if self.entered else 0.0


@dataclass
class CascadeStats:
    """Aggregated per-stage statistics across many threshold evaluations."""

    stages: dict[str, StageStats] = field(
        default_factory=lambda: {name: StageStats() for name in STAGES})
    queries: int = 0

    def fraction_entered(self, stage: str) -> float:
        """Fraction of all queries that reached ``stage`` (Figure 13c)."""
        if self.queries == 0:
            return 0.0
        return self.stages[stage].entered / self.queries

    def stage_throughput(self, stage: str) -> float:
        """Evaluations per second for ``stage`` in isolation (Figure 13b)."""
        stats = self.stages[stage]
        if stats.seconds <= 0:
            return float("inf")
        return stats.entered / stats.seconds

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "entered": self.stages[name].entered,
                "resolved": self.stages[name].resolved,
                "fraction_entered": self.fraction_entered(name),
                "throughput_qps": self.stage_throughput(name),
            }
            for name in STAGES
        }


@dataclass(frozen=True)
class ThresholdOutcome:
    """Result of one threshold evaluation: the answer and which stage won."""

    result: bool
    stage: str


class ThresholdCascade:
    """Evaluates ``quantile(phi) > t`` predicates over moments sketches.

    ``enabled_stages`` restricts which filters run (the Figure 12/13 lesion
    adds them one at a time); the max-entropy fallback always runs last.
    """

    def __init__(self, config: SolverConfig | None = None,
                 enabled_stages: tuple[str, ...] = ("simple", "markov", "rtt")):
        unknown = set(enabled_stages) - set(STAGES)
        if unknown:
            raise ValueError(f"unknown cascade stages: {sorted(unknown)}")
        self.config = config or SolverConfig()
        self.enabled_stages = tuple(s for s in STAGES[:3] if s in enabled_stages)
        self.stats = CascadeStats()

    # ------------------------------------------------------------------

    def threshold(self, sketch: MomentsSketch, t: float, phi: float) -> bool:
        """Algorithm 2: is the phi-quantile estimate greater than ``t``?"""
        return self.evaluate(sketch, t, phi).result

    def evaluate(self, sketch: MomentsSketch, t: float, phi: float) -> ThresholdOutcome:
        """Like :meth:`threshold` but reports which stage decided."""
        sketch.require_nonempty()
        self.stats.queries += 1
        target_rank = sketch.count * phi

        if "simple" in self.enabled_stages:
            outcome = self._timed("simple", self._simple, sketch, t)
            if outcome is not None:
                return ThresholdOutcome(outcome, "simple")
        if "markov" in self.enabled_stages:
            outcome = self._timed("markov", self._markov, sketch, t, target_rank)
            if outcome is not None:
                return ThresholdOutcome(outcome, "markov")
        if "rtt" in self.enabled_stages:
            outcome = self._timed("rtt", self._rtt, sketch, t, target_rank)
            if outcome is not None:
                return ThresholdOutcome(outcome, "rtt")
        result = self._timed("maxent", self._maxent, sketch, t, phi)
        return ThresholdOutcome(bool(result), "maxent")

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _timed(self, name: str, fn, *args):
        stats = self.stats.stages[name]
        stats.entered += 1
        start = time.perf_counter()
        outcome = fn(*args)
        stats.seconds += time.perf_counter() - start
        if outcome is not None:
            stats.resolved += 1
        return outcome

    @staticmethod
    def _simple(sketch: MomentsSketch, t: float) -> bool | None:
        """Range filter: t outside [xmin, xmax] decides immediately."""
        if t >= sketch.max:
            return False
        if t < sketch.min:
            return True
        return None

    @staticmethod
    def _check_rank_bounds(lower: float, upper: float, target_rank: float) -> bool | None:
        """Resolve the predicate from rank bounds when they clear the target.

        rank(t) < n*phi for every matching dataset implies the quantile
        estimate exceeds t; rank(t) > n*phi implies it does not.  (This is
        Algorithm 2's CheckBound with the rank convention "elements below
        t" spelled out.)
        """
        if upper < target_rank:
            return True
        if lower > target_rank:
            return False
        return None

    def _markov(self, sketch: MomentsSketch, t: float, target_rank: float) -> bool | None:
        bounds = markov_bound(sketch, t)
        return self._check_rank_bounds(bounds.lower, bounds.upper, target_rank)

    def _rtt(self, sketch: MomentsSketch, t: float, target_rank: float) -> bool | None:
        bounds = rtt_bound(sketch, t)
        return self._check_rank_bounds(bounds.lower, bounds.upper, target_rank)

    def _maxent(self, sketch: MomentsSketch, t: float, phi: float) -> bool:
        """Final stage: full estimate.  Convergence failures use the CDF
        midpoint of the RTT bounds, the only sound degradation available."""
        try:
            estimator = QuantileEstimator.fit(sketch, config=self.config)
        except ConvergenceError:
            bounds = rtt_bound(sketch, t)
            lo, hi = bounds.fraction()
            return 0.5 * (lo + hi) < phi
        return estimator.quantile(phi) > t
