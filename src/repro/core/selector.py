"""Heuristic selection of how many moments to use (Section 4.3.1).

The sketch stores up to ``k`` standard and ``k`` log moments, but using all
of them can leave the Newton Hessian ill-conditioned or numerically void
(Section 4.3.2).  At query time the paper "greedily increments k1 and k2,
favoring moments which are closer to the moments expected from a uniform
distribution", subject to the Hessian condition number staying below
``kappa_max``.

This module implements that heuristic plus the two stability backstops from
Appendix B:

* the closed-form cap ``k <= 13.35 / (0.78 + log10(|c| + 1))`` on usable
  order given the data's center offset, and
* an empirical prefix check that discards scaled moments whose magnitude
  escaped [-1, 1] (a sure sign of catastrophic cancellation).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from .moments import (
    ScaledSupport,
    max_stable_order,
    raw_moments,
    shifted_scaled_moments,
    stable_order_empirical,
    uniform_chebyshev_moments,
)
from .sketch import MomentsSketch
from .solver import (MaxEntBasis, SolverConfig, build_bases_batch, build_basis,
                     condition_number, uniform_hessian)


@dataclass(frozen=True)
class MomentSelection:
    """Outcome of the k1/k2 search: counts plus diagnostics."""

    k1: int
    k2: int
    condition: float
    max_stable_k1: int
    max_stable_k2: int


def stable_moment_counts(sketch: MomentsSketch) -> tuple[int, int]:
    """Numerically usable prefix lengths for standard and log moments.

    Combines the Appendix-B closed form (driven by the center offset of each
    support) with an empirical sanity check on the scaled moments.
    """
    sketch.require_nonempty()
    support = ScaledSupport(sketch.min, sketch.max)
    if support.degenerate:
        return 1, 0
    mu = raw_moments(sketch.power_sums, sketch.count)
    scaled = shifted_scaled_moments(mu, support)
    k1 = min(sketch.k, max_stable_order(support.center_offset),
             max(stable_order_empirical(scaled), 1))
    k2 = 0
    if sketch.has_log_moments:
        log_support = ScaledSupport(float(np.log(sketch.min)), float(np.log(sketch.max)))
        if not log_support.degenerate:
            nu = raw_moments(sketch.log_sums, sketch.count)
            log_scaled = shifted_scaled_moments(nu, log_support)
            k2 = min(sketch.k, max_stable_order(log_support.center_offset),
                     max(stable_order_empirical(log_scaled), 0))
    return k1, k2


def select_moments(sketch: MomentsSketch, config: SolverConfig | None = None,
                   use_log: bool = True) -> MomentSelection:
    """Greedy k1/k2 search under the condition-number budget.

    Starting from (k1, k2) = (1, 0), repeatedly tries to add the next
    standard or the next log moment.  A candidate is feasible if the uniform
    Hessian restricted to the enlarged basis keeps
    ``cond < config.max_condition_number``; among feasible candidates the one
    whose *new* Chebyshev moment lies closest to its uniform-distribution
    expectation wins (moments near the uniform value constrain the solution
    gently and are the safest to include).
    """
    config = config or SolverConfig()
    max_k1, max_k2 = stable_moment_counts(sketch)
    if not use_log:
        max_k2 = 0
    max_k1 = max(max_k1, 1)

    # One full-order basis gives every subset's rows and target moments,
    # and one full Gram matrix gives every candidate sub-Hessian by
    # index slicing (H_sub = Gram[rows, rows], exactly the restricted
    # uniform Hessian).
    full = build_basis(sketch, max_k1, max_k2, config)
    max_k2 = full.k2  # build_basis zeroes k2 when log moments are unusable
    gram = uniform_hessian(full)
    uniform_std = uniform_chebyshev_moments(max_k1)
    uniform_log = _uniform_log_expectations(full) if max_k2 > 0 else np.zeros(0)

    # Greedy growth from the empty selection.  Starting at (0, 0) rather
    # than (1, 0) matters in the log integration domain, where the standard
    # basis functions are nearly collinear with the constant (most of the
    # log-scale grid maps to a sliver of the linear scale) and including
    # even one of them can blow the condition number past the budget.
    k1, k2 = 0, 0
    current_cond = 1.0
    while True:
        candidates: list[tuple[float, int, int, float]] = []
        for nk1, nk2 in ((k1 + 1, k2), (k1, k2 + 1)):
            if nk1 > max_k1 or nk2 > max_k2:
                continue
            rows = _row_indices(full, nk1, nk2)
            cond = condition_number(gram[np.ix_(rows, rows)])
            if cond >= config.max_condition_number:
                continue
            if nk1 > k1:
                distance = abs(full.std_moments[nk1] - uniform_std[nk1])
            else:
                distance = abs(full.log_moments[nk2] - uniform_log[nk2])
            candidates.append((distance, nk1, nk2, cond))
        if not candidates:
            break
        candidates.sort()
        _, k1, k2, current_cond = candidates[0]
    if k1 + k2 == 0:
        # Nothing fit the budget; fall back to the first standard moment.
        k1, k2 = 1, 0
        rows = _row_indices(full, 1, 0)
        current_cond = condition_number(gram[np.ix_(rows, rows)])
    return MomentSelection(k1=k1, k2=k2, condition=current_cond,
                           max_stable_k1=max_k1, max_stable_k2=max_k2)


def select_moments_batch(sketches, config: SolverConfig | None = None,
                         use_log: bool = True) -> list[MomentSelection]:
    """Run :func:`select_moments` for many sketches, sharing the SVD work.

    The greedy k1/k2 searches advance in lockstep: every round gathers
    each still-growing problem's candidate sub-Hessians, groups them by
    size, and evaluates their condition numbers with one stacked
    ``np.linalg.svd`` per size (numpy's stacked SVD runs the identical
    LAPACK factorization slice by slice, so each condition number — and
    therefore each selection — is bit-for-bit what the scalar search
    produces).  This amortizes the ~2(k1+k2) tiny SVDs per problem that
    dominate scalar selection time on high-cardinality group queries.
    """
    config = config or SolverConfig()
    sketches = list(sketches)
    caps = []
    for sketch in sketches:
        max_k1, max_k2 = stable_moment_counts(sketch)
        if not use_log:
            max_k2 = 0
        caps.append((max(max_k1, 1), max_k2))
    fulls = build_bases_batch(sketches, [c[0] for c in caps],
                              [c[1] for c in caps], config)
    states: list[dict] = []
    for (max_k1, _), full in zip(caps, fulls):
        max_k2 = full.k2  # build zeroes k2 when log moments are unusable
        states.append({
            "full": full, "max_k1": max_k1, "max_k2": max_k2,
            "gram": uniform_hessian(full),
            "uniform_std": uniform_chebyshev_moments(max_k1),
            "uniform_log": (_uniform_log_expectations(full)
                            if max_k2 > 0 else np.zeros(0)),
            "k1": 0, "k2": 0, "cond": 1.0, "active": True,
        })
    while True:
        owners: list[tuple[int, int, int]] = []
        hessians: list[np.ndarray] = []
        for index, state in enumerate(states):
            if not state["active"]:
                continue
            k1, k2 = state["k1"], state["k2"]
            for nk1, nk2 in ((k1 + 1, k2), (k1, k2 + 1)):
                if nk1 > state["max_k1"] or nk2 > state["max_k2"]:
                    continue
                rows = _row_indices(state["full"], nk1, nk2)
                owners.append((index, nk1, nk2))
                hessians.append(state["gram"][rows[:, None], rows[None, :]])
        if not owners:
            break
        conds = _stacked_condition_numbers(hessians)
        per_state: dict[int, list[tuple[float, int, int, float]]] = {}
        for (index, nk1, nk2), cond in zip(owners, conds):
            if cond >= config.max_condition_number:
                continue
            state = states[index]
            if nk1 > state["k1"]:
                distance = abs(state["full"].std_moments[nk1]
                               - state["uniform_std"][nk1])
            else:
                distance = abs(state["full"].log_moments[nk2]
                               - state["uniform_log"][nk2])
            per_state.setdefault(index, []).append((distance, nk1, nk2, cond))
        for index, state in enumerate(states):
            if not state["active"]:
                continue
            candidates = per_state.get(index)
            if not candidates:
                state["active"] = False
                continue
            candidates.sort()
            _, state["k1"], state["k2"], state["cond"] = candidates[0]
    selections = []
    for state in states:
        k1, k2, cond = state["k1"], state["k2"], state["cond"]
        if k1 + k2 == 0:
            # Nothing fit the budget; fall back to the first standard moment.
            k1, k2 = 1, 0
            rows = _row_indices(state["full"], 1, 0)
            cond = condition_number(state["gram"][np.ix_(rows, rows)])
        selections.append(MomentSelection(
            k1=k1, k2=k2, condition=float(cond),
            max_stable_k1=state["max_k1"], max_stable_k2=state["max_k2"]))
    return selections


def _stacked_condition_numbers(matrices: list[np.ndarray]) -> np.ndarray:
    """2-norm condition numbers via one stacked SVD per matrix size."""
    out = np.empty(len(matrices))
    by_size: dict[int, list[int]] = {}
    for position, matrix in enumerate(matrices):
        by_size.setdefault(matrix.shape[0], []).append(position)
    for positions in by_size.values():
        stack = np.stack([matrices[p] for p in positions])
        try:
            singular = np.linalg.svd(stack, compute_uv=False)
            with np.errstate(divide="ignore", invalid="ignore"):
                conds = singular[:, 0] / singular[:, -1]
        except np.linalg.LinAlgError:  # pragma: no cover - gesdd rarely fails
            conds = np.asarray([condition_number(matrices[p])
                                for p in positions])
        out[positions] = conds
    return out


def _row_indices(basis: MaxEntBasis, k1: int, k2: int) -> np.ndarray:
    """Rows of the full basis matrix spanning the (k1, k2) sub-basis."""
    return _row_indices_cached(basis.k1, k1, k2)


@functools.lru_cache(maxsize=1024)
def _row_indices_cached(full_k1: int, k1: int, k2: int) -> np.ndarray:
    rows = [0]
    rows.extend(range(1, 1 + k1))
    rows.extend(range(1 + full_k1, 1 + full_k1 + k2))
    out = np.asarray(rows, dtype=int)
    out.setflags(write=False)
    return out


def _uniform_log_expectations(basis: MaxEntBasis) -> np.ndarray:
    """``E_uniform[T_j(log-basis)]`` computed by quadrature on the grid.

    The log-basis functions are not polynomials in the integration variable,
    so unlike the standard basis there is no closed form; the shared
    Clenshaw-Curtis grid gives them to interpolation accuracy.
    """
    out = np.zeros(basis.k2 + 1)
    out[0] = 1.0
    for j in range(1, basis.k2 + 1):
        row = basis.matrix[basis.k1 + j]
        out[j] = 0.5 * float(np.dot(basis.weights, row))
    return out
