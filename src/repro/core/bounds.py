"""Moment-based rank and CDF bounds (Section 5.1, Appendix E).

Two families of worst-case bounds derived from the statistics in a moments
sketch.  Both hold for *every* dataset matching the sketch, so they can
short-circuit threshold queries (the cascade) and certify quantile-estimate
error (Figure 23).

``markov_bound``
    Markov's inequality applied to the transforms T+ = x - xmin,
    T- = xmax - x and T^log = log(x) (paper Section 5.1).  Cheap: a handful
    of flops per moment order.

``rtt_bound``
    The Racz-Tari-Telek procedure [66]: the canonical (principal)
    representation of the moment sequence with an atom pinned at the query
    point t.  A discrete distribution with atoms {t} union roots(q) matches
    all stored moments exactly, and classical Chebyshev-Markov theory makes
    its partial weight sums the extremal values of F(t).  Tighter than
    Markov but needs a Hankel solve + root finding.  Runs on the standard
    and the log moments separately, keeping the tighter result (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import BoundError
from .moments import (
    ScaledSupport,
    max_stable_order,
    raw_moments,
    shifted_moments,
    shifted_scaled_moments,
    stable_order_empirical,
)
from .sketch import MomentsSketch


@dataclass(frozen=True)
class RankBounds:
    """Bounds on ``rank(t)`` = number of elements strictly below ``t``.

    ``lower <= rank(t) <= upper`` for every dataset matching the sketch.
    ``fraction()`` converts to CDF bounds.
    """

    lower: float
    upper: float
    count: float

    def fraction(self) -> tuple[float, float]:
        return self.lower / self.count, self.upper / self.count

    def intersect(self, other: "RankBounds") -> "RankBounds":
        return RankBounds(max(self.lower, other.lower),
                          min(self.upper, other.upper), self.count)

    @property
    def width(self) -> float:
        return self.upper - self.lower


def _shifted_raw_moments(mu: np.ndarray, shift: float, negate: bool) -> np.ndarray:
    """``E[(x - shift)**j]`` (or ``E[(shift - x)**j]`` when ``negate``)."""
    out = shifted_moments(mu, shift)
    if negate:
        out[1::2] = -out[1::2]
    return out


def _cheap_order_caps(sketch: MomentsSketch) -> tuple[int, int]:
    """Usable moment orders from the closed-form Appendix-B caps only.

    The bounds run once per subgroup inside cascades, so they avoid the
    full empirical stability scan; per-order validity guards below reject
    any residually garbage moment.
    """
    support = ScaledSupport(sketch.min, sketch.max)
    if support.degenerate:
        return 1, 0
    k1 = min(sketch.k, max_stable_order(support.center_offset))
    k2 = 0
    if sketch.has_log_moments:
        log_support = ScaledSupport(float(np.log(sketch.min)),
                                    float(np.log(sketch.max)))
        if not log_support.degenerate:
            k2 = min(sketch.k, max_stable_order(log_support.center_offset))
    return max(k1, 1), k2


def markov_bound(sketch: MomentsSketch, t: float,
                 max_order: int | None = None) -> RankBounds:
    """Markov-inequality bounds on rank(t) (Section 5.1).

    Lower bound from T+ = x - xmin (non-negative):
    ``P(X >= t) <= E[(X - xmin)**j] / (t - xmin)**j`` so
    ``rank(t) >= n (1 - min_j ...)``.  Upper bound symmetrically from
    T- = xmax - x, and both again on log-transformed data when available.
    """
    sketch.require_nonempty()
    n = sketch.count
    if t <= sketch.min:
        return RankBounds(0.0, 0.0, n)
    if t > sketch.max:
        return RankBounds(n, n, n)

    k1, k2 = _cheap_order_caps(sketch)
    if max_order is not None:
        k1 = min(k1, max_order)
        k2 = min(k2, max_order)
    k1 = max(k1, 1)

    mu = raw_moments(sketch.power_sums[: k1 + 1], n)
    lower_frac = _markov_lower(mu, sketch.min, t, sketch.max - sketch.min)
    upper_frac = _markov_upper(mu, sketch.max, t, sketch.max - sketch.min)

    if k2 > 0 and sketch.has_log_moments and t > 0:
        nu = raw_moments(sketch.log_sums[: k2 + 1], n)
        log_t = float(np.log(t))
        log_range = float(np.log(sketch.max) - np.log(sketch.min))
        lower_frac = max(lower_frac, _markov_lower(
            nu, float(np.log(sketch.min)), log_t, log_range))
        upper_frac = min(upper_frac, _markov_upper(
            nu, float(np.log(sketch.max)), log_t, log_range))

    lower_frac = float(np.clip(lower_frac, 0.0, 1.0))
    upper_frac = float(np.clip(upper_frac, lower_frac, 1.0))
    return RankBounds(lower_frac * n, upper_frac * n, n)


def _valid_transform_moments(values: np.ndarray, span: float) -> np.ndarray:
    """Mask of usable moments of a non-negative transform.

    A genuine moment of data on [0, span] is finite, non-negative, and at
    most span**j; anything else is floating-point debris from the binomial
    shift and must not feed an inequality.
    """
    j = np.arange(values.size, dtype=float)
    with np.errstate(over="ignore"):
        ceiling = span ** j * (1.0 + 1e-9)
    return np.isfinite(values) & (values >= 0.0) & (values <= ceiling)


def _markov_lower(mu: np.ndarray, xmin: float, t: float, span: float) -> float:
    """``F(t) >= 1 - min_j E[(X - xmin)**j] / (t - xmin)**j``."""
    gap = t - xmin
    if gap <= 0:
        return 0.0
    plus = _shifted_raw_moments(mu, xmin, negate=False)
    valid = _valid_transform_moments(plus, span)
    # gap**j can underflow to zero for tiny gaps at high order; the
    # resulting inf ratio is simply never the minimum.
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        ratios = plus[1:] / gap ** np.arange(1, plus.size, dtype=float)
    ratios = ratios[valid[1:] & np.isfinite(ratios)]
    best = float(np.min(ratios, initial=1.0))
    return 1.0 - min(best, 1.0)


def _markov_upper(mu: np.ndarray, xmax: float, t: float, span: float) -> float:
    """``F(t) <= min_j E[(xmax - X)**j] / (xmax - t)**j``."""
    gap = xmax - t
    if gap <= 0:
        return 1.0
    minus = _shifted_raw_moments(mu, xmax, negate=True)
    valid = _valid_transform_moments(minus, span)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        ratios = minus[1:] / gap ** np.arange(1, minus.size, dtype=float)
    ratios = ratios[valid[1:] & np.isfinite(ratios)]
    return min(float(np.min(ratios, initial=1.0)), 1.0)


# ----------------------------------------------------------------------
# RTT canonical-representation bounds
# ----------------------------------------------------------------------

#: Tolerance (in scaled units) within which an atom counts as sitting *at*
#: the query point rather than strictly below it.
_ATOM_TOL = 1e-9


def _canonical_representation(moments: np.ndarray, point: float) -> tuple[np.ndarray, np.ndarray]:
    """Atoms and weights of the principal representation pinned at ``point``.

    ``moments[i] = E[u**i]`` for i = 0..2n must hold 2n + 1 values.  Builds
    the monic degree-n polynomial q orthogonal to ``(u - point) * u**i`` for
    i < n; its roots plus ``point`` are the support of a discrete
    distribution matching all 2n + 1 moments.  Raises :class:`BoundError`
    when the moment matrix is numerically degenerate (e.g. the underlying
    data has fewer distinct values than atoms).
    """
    size = moments.size
    if size < 3 or size % 2 == 0:
        raise BoundError(f"need an odd number of moments >= 3, got {size}")
    n = (size - 1) // 2
    # Linear system sum_j a_j (m_{i+j+1} - point * m_{i+j}) = -(rhs) from
    # orthogonality of the monic q against (u - point) u**i.
    system = np.empty((n, n))
    rhs = np.empty(n)
    for i in range(n):
        for j in range(n):
            system[i, j] = moments[i + j + 1] - point * moments[i + j]
        rhs[i] = -(moments[i + n + 1] - point * moments[i + n])
    try:
        coeffs = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise BoundError("degenerate Hankel system in RTT bound") from exc
    monic = np.concatenate([coeffs, [1.0]])  # ascending powers, degree n
    roots = np.polynomial.polynomial.polyroots(monic)
    if np.any(np.abs(roots.imag) > 1e-7):
        raise BoundError("complex atoms in RTT canonical representation")
    atoms = np.concatenate([roots.real, [point]])
    # Weights from the (n+1)-moment Vandermonde system.
    vander = np.vander(atoms, len(atoms), increasing=True).T
    try:
        weights = np.linalg.solve(vander, moments[: len(atoms)])
    except np.linalg.LinAlgError as exc:
        raise BoundError("singular Vandermonde in RTT bound") from exc
    if np.any(weights < -1e-6):
        raise BoundError("negative weights in RTT canonical representation")
    return atoms, np.clip(weights, 0.0, None)


def _rtt_cdf_bounds(moments: np.ndarray, point: float) -> tuple[float, float]:
    """Extremal values of F(point) over distributions matching ``moments``."""
    atoms, weights = _canonical_representation(moments, point)
    below = float(weights[atoms < point - _ATOM_TOL].sum())
    at = float(weights[np.abs(atoms - point) <= _ATOM_TOL].sum())
    total = float(weights.sum())
    if total <= 0:
        raise BoundError("zero total mass in RTT representation")
    return below / total, min(1.0, (below + at) / total)


def rtt_bound(sketch: MomentsSketch, t: float,
              max_order: int | None = None) -> RankBounds:
    """RTT bounds on rank(t), intersected across moment families.

    Scales data onto [-1, 1] first (the Hankel systems are hopeless in raw
    units), runs the canonical-representation bound on the standard moments
    and, when available, on the log moments, and keeps the tighter bounds.
    Falls back to :func:`markov_bound` when both solves degenerate.
    """
    sketch.require_nonempty()
    n = sketch.count
    if t <= sketch.min:
        return RankBounds(0.0, 0.0, n)
    if t > sketch.max:
        return RankBounds(n, n, n)

    k1, k2 = _cheap_order_caps(sketch)
    if max_order is not None:
        k1 = min(k1, max_order)
        k2 = min(k2, max_order)

    lo_frac, hi_frac = 0.0, 1.0
    solved = False

    support = ScaledSupport(sketch.min, sketch.max)
    if not support.degenerate and k1 >= 2:
        mu = raw_moments(sketch.power_sums[: k1 + 1], n)
        scaled_mu = shifted_scaled_moments(mu, support)
        scaled_mu = scaled_mu[: max(stable_order_empirical(scaled_mu), 1) + 1]
        try:
            lo, hi = _rtt_cdf_bounds(_odd_prefix(scaled_mu), float(support.scale(np.asarray(t))))
            lo_frac, hi_frac = max(lo_frac, lo), min(hi_frac, hi)
            solved = True
        except BoundError:
            pass

    if sketch.has_log_moments and k2 >= 2 and t > 0:
        log_support = ScaledSupport(float(np.log(sketch.min)), float(np.log(sketch.max)))
        if not log_support.degenerate:
            nu = raw_moments(sketch.log_sums[: k2 + 1], n)
            scaled_nu = shifted_scaled_moments(nu, log_support)
            scaled_nu = scaled_nu[: max(stable_order_empirical(scaled_nu), 1) + 1]
            try:
                lo, hi = _rtt_cdf_bounds(
                    _odd_prefix(scaled_nu),
                    float(log_support.scale(np.asarray(np.log(t)))))
                lo_frac, hi_frac = max(lo_frac, lo), min(hi_frac, hi)
                solved = True
            except BoundError:
                pass

    markov = markov_bound(sketch, t, max_order=max_order)
    if not solved:
        return markov
    hi_frac = max(hi_frac, lo_frac)
    return RankBounds(lo_frac * n, hi_frac * n, n).intersect(markov)


def _odd_prefix(moments: np.ndarray) -> np.ndarray:
    """Longest odd-length prefix (the RTT solve needs moments 0..2n)."""
    usable = moments.size if moments.size % 2 == 1 else moments.size - 1
    return moments[:usable]


def quantile_error_bound(sketch: MomentsSketch, estimate: float, phi: float) -> float:
    """Guaranteed quantile error of ``estimate`` as a phi-quantile (App. E).

    Every dataset matching the sketch has F(estimate) inside the RTT bounds,
    so the rank error of ``estimate`` is at most the distance from phi to
    the far end of those bounds.  This is the ``epsilon_bound`` series of
    Figure 23.
    """
    if not 0.0 <= phi <= 1.0:
        raise BoundError(f"phi must be in [0, 1], got {phi}")
    bounds = rtt_bound(sketch, estimate)
    lo, hi = bounds.fraction()
    return max(hi - phi, phi - lo, 0.0)
