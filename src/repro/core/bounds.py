"""Moment-based rank and CDF bounds (Section 5.1, Appendix E).

Two families of worst-case bounds derived from the statistics in a moments
sketch.  Both hold for *every* dataset matching the sketch, so they can
short-circuit threshold queries (the cascade) and certify quantile-estimate
error (Figure 23).

``markov_bound``
    Markov's inequality applied to the transforms T+ = x - xmin,
    T- = xmax - x and T^log = log(x) (paper Section 5.1).  Cheap: a handful
    of flops per moment order.

``rtt_bound``
    The Racz-Tari-Telek procedure [66]: the canonical (principal)
    representation of the moment sequence with an atom pinned at the query
    point t.  A discrete distribution with atoms {t} union roots(q) matches
    all stored moments exactly, and classical Chebyshev-Markov theory makes
    its partial weight sums the extremal values of F(t).  Tighter than
    Markov but needs a Hankel solve + root finding.  Runs on the standard
    and the log moments separately, keeping the tighter result (Section 5.1).

Both bounds also come in *batched* array forms —
:func:`markov_bound_batch` and :func:`rtt_bound_batch` — operating on a
:class:`~repro.core.sketch.ColumnarMoments` block (packed power-sum
matrices) so a threshold cascade can filter a whole cell set before its
one batched max-entropy solve.  The scalar entry points delegate to the
batched kernels with a one-row block, so scalar and vectorized results
are equal element-wise by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import BoundError
from .sketch import ColumnarMoments, MomentsSketch
from .moments import shifted_moments


@dataclass(frozen=True)
class RankBounds:
    """Bounds on ``rank(t)`` = number of elements strictly below ``t``.

    ``lower <= rank(t) <= upper`` for every dataset matching the sketch.
    ``fraction()`` converts to CDF bounds.
    """

    lower: float
    upper: float
    count: float

    def fraction(self) -> tuple[float, float]:
        return self.lower / self.count, self.upper / self.count

    def intersect(self, other: "RankBounds") -> "RankBounds":
        return RankBounds(max(self.lower, other.lower),
                          min(self.upper, other.upper), self.count)

    @property
    def width(self) -> float:
        return self.upper - self.lower


@dataclass(frozen=True)
class RankBoundsBatch:
    """Per-row :class:`RankBounds` over a columnar block of sketches."""

    lower: np.ndarray
    upper: np.ndarray
    counts: np.ndarray

    def __len__(self) -> int:
        return self.lower.shape[0]

    def row(self, index: int) -> RankBounds:
        return RankBounds(float(self.lower[index]), float(self.upper[index]),
                          float(self.counts[index]))

    def fractions(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row CDF bounds (the array form of ``RankBounds.fraction``)."""
        return self.lower / self.counts, self.upper / self.counts


def _require_nonempty_rows(moments: ColumnarMoments) -> None:
    if np.any(moments.counts <= 0):
        from .errors import EmptySketchError
        raise EmptySketchError("columnar block holds an empty row")


def _max_stable_orders(center_offsets: np.ndarray) -> np.ndarray:
    """Vectorized Appendix-B Eq. (21) cap (see ``moments.max_stable_order``)."""
    denom = 0.78 + np.log10(np.abs(center_offsets) + 1.0)
    return np.minimum(np.floor(13.35 / denom), 16).astype(int)


def _cheap_order_caps_rows(moments: ColumnarMoments, rows: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Usable moment orders from the closed-form Appendix-B caps only.

    The bounds run once per subgroup inside cascades, so they avoid the
    full empirical stability scan; per-order validity guards below reject
    any residually garbage moment.  Row-wise mirror of the scalar rule:
    degenerate supports cap at (1, 0).
    """
    mins = moments.mins[rows]
    maxs = moments.maxs[rows]
    k1 = np.ones(rows.size, dtype=int)
    k2 = np.zeros(rows.size, dtype=int)
    nondegenerate = maxs > mins
    if nondegenerate.any():
        centers = 0.5 * (maxs + mins)
        halves = 0.5 * (maxs - mins)
        with np.errstate(divide="ignore", invalid="ignore"):
            offsets = np.where(nondegenerate, centers / halves, 0.0)
        k1 = np.where(nondegenerate,
                      np.minimum(moments.k, _max_stable_orders(offsets)), k1)
    usable = moments.usable_log()[rows] & nondegenerate
    if usable.any():
        with np.errstate(divide="ignore", invalid="ignore"):
            log_lo = np.log(np.where(usable, mins, 1.0))
            log_hi = np.log(np.where(usable, maxs, 2.0))
            log_ok = usable & (log_hi > log_lo)
            log_offsets = np.where(
                log_ok, (0.5 * (log_hi + log_lo)) / (0.5 * (log_hi - log_lo)),
                0.0)
        k2 = np.where(log_ok,
                      np.minimum(moments.k, _max_stable_orders(log_offsets)),
                      k2)
    return np.maximum(k1, 1), k2


def _valid_transform_moments_rows(values: np.ndarray, span: np.ndarray
                                  ) -> np.ndarray:
    """Row-wise mask of usable moments of a non-negative transform.

    A genuine moment of data on [0, span] is finite, non-negative, and at
    most span**j; anything else is floating-point debris from the binomial
    shift and must not feed an inequality.
    """
    j = np.arange(values.shape[1], dtype=float)
    with np.errstate(over="ignore"):
        ceiling = span[:, None] ** j * (1.0 + 1e-9)
    return np.isfinite(values) & (values >= 0.0) & (values <= ceiling)


def _markov_lower_rows(mu: np.ndarray, xmins: np.ndarray, t,
                       spans: np.ndarray) -> np.ndarray:
    """``F(t) >= 1 - min_j E[(X - xmin)**j] / (t - xmin)**j``, per row."""
    gaps = t - xmins
    plus = shifted_moments(mu, xmins)
    valid = _valid_transform_moments_rows(plus, spans)
    # gap**j can underflow to zero for tiny gaps at high order; the
    # resulting inf ratio is simply never the minimum.
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        ratios = plus[:, 1:] / gaps[:, None] ** np.arange(
            1, plus.shape[1], dtype=float)
    usable = valid[:, 1:] & np.isfinite(ratios)
    best = np.where(usable, ratios, np.inf).min(axis=1, initial=1.0)
    return np.where(gaps > 0, 1.0 - np.minimum(best, 1.0), 0.0)


def _markov_upper_rows(mu: np.ndarray, xmaxs: np.ndarray, t,
                       spans: np.ndarray) -> np.ndarray:
    """``F(t) <= min_j E[(xmax - X)**j] / (xmax - t)**j``, per row."""
    gaps = xmaxs - t
    minus = shifted_moments(mu, xmaxs)
    minus[:, 1::2] = -minus[:, 1::2]
    valid = _valid_transform_moments_rows(minus, spans)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        ratios = minus[:, 1:] / gaps[:, None] ** np.arange(
            1, minus.shape[1], dtype=float)
    usable = valid[:, 1:] & np.isfinite(ratios)
    best = np.where(usable, ratios, np.inf).min(axis=1, initial=1.0)
    return np.where(gaps > 0, np.minimum(best, 1.0), 1.0)


def _raw_moment_rows(sums: np.ndarray, counts: np.ndarray, order: int
                     ) -> np.ndarray:
    """Row-wise ``raw_moments``: ``mu_i = sums[:, i] / count``, ``mu_0 = 1``."""
    mu = sums[:, : order + 1] / counts[:, None]
    mu[:, 0] = 1.0
    return mu


def markov_bound_batch(moments: ColumnarMoments, t,
                       max_order: int | None = None) -> RankBoundsBatch:
    """Markov-inequality bounds on rank(t) for every row of a block.

    The array form of :func:`markov_bound` over packed power-sum
    matrices: rows are grouped by their usable moment order and each
    group's binomial shifts, ratio tests, and min-reductions run
    stacked.  ``t`` may be one threshold for the whole block or a
    per-row array (the top-n bracket bisection probes per-row
    midpoints).  Every operation is element-wise per row, so
    ``markov_bound_batch(cm, t).row(i) == markov_bound(cm.sketch_at(i), t)``
    exactly — the equivalence that keeps batched cascade decisions
    bit-identical to the scalar cascade's.
    """
    _require_nonempty_rows(moments)
    counts = moments.counts
    size = len(moments)
    ts = np.broadcast_to(np.asarray(t, dtype=float), counts.shape)
    below = ts <= moments.mins
    above = ts > moments.maxs
    lower_frac = np.zeros(size)
    upper_frac = np.ones(size)
    middle = np.flatnonzero(~below & ~above)
    if middle.size:
        k1, k2 = _cheap_order_caps_rows(moments, middle)
        if max_order is not None:
            k1 = np.minimum(k1, max_order)
            k2 = np.minimum(k2, max_order)
        k1 = np.maximum(k1, 1)
        mins = moments.mins[middle]
        maxs = moments.maxs[middle]
        ts_mid = ts[middle]
        spans = maxs - mins
        lf = np.zeros(middle.size)
        uf = np.ones(middle.size)
        for order in np.unique(k1):
            members = np.flatnonzero(k1 == order)
            rows = middle[members]
            mu = _raw_moment_rows(moments.power_sums[rows], counts[rows],
                                  int(order))
            lf[members] = _markov_lower_rows(mu, mins[members],
                                             ts_mid[members], spans[members])
            uf[members] = _markov_upper_rows(mu, maxs[members],
                                             ts_mid[members], spans[members])
        log_rows = np.flatnonzero((k2 > 0) & (ts_mid > 0))
        if log_rows.size:
            for order in np.unique(k2[log_rows]):
                members = log_rows[k2[log_rows] == order]
                rows = middle[members]
                nu = _raw_moment_rows(moments.log_sums[rows], counts[rows],
                                      int(order))
                log_t = np.log(ts_mid[members])
                log_mins = np.log(mins[members])
                log_maxs = np.log(maxs[members])
                log_spans = log_maxs - log_mins
                lf[members] = np.maximum(
                    lf[members],
                    _markov_lower_rows(nu, log_mins, log_t, log_spans))
                uf[members] = np.minimum(
                    uf[members],
                    _markov_upper_rows(nu, log_maxs, log_t, log_spans))
        lf = np.clip(lf, 0.0, 1.0)
        uf = np.clip(uf, lf, 1.0)
        lower_frac[middle] = lf
        upper_frac[middle] = uf
    lower = np.where(below, 0.0, np.where(above, counts, lower_frac * counts))
    upper = np.where(below, 0.0, np.where(above, counts, upper_frac * counts))
    return RankBoundsBatch(lower=lower, upper=upper, counts=counts.copy())


def markov_bound(sketch: MomentsSketch, t: float,
                 max_order: int | None = None) -> RankBounds:
    """Markov-inequality bounds on rank(t) (Section 5.1).

    Lower bound from T+ = x - xmin (non-negative):
    ``P(X >= t) <= E[(X - xmin)**j] / (t - xmin)**j`` so
    ``rank(t) >= n (1 - min_j ...)``.  Upper bound symmetrically from
    T- = xmax - x, and both again on log-transformed data when available.

    Delegates to :func:`markov_bound_batch` with a one-row block, so the
    scalar and vectorized forms cannot drift apart.
    """
    sketch.require_nonempty()
    batch = markov_bound_batch(ColumnarMoments.from_sketches([sketch]), t,
                               max_order=max_order)
    return batch.row(0)


# ----------------------------------------------------------------------
# RTT canonical-representation bounds
# ----------------------------------------------------------------------

#: Tolerance (in scaled units) within which an atom counts as sitting *at*
#: the query point rather than strictly below it.
_ATOM_TOL = 1e-9


def _canonical_representation(moments: np.ndarray, point: float) -> tuple[np.ndarray, np.ndarray]:
    """Atoms and weights of the principal representation pinned at ``point``.

    ``moments[i] = E[u**i]`` for i = 0..2n must hold 2n + 1 values.  Builds
    the monic degree-n polynomial q orthogonal to ``(u - point) * u**i`` for
    i < n; its roots plus ``point`` are the support of a discrete
    distribution matching all 2n + 1 moments.  Raises :class:`BoundError`
    when the moment matrix is numerically degenerate (e.g. the underlying
    data has fewer distinct values than atoms).
    """
    size = moments.size
    if size < 3 or size % 2 == 0:
        raise BoundError(f"need an odd number of moments >= 3, got {size}")
    n = (size - 1) // 2
    # Linear system sum_j a_j (m_{i+j+1} - point * m_{i+j}) = -(rhs) from
    # orthogonality of the monic q against (u - point) u**i, assembled as
    # one shifted-Hankel gather.
    index = np.arange(n)[:, None] + np.arange(n)[None, :]
    system = moments[index + 1] - point * moments[index]
    tail = np.arange(n) + n
    rhs = -(moments[tail + 1] - point * moments[tail])
    try:
        coeffs = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise BoundError("degenerate Hankel system in RTT bound") from exc
    monic = np.concatenate([coeffs, [1.0]])  # ascending powers, degree n
    roots = np.polynomial.polynomial.polyroots(monic)
    if np.any(np.abs(roots.imag) > 1e-7):
        raise BoundError("complex atoms in RTT canonical representation")
    atoms = np.concatenate([roots.real, [point]])
    # Weights from the (n+1)-moment Vandermonde system.
    vander = np.vander(atoms, len(atoms), increasing=True).T
    try:
        weights = np.linalg.solve(vander, moments[: len(atoms)])
    except np.linalg.LinAlgError as exc:
        raise BoundError("singular Vandermonde in RTT bound") from exc
    if np.any(weights < -1e-6):
        raise BoundError("negative weights in RTT canonical representation")
    return atoms, np.clip(weights, 0.0, None)


def _rtt_cdf_bounds(moments: np.ndarray, point: float) -> tuple[float, float]:
    """Extremal values of F(point) over distributions matching ``moments``."""
    atoms, weights = _canonical_representation(moments, point)
    below = float(weights[atoms < point - _ATOM_TOL].sum())
    at = float(weights[np.abs(atoms - point) <= _ATOM_TOL].sum())
    total = float(weights.sum())
    if total <= 0:
        raise BoundError("zero total mass in RTT representation")
    return below / total, min(1.0, (below + at) / total)


def _stable_orders_rows(scaled: np.ndarray, tolerance: float = 1.0
                        ) -> np.ndarray:
    """Row-wise ``moments.stable_order_empirical`` over scaled-moment rows."""
    limit = 1.0 + 1e-9 if tolerance == 1.0 else tolerance
    violation = ~np.isfinite(scaled) | (np.abs(scaled) > limit)
    any_violation = violation.any(axis=1)
    first = np.argmax(violation, axis=1)
    return np.where(any_violation, first - 1, scaled.shape[1] - 1)


def _shifted_scaled_rows(mu: np.ndarray, centers: np.ndarray,
                         halves: np.ndarray) -> np.ndarray:
    """Row-wise ``moments.shifted_scaled_moments`` with per-row supports."""
    with np.errstate(all="ignore"):
        out = shifted_moments(mu, centers)
        out /= halves[:, None] ** np.arange(mu.shape[1], dtype=float)
    out[:, 0] = 1.0
    return out


def _rtt_family_rows(sums: np.ndarray, counts: np.ndarray, orders: np.ndarray,
                     members: np.ndarray, lows: np.ndarray, highs: np.ndarray,
                     points: np.ndarray, lo_frac: np.ndarray,
                     hi_frac: np.ndarray, solved: np.ndarray) -> None:
    """One moment family's RTT pass over eligible rows, updating in place.

    The moment preparation (raw moments, binomial shift, scaling,
    stability truncation) runs stacked per distinct order; the
    Hankel-solve + root-finding core is inherently per-row (each row's
    truncation yields its own system size) and reuses the scalar
    :func:`_rtt_cdf_bounds` verbatim.
    """
    for order in np.unique(orders[members]):
        group = members[orders[members] == order]
        mu = _raw_moment_rows(sums[group], counts[group], int(order))
        centers = 0.5 * (highs[group] + lows[group])
        halves = 0.5 * (highs[group] - lows[group])
        scaled = _shifted_scaled_rows(mu, centers, halves)
        usable = np.maximum(_stable_orders_rows(scaled), 1) + 1
        scaled_points = (points[group] - centers) / halves
        for position, row in enumerate(group):
            prefix = _odd_prefix(scaled[position, : usable[position]])
            try:
                lo, hi = _rtt_cdf_bounds(prefix, float(scaled_points[position]))
            except BoundError:
                continue
            lo_frac[row] = max(lo_frac[row], lo)
            hi_frac[row] = min(hi_frac[row], hi)
            solved[row] = True


def rtt_bound_batch(moments: ColumnarMoments, t,
                    max_order: int | None = None) -> RankBoundsBatch:
    """RTT bounds on rank(t) for every row of a columnar block.

    The array form of :func:`rtt_bound`: early range classification, the
    Appendix-B order caps, and each family's moment conditioning run
    stacked over the packed power-sum matrices; the per-row canonical
    representation reuses the scalar solver, and every row intersects
    with its (vectorized) Markov bound exactly as the scalar path does.
    ``t`` may be one threshold or a per-row array.  Rows where both
    Hankel solves degenerate fall back to their Markov rows, mirroring
    the scalar fallback.
    """
    _require_nonempty_rows(moments)
    counts = moments.counts
    size = len(moments)
    ts = np.broadcast_to(np.asarray(t, dtype=float), counts.shape)
    markov = markov_bound_batch(moments, ts, max_order=max_order)
    below = ts <= moments.mins
    above = ts > moments.maxs
    lower = np.where(below, 0.0, np.where(above, counts, markov.lower))
    upper = np.where(below, 0.0, np.where(above, counts, markov.upper))
    middle = np.flatnonzero(~below & ~above)
    if middle.size:
        k1, k2 = _cheap_order_caps_rows(moments, middle)
        if max_order is not None:
            k1 = np.minimum(k1, max_order)
            k2 = np.minimum(k2, max_order)
        mins = moments.mins[middle]
        maxs = moments.maxs[middle]
        ts_mid = ts[middle]
        lo_frac = np.zeros(middle.size)
        hi_frac = np.ones(middle.size)
        solved = np.zeros(middle.size, dtype=bool)
        std_members = np.flatnonzero((maxs > mins) & (k1 >= 2))
        if std_members.size:
            _rtt_family_rows(moments.power_sums[middle], counts[middle], k1,
                             std_members, mins, maxs,
                             ts_mid, lo_frac, hi_frac, solved)
        log_eligible = moments.usable_log()[middle] & (k2 >= 2) & (ts_mid > 0)
        if log_eligible.any():
            log_mins = np.log(np.where(log_eligible, mins, 1.0))
            log_maxs = np.log(np.where(log_eligible, maxs, 2.0))
            log_members = np.flatnonzero(log_eligible & (log_maxs > log_mins))
            if log_members.size:
                _rtt_family_rows(moments.log_sums[middle], counts[middle], k2,
                                 log_members, log_mins, log_maxs,
                                 np.log(np.where(log_eligible, ts_mid, 1.0)),
                                 lo_frac, hi_frac, solved)
        hi_frac = np.where(solved, np.maximum(hi_frac, lo_frac), hi_frac)
        rows = middle[solved]
        # intersect with the Markov rows, exactly like the scalar path
        lower[rows] = np.maximum(lo_frac[solved] * counts[rows], lower[rows])
        upper[rows] = np.minimum(hi_frac[solved] * counts[rows], upper[rows])
    return RankBoundsBatch(lower=lower, upper=upper, counts=counts.copy())


def rtt_bound(sketch: MomentsSketch, t: float,
              max_order: int | None = None) -> RankBounds:
    """RTT bounds on rank(t), intersected across moment families.

    Scales data onto [-1, 1] first (the Hankel systems are hopeless in raw
    units), runs the canonical-representation bound on the standard moments
    and, when available, on the log moments, and keeps the tighter bounds.
    Falls back to :func:`markov_bound` when both solves degenerate.

    Delegates to :func:`rtt_bound_batch` with a one-row block, so the
    scalar and vectorized forms cannot drift apart.
    """
    sketch.require_nonempty()
    batch = rtt_bound_batch(ColumnarMoments.from_sketches([sketch]), t,
                            max_order=max_order)
    return batch.row(0)


def _odd_prefix(moments: np.ndarray) -> np.ndarray:
    """Longest odd-length prefix (the RTT solve needs moments 0..2n)."""
    usable = moments.size if moments.size % 2 == 1 else moments.size - 1
    return moments[:usable]


def quantile_error_bound(sketch: MomentsSketch, estimate: float, phi: float) -> float:
    """Guaranteed quantile error of ``estimate`` as a phi-quantile (App. E).

    Every dataset matching the sketch has F(estimate) inside the RTT bounds,
    so the rank error of ``estimate`` is at most the distance from phi to
    the far end of those bounds.  This is the ``epsilon_bound`` series of
    Figure 23.
    """
    if not 0.0 <= phi <= 1.0:
        raise BoundError(f"phi must be in [0, 1], got {phi}")
    bounds = rtt_bound(sketch, estimate)
    lo, hi = bounds.fraction()
    return max(hi - phi, phi - lo, 0.0)
