"""Quantile estimation from a moments sketch (Section 4.2).

This is the user-facing entry point tying the pieces together:

1. pick usable moment counts (``selector``),
2. solve for the maximum entropy density (``solver``),
3. integrate the density into a CDF (Chebyshev antiderivative, closed form)
   and invert it with Brent's method — the paper's estimation recipe
   ("numeric integration and the Brent's method for root finding").

The result object keeps the solved density around so callers (the cascade,
the bound evaluation, tests) can interrogate the CDF without re-solving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from .chebyshev import (
    antiderivative_series,
    eval_chebyshev_series,
    interpolation_coefficients,
)
from .errors import ConvergenceError, EstimationError
from .selector import MomentSelection, select_moments
from .sketch import MomentsSketch
from .solver import (
    MaxEntBasis,
    MaxEntResult,
    SolverConfig,
    _basis_matrix_on,
    build_basis,
    chebyshev_nodes,
    solve,
)


@dataclass
class QuantileEstimator:
    """Solved maximum-entropy model for one sketch.

    Construction runs the full solve (about a millisecond of numpy work for
    k = 10); afterwards ``quantile`` / ``cdf`` / ``pdf`` calls are cheap
    Chebyshev-series evaluations.
    """

    sketch: MomentsSketch
    basis: MaxEntBasis
    result: MaxEntResult
    selection: MomentSelection | None
    _cdf_coeffs: np.ndarray
    _cdf_offset: float
    _cdf_scale: float
    _grid_u: np.ndarray
    _grid_cdf: np.ndarray

    # ------------------------------------------------------------------
    # Factory
    # ------------------------------------------------------------------

    @classmethod
    def fit(cls, sketch: MomentsSketch, config: SolverConfig | None = None,
            k1: int | None = None, k2: int | None = None,
            domain: str | None = None,
            allow_backoff: bool = False) -> "QuantileEstimator":
        """Solve the max-entropy problem for ``sketch``.

        ``k1``/``k2`` override the automatic moment selection (used by the
        ablation benchmarks); ``domain`` overrides the integration-variable
        choice.  Raises :class:`ConvergenceError` when Newton fails, e.g. on
        near-discrete data (Figure 8).

        ``allow_backoff`` retries with progressively fewer moments when the
        solve fails.  Noisy moments (low-precision storage, extreme shift
        amplification) can leave the *high* orders mutually inconsistent
        while the low orders remain fine; production paths prefer a coarser
        answer over an exception.  Left off by default so benchmarks and
        tests observe raw solver behaviour.
        """
        config = config or SolverConfig()
        sketch.require_nonempty()
        if not sketch.max > sketch.min:
            return cls._point_mass(sketch, config)
        selection = None
        if k1 is None or k2 is None:
            selection = select_moments(sketch, config)
            if k1 is None:
                k1 = selection.k1
            if k2 is None:
                k2 = selection.k2
        while True:
            try:
                basis = build_basis(sketch, k1, k2, config, domain=domain)
                result = solve(basis, config)
                break
            except ConvergenceError:
                if not allow_backoff or k1 + k2 <= 2:
                    raise
                # Drop the highest moment of the larger family.
                if k1 >= k2:
                    k1 -= 1
                else:
                    k2 -= 1
                if k1 + k2 == 0:
                    raise
        coeffs, offset, scale = cls._build_cdf(basis, result, config)
        estimator = cls(sketch=sketch, basis=basis, result=result, selection=selection,
                        _cdf_coeffs=coeffs, _cdf_offset=offset, _cdf_scale=scale,
                        _grid_u=np.zeros(0), _grid_cdf=np.zeros(0))
        estimator._tabulate()
        return estimator

    @classmethod
    def _point_mass(cls, sketch: MomentsSketch, config: SolverConfig) -> "QuantileEstimator":
        """Degenerate support: every quantile is the single value."""
        estimator = cls.__new__(cls)
        estimator.sketch = sketch
        estimator.basis = None  # type: ignore[assignment]
        estimator.result = None  # type: ignore[assignment]
        estimator.selection = None
        estimator._cdf_coeffs = np.zeros(0)
        estimator._cdf_offset = 0.0
        estimator._cdf_scale = 1.0
        estimator._grid_u = np.zeros(0)
        estimator._grid_cdf = np.zeros(0)
        return estimator

    def _tabulate(self) -> None:
        """Dense monotone CDF table for fast vectorized inversion.

        The Chebyshev antiderivative is evaluated once on a uniform grid of
        the integration domain; quantiles then invert the table by linear
        interpolation, which is accurate to O(grid step squared) in rank —
        far below solver error — while avoiding a scalar root find per
        query.  :meth:`quantile_brent` retains the paper's exact Brent
        formulation for verification.
        """
        grid = np.linspace(-1.0, 1.0, max(4 * len(self._cdf_coeffs), 2049))
        values = self.cdf_scaled(grid)
        values = np.maximum.accumulate(values)
        self._grid_u = grid
        self._grid_cdf = values

    @staticmethod
    def _build_cdf(basis: MaxEntBasis, result: MaxEntResult,
                   config: SolverConfig) -> tuple[np.ndarray, float, float]:
        """Chebyshev antiderivative of the solved density on a fine grid.

        The density is re-interpolated on ``cdf_grid_size`` Lobatto nodes
        (finer than the solve grid) so the CDF inherits interpolation-level
        accuracy, then integrated in closed form.  Returns coefficients plus
        the affine normalization mapping raw antiderivative values onto
        [0, 1].
        """
        nodes = chebyshev_nodes(config.cdf_grid_size)
        matrix = _basis_matrix_on(basis, nodes)
        density = result.density_on(nodes, matrix=matrix)
        coeffs = interpolation_coefficients(density)
        # The density is smooth (an exponential of ~k basis functions), so
        # its interpolation coefficients decay fast; everything below the
        # relative noise floor is float dust whose only effect would be to
        # slow every later series evaluation by an order of magnitude.
        floor = float(np.max(np.abs(coeffs))) * 1e-14
        significant = np.nonzero(np.abs(coeffs) > floor)[0]
        if significant.size:
            coeffs = coeffs[: significant[-1] + 1]
        anti = antiderivative_series(coeffs)
        lo = float(eval_chebyshev_series(anti, np.asarray(-1.0)))
        hi = float(eval_chebyshev_series(anti, np.asarray(1.0)))
        if not hi > lo:
            raise EstimationError("solved density integrates to zero")
        return anti, lo, hi - lo

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @property
    def is_point_mass(self) -> bool:
        return self._cdf_coeffs.size == 0

    def cdf_scaled(self, u: np.ndarray) -> np.ndarray:
        """CDF in integration-domain coordinates (u on [-1, 1])."""
        if self.is_point_mass:
            return (np.asarray(u) >= 0).astype(float)
        raw = eval_chebyshev_series(self._cdf_coeffs, np.clip(u, -1.0, 1.0))
        return np.clip((raw - self._cdf_offset) / self._cdf_scale, 0.0, 1.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Estimated CDF in data units."""
        x = np.asarray(x, dtype=float)
        if self.is_point_mass:
            return (x >= self.sketch.min).astype(float)
        below = x < self.sketch.min
        above = x > self.sketch.max
        u = self._to_domain(np.clip(x, self.sketch.min, self.sketch.max))
        values = self.cdf_scaled(u)
        values = np.where(below, 0.0, values)
        values = np.where(above, 1.0, values)
        return values

    def quantile(self, phi: float) -> float:
        """The phi-quantile of the max-entropy distribution."""
        return float(self.quantiles(np.asarray([phi]))[0])

    def quantiles(self, phis: np.ndarray) -> np.ndarray:
        """Vectorized quantiles via inverse interpolation of the CDF table."""
        phis = np.asarray(phis, dtype=float)
        if np.any((phis < 0.0) | (phis > 1.0)):
            raise EstimationError("phi values must be in [0, 1]")
        if self.is_point_mass:
            return np.full(phis.shape, self.sketch.min)
        u = np.interp(phis, self._grid_cdf, self._grid_u)
        x = self._from_domain(u)
        return np.clip(x, self.sketch.min, self.sketch.max)

    def quantile_brent(self, phi: float) -> float:
        """Quantile by Brent root finding on the Chebyshev CDF.

        This is the estimation procedure exactly as described in
        Section 4.2 ("numeric integration and the Brent's method for root
        finding"); :meth:`quantile` tabulates the same CDF instead.  Kept
        for verification — tests assert both paths agree.
        """
        if not 0.0 <= phi <= 1.0:
            raise EstimationError(f"phi must be in [0, 1], got {phi}")
        if self.is_point_mass:
            return self.sketch.min
        if phi <= 0.0:
            return self.sketch.min
        if phi >= 1.0:
            return self.sketch.max

        def objective(u: float) -> float:
            return float(self.cdf_scaled(np.asarray(u))) - phi

        if objective(-1.0) >= 0.0:
            return self.sketch.min
        if objective(1.0) <= 0.0:
            return self.sketch.max
        u_star = brentq(objective, -1.0, 1.0, xtol=1e-12)
        return float(self._from_domain(np.asarray(u_star)))

    # ------------------------------------------------------------------
    # Domain mapping helpers
    # ------------------------------------------------------------------

    def _to_domain(self, x: np.ndarray) -> np.ndarray:
        if self.basis.domain == "log":
            assert self.basis.log_support is not None
            return self.basis.log_support.scale(np.log(x))
        return self.basis.support.scale(x)

    def _from_domain(self, u: np.ndarray) -> np.ndarray:
        if self.basis.domain == "log":
            assert self.basis.log_support is not None
            return np.exp(self.basis.log_support.unscale(u))
        return self.basis.support.unscale(u)


def estimate_quantiles(sketch: MomentsSketch, phis, config: SolverConfig | None = None,
                       k1: int | None = None, k2: int | None = None) -> np.ndarray:
    """One-shot helper: fit the estimator and evaluate a list of quantiles."""
    estimator = QuantileEstimator.fit(sketch, config=config, k1=k1, k2=k2)
    return estimator.quantiles(np.asarray(phis, dtype=float))


def estimate_quantile(sketch: MomentsSketch, phi: float,
                      config: SolverConfig | None = None) -> float:
    """Convenience scalar wrapper over :func:`estimate_quantiles`."""
    return float(estimate_quantiles(sketch, [phi], config=config)[0])


def safe_estimate_quantiles(sketch: MomentsSketch, phis,
                            config: SolverConfig | None = None) -> np.ndarray:
    """Quantiles with a graceful fallback when the solver cannot converge.

    On :class:`ConvergenceError` (near-discrete data) falls back to a
    two-point-mass model at the support endpoints matching the first moment
    — crude, but always defined, mirroring how an engine must degrade.
    """
    try:
        return estimate_quantiles(sketch, phis, config=config)
    except ConvergenceError:
        phis = np.asarray(phis, dtype=float)
        if not sketch.max > sketch.min:
            return np.full(phis.shape, sketch.min)
        mean = sketch.power_sums[1] / sketch.count
        weight_hi = (mean - sketch.min) / (sketch.max - sketch.min)
        return np.where(phis <= 1.0 - weight_hi, sketch.min, sketch.max)
