"""Maximum-entropy solver for the moments sketch (Sections 4.2-4.3, App. A).

Given the Chebyshev moments derived from a sketch, we solve the dual of the
constrained entropy-maximization problem (Problem 4 in the paper):

    minimize  L(theta) = integral exp(sum_i theta_i m~_i(u)) du - theta . d

over ``theta`` in R^(1 + k1 + k2), where ``m~_i`` are Chebyshev-conditioned
basis functions and ``d`` the observed Chebyshev moments (d_0 = 1 is the
normalization constraint).  The minimizer yields the max-entropy pdf
``f(u; theta) = exp(theta . m~(u))`` whose quantiles estimate the dataset's.

Implementation choices mirroring Section 4.3:

* **Chebyshev basis** for conditioning (kappa ~ 10 instead of ~1e31).
* **Clenshaw-Curtis quadrature on a fixed cosine grid** for every integral.
  Evaluating basis functions once on the grid makes each Newton step two
  numpy matmuls: ``grad = B (w * f) - d`` and ``H = B diag(w * f) B^T``.
  This is the practical equivalent of the paper's Chebyshev polynomial
  approximation of the integrands (CC quadrature integrates the Chebyshev
  interpolant exactly), with the same cost profile: one cosine-transform-
  sized evaluation per iteration rather than O(k^2) adaptive integrals.
* **Damped Newton with backtracking line search** and a ridge fallback when
  the Hessian solve fails, matching the reference solver's safeguards.
* **Integration domain selection**: for long-tailed positive data the solver
  integrates in the scaled-log domain (the ``h(x) = e^x`` variant of
  Appendix A) so every basis function stays smooth; otherwise in the scaled
  linear domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .chebyshev import chebyshev_nodes, clenshaw_curtis_weights, eval_chebyshev
from .errors import ConvergenceError, SketchError
from .moments import (
    ScaledSupport,
    power_sums_to_chebyshev_moments,
)
from .sketch import MomentsSketch

#: Ratio max/min beyond which positive data is considered long-tailed and
#: the solver integrates in the log domain.
LOG_DOMAIN_SPREAD = 100.0


@dataclass(frozen=True)
class SolverConfig:
    """Tunables for the maximum entropy solve.

    Defaults follow the paper's evaluation setup: moments matched to within
    ``delta = 1e-9`` and condition number threshold ``kappa_max = 1e4``
    (Section 6.1).
    """

    grid_size: int = 128
    gradient_tol: float = 1e-9
    #: When Newton stalls (line search exhausted or iteration cap) with the
    #: gradient below this looser tolerance, the solution is accepted.  This
    #: happens when the recorded moments are only approximately consistent —
    #: e.g. after low-precision storage (Appendix C) — so no density can
    #: match them beyond their own noise floor.
    relaxed_gradient_tol: float = 1e-4
    max_iterations: int = 200
    max_condition_number: float = 1e4
    max_line_search_steps: int = 40
    ridge: float = 1e-12
    #: Grid size used when extracting the CDF for quantile queries.
    cdf_grid_size: int = 512
    #: Accepted moment mismatch when the converged solution is re-checked
    #: on a twice-finer grid.  Catches aliased "solutions" on near-discrete
    #: data, which must surface as convergence failures (Figure 8): true
    #: aliasing deviates by ~0.1+, while mildly discretized real data
    #: (retail) sits near 1e-5, so 1e-3 separates them with wide margin.
    verification_tol: float = 1e-3


@dataclass
class MaxEntBasis:
    """Basis functions and target moments for one solve.

    ``matrix`` holds the basis functions evaluated on the quadrature grid
    (row 0 is the constant function); ``targets`` the matching Chebyshev
    moments with ``targets[0] == 1``.  ``domain`` records the integration
    variable: "linear" (u = scaled x) or "log" (u = scaled log x).
    """

    k1: int
    k2: int
    domain: str
    support: ScaledSupport
    log_support: ScaledSupport | None
    nodes: np.ndarray
    weights: np.ndarray
    matrix: np.ndarray
    targets: np.ndarray
    std_moments: np.ndarray = field(default_factory=lambda: np.zeros(0))
    log_moments: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def size(self) -> int:
        return 1 + self.k1 + self.k2

    def node_values(self) -> np.ndarray:
        """Grid positions expressed in data units (x)."""
        if self.domain == "log":
            assert self.log_support is not None
            return np.exp(self.log_support.unscale(self.nodes))
        return self.support.unscale(self.nodes)


@dataclass
class MaxEntResult:
    """Converged solver state: the max-entropy density and diagnostics."""

    basis: MaxEntBasis
    theta: np.ndarray
    iterations: int
    gradient_norm: float
    converged: bool

    def density_on(self, u: np.ndarray, matrix: np.ndarray | None = None) -> np.ndarray:
        """Evaluate ``f(u; theta)`` on grid points ``u`` (domain units)."""
        if matrix is None:
            matrix = _basis_matrix_on(self.basis, u)
        return np.exp(self.theta @ matrix)


def choose_domain(sketch: MomentsSketch, k2: int) -> str:
    """Pick the integration variable (Section 4.3 / Appendix A Eq. 8).

    Log-domain integration requires usable log moments; it is chosen when
    the data spans more than :data:`LOG_DOMAIN_SPREAD` multiplicatively,
    which is when the linear-domain log-basis functions oscillate too fast
    near the lower support edge for stable Chebyshev interpolation.
    """
    if k2 <= 0 or not sketch.has_log_moments:
        return "linear"
    if sketch.min <= 0:
        return "linear"
    if sketch.max / sketch.min > LOG_DOMAIN_SPREAD:
        return "log"
    return "linear"


def build_basis(sketch: MomentsSketch, k1: int, k2: int,
                config: SolverConfig | None = None,
                domain: str | None = None) -> MaxEntBasis:
    """Assemble the quadrature grid, basis matrix, and target moments.

    ``k1`` standard and ``k2`` log moments are used (Section 4.2's
    "Optimization" paragraph); ``k2`` is forced to zero when the sketch has
    no usable log moments.  ``domain`` overrides the automatic integration
    variable choice, which the lesion-study estimators use.
    """
    config = config or SolverConfig()
    sketch.require_nonempty()
    if k2 > 0 and not sketch.has_log_moments:
        k2 = 0
    if k1 < 0 or k2 < 0 or k1 + k2 == 0:
        raise SketchError(f"invalid moment counts k1={k1}, k2={k2}")
    if max(k1, k2) > sketch.k:
        raise SketchError(f"requested order exceeds sketch order {sketch.k}")

    support = ScaledSupport(sketch.min, sketch.max)
    log_support = None
    if sketch.has_log_moments:
        log_support = ScaledSupport(float(np.log(sketch.min)), float(np.log(sketch.max)))

    if domain is None:
        domain = choose_domain(sketch, k2)
    if domain == "log" and log_support is None:
        raise SketchError("log-domain integration requires positive data")

    # Target Chebyshev moments (domain independent: expectations over x).
    d_std = np.zeros(0)
    d_log = np.zeros(0)
    if k1 > 0:
        d_std = power_sums_to_chebyshev_moments(
            sketch.power_sums[: k1 + 1], sketch.count, support)
    if k2 > 0:
        assert log_support is not None
        d_log = power_sums_to_chebyshev_moments(
            sketch.log_sums[: k2 + 1], sketch.count, log_support)

    nodes = chebyshev_nodes(config.grid_size)
    weights = clenshaw_curtis_weights(config.grid_size)

    basis = MaxEntBasis(
        k1=k1, k2=k2, domain=domain, support=support, log_support=log_support,
        nodes=nodes, weights=weights, matrix=np.zeros((0, 0)),
        targets=np.zeros(0), std_moments=d_std, log_moments=d_log,
    )
    basis.matrix = _basis_matrix_on(basis, nodes)
    targets = np.ones(basis.size)
    if k1 > 0:
        targets[1:1 + k1] = d_std[1:]
    if k2 > 0:
        targets[1 + k1:] = d_log[1:]
    basis.targets = targets
    return basis


def build_bases_batch(sketches, k1s, k2s,
                      config: SolverConfig | None = None) -> list[MaxEntBasis]:
    """:func:`build_basis` for many sketches, stacking matrix evaluation.

    Per-sketch validation, domain choice, and target moments replicate
    the scalar path exactly; the basis-function evaluation — the O(k^2)
    Chebyshev recurrences that dominate scalar construction — runs once
    per distinct ``(k1, k2, domain)`` shape over stacked ``(P, grid)``
    argument arrays.  Every returned basis is bit-for-bit what
    ``build_basis`` produces for the same sketch.
    """
    config = config or SolverConfig()
    nodes = chebyshev_nodes(config.grid_size)
    weights = clenshaw_curtis_weights(config.grid_size)
    bases: list[MaxEntBasis] = []
    groups: dict[tuple, list[int]] = {}
    for index, (sketch, k1, k2) in enumerate(zip(sketches, k1s, k2s)):
        sketch.require_nonempty()
        if k2 > 0 and not sketch.has_log_moments:
            k2 = 0
        if k1 < 0 or k2 < 0 or k1 + k2 == 0:
            raise SketchError(f"invalid moment counts k1={k1}, k2={k2}")
        if max(k1, k2) > sketch.k:
            raise SketchError(f"requested order exceeds sketch order {sketch.k}")
        support = ScaledSupport(sketch.min, sketch.max)
        log_support = None
        if sketch.has_log_moments:
            log_support = ScaledSupport(float(np.log(sketch.min)),
                                        float(np.log(sketch.max)))
        domain = choose_domain(sketch, k2)
        d_std = np.zeros(0)
        d_log = np.zeros(0)
        if k1 > 0:
            d_std = power_sums_to_chebyshev_moments(
                sketch.power_sums[: k1 + 1], sketch.count, support)
        if k2 > 0:
            assert log_support is not None
            d_log = power_sums_to_chebyshev_moments(
                sketch.log_sums[: k2 + 1], sketch.count, log_support)
        basis = MaxEntBasis(
            k1=k1, k2=k2, domain=domain, support=support,
            log_support=log_support, nodes=nodes, weights=weights,
            matrix=np.zeros((0, 0)), targets=np.zeros(0),
            std_moments=d_std, log_moments=d_log)
        targets = np.ones(basis.size)
        if k1 > 0:
            targets[1:1 + k1] = d_std[1:]
        if k2 > 0:
            targets[1 + k1:] = d_log[1:]
        basis.targets = targets
        bases.append(basis)
        groups.setdefault((k1, k2, domain), []).append(index)
    for indices in groups.values():
        stacked = _basis_matrices_stacked([bases[i] for i in indices], nodes)
        for position, index in enumerate(indices):
            bases[index].matrix = stacked[position]
    return bases


def _basis_matrices_stacked(bases: list, u: np.ndarray) -> np.ndarray:
    """Basis matrices of same-shape bases on grid ``u``, stacked ``(P, m, G)``.

    All bases must share ``(k1, k2, domain)``.  Every operation is
    element-wise over the stacked rows, so row ``p`` equals — bit for
    bit — ``_basis_matrix_on(bases[p], u)``.
    """
    first = bases[0]
    k1, k2, domain = first.k1, first.k2, first.domain
    u = np.asarray(u, dtype=float)
    count = len(bases)
    out = np.empty((count, 1 + k1 + k2, u.size))
    out[:, 0, :] = 1.0
    if domain == "linear":
        std_arg: np.ndarray | None = np.broadcast_to(u, (count, u.size))
        log_arg = None
        if k2 > 0:
            centers = np.array([b.support.center for b in bases])
            halves = np.array([b.support.half_width for b in bases])
            los = np.array([b.support.lo for b in bases])
            x = np.maximum(centers[:, None] + halves[:, None] * u,
                           los[:, None])
            log_centers = np.array([b.log_support.center for b in bases])
            log_halves = np.array([b.log_support.half_width for b in bases])
            log_arg = np.clip(
                (np.log(x) - log_centers[:, None]) / log_halves[:, None],
                -1.0, 1.0)
    else:
        log_arg = np.broadcast_to(u, (count, u.size))
        std_arg = None
        if k1 > 0:
            log_centers = np.array([b.log_support.center for b in bases])
            log_halves = np.array([b.log_support.half_width for b in bases])
            x = np.exp(log_centers[:, None] + log_halves[:, None] * u)
            centers = np.array([b.support.center for b in bases])
            halves = np.array([b.support.half_width for b in bases])
            std_arg = np.clip((x - centers[:, None]) / halves[:, None],
                              -1.0, 1.0)
    # One chained recurrence per argument family: T_k = 2u T_{k-1} - T_{k-2}
    # yields every order in O(k) passes with values bit-identical to the
    # per-order eval_chebyshev restarts (same operations, same order).
    _chebyshev_rows_into(out, std_arg, offset=0, orders=k1)
    _chebyshev_rows_into(out, log_arg, offset=k1, orders=k2)
    return out


def _chebyshev_rows_into(out: np.ndarray, arg: np.ndarray | None,
                         offset: int, orders: int) -> None:
    """Fill ``out[:, offset + 1 .. offset + orders]`` with ``T_i(arg)``."""
    if orders <= 0:
        return
    assert arg is not None
    out[:, offset + 1, :] = arg
    for order in range(2, orders + 1):
        # T_0 of every family is the shared constant row 0.
        prev2 = (out[:, 0, :] if order == 2
                 else out[:, offset + order - 2, :])
        out[:, offset + order, :] = (2.0 * arg * out[:, offset + order - 1, :]
                                     - prev2)


def _basis_matrix_on(basis: MaxEntBasis, u: np.ndarray) -> np.ndarray:
    """Evaluate every basis function at integration-domain positions ``u``.

    In the linear domain the standard basis is ``T_i(u)`` and the log basis
    ``T_j(s2(log(s1^{-1}(u))))``; in the log domain the roles swap.  Both
    mixed-basis arguments are clipped to [-1, 1]: the analytic map lands
    inside by construction and only float slop can poke outside.
    """
    u = np.asarray(u, dtype=float)
    rows = [np.ones_like(u)]
    if basis.domain == "linear":
        std_arg = u
        log_arg = None
        if basis.k2 > 0:
            # Log moments are only usable for positive data, so xmin > 0 here;
            # clamp to the support edge because unscale(-1) can round below it.
            assert basis.log_support is not None
            x = np.maximum(basis.support.unscale(u), basis.support.lo)
            log_arg = np.clip(basis.log_support.scale(np.log(x)), -1.0, 1.0)
    else:
        assert basis.log_support is not None
        log_arg = u
        std_arg = None
        if basis.k1 > 0:
            x = np.exp(basis.log_support.unscale(u))
            std_arg = np.clip(basis.support.scale(x), -1.0, 1.0)
    for i in range(1, basis.k1 + 1):
        rows.append(eval_chebyshev(i, std_arg))
    for j in range(1, basis.k2 + 1):
        rows.append(eval_chebyshev(j, log_arg))
    return np.asarray(rows)


def dual_potential(theta: np.ndarray, B: np.ndarray, w: np.ndarray,
                   d: np.ndarray) -> float:
    """The dual objective ``L(theta) = integral f - theta . d`` on the grid.

    Part of the Newton kernel shared with :mod:`repro.core.batch_solver`
    (whose stacked evaluation reproduces these operations row-wise).
    Overflow is expected when a line search probes a too-long step; the
    resulting ``inf`` is rejected by the Armijo test.
    """
    with np.errstate(over="ignore"):
        f = np.exp(theta @ B)
    return float(np.dot(w, f) - np.dot(theta, d))


def newton_system(B: np.ndarray, wf: np.ndarray, d: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Gradient and Hessian of the dual at the density with ``w*f = wf``.

    ``grad = B (w f) - d`` and ``H = B diag(w f) B^T`` — the two matmuls
    that make up one Newton step (Section 4.3).  Shared kernel: the
    batched solver evaluates the same contractions as stacked matmuls,
    which numpy performs slice-by-slice with the identical BLAS kernels.
    """
    grad = B @ wf - d
    hessian = (B * wf) @ B.T
    return grad, hessian


def solve(basis: MaxEntBasis, config: SolverConfig | None = None,
          theta0: np.ndarray | None = None) -> MaxEntResult:
    """Run damped Newton on the dual potential L(theta) (Appendix A.1).

    Raises :class:`ConvergenceError` when the iteration fails — the paper
    observes this on near-discrete data (Figure 8); callers may fall back to
    moment bounds.  :func:`repro.core.batch_solver.solve_batch` runs the
    same iteration for many bases at once.
    """
    config = config or SolverConfig()
    B = basis.matrix
    w = basis.weights
    d = basis.targets
    m = basis.size

    theta = np.zeros(m) if theta0 is None else np.asarray(theta0, dtype=float).copy()
    if theta0 is None:
        theta[0] = np.log(0.5)  # uniform density integrating to 1 on [-1, 1]

    def potential(th: np.ndarray) -> float:
        return dual_potential(th, B, w, d)

    lvalue = potential(theta)
    grad_norm = np.inf
    for iteration in range(1, config.max_iterations + 1):
        with np.errstate(over="ignore"):
            f = np.exp(theta @ B)
        if not np.all(np.isfinite(f)):
            raise ConvergenceError(
                "density overflow during Newton iteration",
                iterations=iteration, grad_norm=grad_norm)
        wf = w * f
        grad, hessian = newton_system(B, wf, d)
        grad_norm = float(np.max(np.abs(grad)))
        if grad_norm < config.gradient_tol:
            result = MaxEntResult(basis, theta, iteration - 1, grad_norm, True)
            _verify_solution(basis, result, config)
            return result
        step = _solve_newton_step(hessian, grad, config.ridge)
        # Backtracking line search (Armijo on the convex dual).
        slope = float(np.dot(grad, step))
        alpha = 1.0
        for _ in range(config.max_line_search_steps):
            candidate = theta - alpha * step
            cvalue = potential(candidate)
            if np.isfinite(cvalue) and cvalue <= lvalue - 1e-4 * alpha * slope:
                theta = candidate
                lvalue = cvalue
                break
            alpha *= 0.5
        else:
            if grad_norm <= config.relaxed_gradient_tol:
                result = MaxEntResult(basis, theta, iteration, grad_norm, True)
                _verify_solution(basis, result, config)
                return result
            raise ConvergenceError(
                "line search failed to make progress",
                iterations=iteration, grad_norm=grad_norm)
    if grad_norm <= config.relaxed_gradient_tol:
        result = MaxEntResult(basis, theta, config.max_iterations, grad_norm, True)
        _verify_solution(basis, result, config)
        return result
    raise ConvergenceError(
        f"Newton did not reach tolerance {config.gradient_tol:g} in "
        f"{config.max_iterations} iterations (|grad| = {grad_norm:.3g})",
        iterations=config.max_iterations, grad_norm=grad_norm)


def _verify_solution(basis: MaxEntBasis, result: MaxEntResult,
                     config: SolverConfig) -> None:
    """Re-check the matched moments on a twice-finer quadrature grid.

    A density whose peaks are narrower than the solve grid can satisfy the
    grid-quadrature moment constraints while wildly violating the true
    integrals (grid aliasing).  This happens exactly on the near-discrete
    datasets for which the paper reports non-convergence (Figure 8), so the
    aliasing is surfaced as :class:`ConvergenceError` rather than as a
    silently wrong estimate.
    """
    fine_nodes = chebyshev_nodes(2 * config.grid_size)
    fine_weights = clenshaw_curtis_weights(2 * config.grid_size)
    fine_matrix = _basis_matrix_on(basis, fine_nodes)
    # Aliased solutions can overflow exp and propagate inf*0 -> nan through
    # the matmul; the non-finite deviation is exactly what the check below
    # rejects, so the intermediate warnings are expected.
    with np.errstate(all="ignore"):
        f = np.exp(result.theta @ fine_matrix)
        achieved = fine_matrix @ (fine_weights * f)
    deviation = float(np.max(np.abs(achieved - basis.targets)))
    # A relaxed-convergence solution cannot verify below its own gradient
    # floor; scale the budget accordingly while still catching aliasing
    # (whose deviations are orders of magnitude above any noise floor).
    tolerance = max(config.verification_tol, 100.0 * result.gradient_norm)
    if not np.isfinite(deviation) or deviation > tolerance:
        raise ConvergenceError(
            f"solution fails fine-grid verification (moment deviation "
            f"{deviation:.3g} > {tolerance:g}); the data is "
            "likely too discrete for a max-entropy density",
            iterations=result.iterations, grad_norm=deviation)


def _solve_newton_step(hessian: np.ndarray, grad: np.ndarray, ridge: float) -> np.ndarray:
    """Solve H step = grad with progressive ridge regularization."""
    damping = 0.0
    eye = np.eye(hessian.shape[0])
    for _ in range(8):
        try:
            return np.linalg.solve(hessian + damping * eye, grad)
        except np.linalg.LinAlgError:
            damping = max(ridge, damping * 100.0 if damping else ridge)
    # Last resort: gradient direction scaled to unit step.
    norm = np.linalg.norm(grad)
    return grad / norm if norm > 0 else grad


def uniform_hessian(basis: MaxEntBasis, indices: np.ndarray | None = None) -> np.ndarray:
    """Hessian of L at the uniform initial density, used by the selector.

    ``H_ij = 0.5 * integral m~_i m~_j du`` — the Gram matrix of the basis
    under the uniform measure.  ``indices`` restricts to a subset of basis
    rows (the greedy k1/k2 search evaluates many subsets).
    """
    B = basis.matrix if indices is None else basis.matrix[indices]
    return (B * (0.5 * basis.weights)) @ B.T


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number, inf for singular matrices."""
    try:
        return float(np.linalg.cond(matrix))
    except np.linalg.LinAlgError:  # pragma: no cover - cond rarely raises
        return float("inf")
