"""Discretized-support estimators: ``svd``, ``cvx-min``, ``cvx-maxent``.

Each discretizes the scaled support into ``num_points`` cells (the paper
uses 1000 uniformly spaced points) and solves for a discrete density
matching the moment constraints:

* ``svd`` — the minimum-norm solution of the underdetermined linear system
  ``V p = moments`` via SVD pseudo-inverse, clipped to be non-negative.
* ``cvx-min`` — minimize the maximum density subject to the constraints: a
  linear program (variables p plus the bound t), solved with HiGHS.
* ``cvx-maxent`` — maximize entropy subject to the constraints, "as
  described in Chapter 7 of Boyd & Vandenberghe".  The paper solved the
  primal with the ECOS SOCP solver (unavailable offline); we solve the
  identical discretized program through its smooth dual with a generic
  first-order scipy optimizer, which preserves the comparison's point —
  a generic-solver formulation is orders of magnitude slower than the
  specialized Newton solver of Section 4.3 (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog, minimize

from ..core.errors import EstimationError
from .base import (
    MomentEstimator,
    MomentProblem,
    grid_moment_matrix,
    quantiles_from_pmf,
    support_grid,
)


class SvdEstimator(MomentEstimator):
    """Minimum-norm discrete density via SVD pseudo-inverse."""

    name = "svd"

    def __init__(self, num_points: int = 1000):
        self.num_points = num_points

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        grid = support_grid(self.num_points)
        vander = grid_moment_matrix(grid, problem.moments.size - 1)
        pmf, *_ = np.linalg.lstsq(vander, problem.moments, rcond=None)
        return quantiles_from_pmf(grid, pmf, problem, phis)


class CvxMinEstimator(MomentEstimator):
    """Minimal-maximum-density discrete distribution (linear program)."""

    name = "cvx-min"

    def __init__(self, num_points: int = 1000):
        self.num_points = num_points

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        grid = support_grid(self.num_points)
        order = problem.moments.size - 1
        vander = grid_moment_matrix(grid, order)
        n = grid.size
        # Variables: p_0..p_{n-1}, t.  Minimize t with p_i <= t, V p = m.
        cost = np.zeros(n + 1)
        cost[-1] = 1.0
        a_ub = np.hstack([np.eye(n), -np.ones((n, 1))])
        b_ub = np.zeros(n)
        a_eq = np.hstack([vander, np.zeros((order + 1, 1))])
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq,
                         b_eq=problem.moments,
                         bounds=[(0, None)] * n + [(0, None)],
                         method="highs")
        if not result.success:
            raise EstimationError(f"cvx-min LP failed: {result.message}")
        return quantiles_from_pmf(grid, result.x[:n], problem, phis)


class CvxMaxEntEstimator(MomentEstimator):
    """Discretized maximum entropy via a generic scipy solver.

    Solves the dual ``min_theta  log-sum-exp(V^T theta) - theta . m`` (the
    discrete analogue of Eq. 5) with BFGS *as a black box* — no Chebyshev
    conditioning, no closed-form Hessian — then recovers the primal
    density ``p propto exp(V^T theta)``.
    """

    name = "cvx-maxent"

    def __init__(self, num_points: int = 1000):
        self.num_points = num_points

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        grid = support_grid(self.num_points)
        order = problem.moments.size - 1
        vander = grid_moment_matrix(grid, order)
        target = problem.moments

        def dual(theta: np.ndarray) -> float:
            logits = theta @ vander
            peak = logits.max()
            return peak + float(np.log(np.exp(logits - peak).sum())) - float(theta @ target)

        result = minimize(dual, np.zeros(order + 1), method="BFGS",
                          options={"maxiter": 2000, "gtol": 1e-10})
        logits = result.x @ vander
        pmf = np.exp(logits - logits.max())
        return quantiles_from_pmf(grid, pmf, problem, phis)
