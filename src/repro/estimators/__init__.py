"""Alternative moment-based quantile estimators (the Figure 10 lesion study)."""

from .base import MomentEstimator, MomentProblem, build_problem
from .closed_form import GaussianEstimator, MnatsakanovEstimator
from .discretized import CvxMaxEntEstimator, CvxMinEstimator, SvdEstimator
from .maxent_variants import BfgsEstimator, NaiveNewtonEstimator, OptEstimator

#: Figure 10 x-axis order.
LESION_ESTIMATORS = (
    "gaussian", "mnat", "svd", "cvx-min", "cvx-maxent", "newton", "bfgs", "opt",
)


def make_estimator(name: str, **kwargs) -> MomentEstimator:
    """Instantiate a lesion-study estimator by its Figure 10 name."""
    classes = {
        "gaussian": GaussianEstimator,
        "mnat": MnatsakanovEstimator,
        "svd": SvdEstimator,
        "cvx-min": CvxMinEstimator,
        "cvx-maxent": CvxMaxEntEstimator,
        "newton": NaiveNewtonEstimator,
        "bfgs": BfgsEstimator,
        "opt": OptEstimator,
    }
    if name not in classes:
        raise ValueError(f"unknown estimator {name!r}; known: {sorted(classes)}")
    return classes[name](**kwargs)


__all__ = [
    "MomentEstimator", "MomentProblem", "build_problem", "make_estimator",
    "LESION_ESTIMATORS", "GaussianEstimator", "MnatsakanovEstimator",
    "SvdEstimator", "CvxMinEstimator", "CvxMaxEntEstimator",
    "NaiveNewtonEstimator", "BfgsEstimator", "OptEstimator",
]
