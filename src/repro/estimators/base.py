"""Shared scaffolding for the lesion-study quantile estimators (Section 6.3).

Every estimator consumes the same inputs — the moments recorded in a
:class:`~repro.core.sketch.MomentsSketch` — and produces quantile estimates,
so Figure 10 isolates the estimation *method* while holding the summary
fixed.  Following the paper's protocol, the milan comparison feeds only the
log moments and the hepmass comparison only the standard moments; the
``use_log`` switch selects which family an estimator sees.

Estimators operating on a discretized support (svd, cvx-min, cvx-maxent)
share the grid helpers here; estimators solving the max-entropy dual
(newton, bfgs, opt) share the basis construction in :mod:`repro.core.solver`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from ..core.errors import EstimationError
from ..core.moments import ScaledSupport, raw_moments, shifted_scaled_moments
from ..core.sketch import MomentsSketch


@dataclass(frozen=True)
class MomentProblem:
    """Moments of data scaled onto [-1, 1], ready for any estimator.

    ``moments[i] = E[u**i]`` with u the scaled data (or scaled log-data when
    ``use_log``); ``support`` maps back to data units.
    """

    moments: np.ndarray
    support: ScaledSupport
    use_log: bool
    count: float

    def to_data_units(self, u: np.ndarray) -> np.ndarray:
        x = self.support.unscale(np.asarray(u, dtype=float))
        return np.exp(x) if self.use_log else x


def build_problem(sketch: MomentsSketch, k: int | None = None,
                  use_log: bool = False) -> MomentProblem:
    """Extract a scaled moment problem from a sketch.

    ``use_log=True`` uses the log-moment family (requires positive data);
    the support then covers ``[log xmin, log xmax]``.
    """
    sketch.require_nonempty()
    if k is None:
        k = sketch.k
    if k > sketch.k:
        raise EstimationError(f"sketch only holds {sketch.k} moments, asked for {k}")
    if use_log:
        if not sketch.has_log_moments:
            raise EstimationError("log moments unavailable for this sketch")
        support = ScaledSupport(float(np.log(sketch.min)), float(np.log(sketch.max)))
        mu = raw_moments(sketch.log_sums[: k + 1], sketch.count)
    else:
        support = ScaledSupport(sketch.min, sketch.max)
        mu = raw_moments(sketch.power_sums[: k + 1], sketch.count)
    scaled = shifted_scaled_moments(mu, support)
    return MomentProblem(moments=scaled, support=support, use_log=use_log,
                         count=sketch.count)


class MomentEstimator(abc.ABC):
    """A quantile estimator driven purely by sketch moments."""

    #: Display name matching Figure 10's x-axis.
    name: str = "abstract"

    @abc.abstractmethod
    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        """Quantile estimates (data units) for each phi."""

    def estimate_from_sketch(self, sketch: MomentsSketch, phis, k: int | None = None,
                             use_log: bool = False) -> np.ndarray:
        problem = build_problem(sketch, k=k, use_log=use_log)
        return self.quantiles(problem, np.asarray(phis, dtype=float))

    def timed(self, problem: MomentProblem, phis: np.ndarray
              ) -> tuple[np.ndarray, float]:
        """(estimates, seconds) — the two axes of Figure 10."""
        start = time.perf_counter()
        estimates = self.quantiles(problem, np.asarray(phis, dtype=float))
        return estimates, time.perf_counter() - start


# ----------------------------------------------------------------------
# Discretized-support helpers
# ----------------------------------------------------------------------

def support_grid(num_points: int = 1000) -> np.ndarray:
    """Uniform discretization of [-1, 1] (the paper uses 1000 points)."""
    return np.linspace(-1.0, 1.0, num_points)


def grid_moment_matrix(grid: np.ndarray, order: int) -> np.ndarray:
    """Vandermonde ``V[i, j] = grid[j]**i`` for the discrete moment
    constraints ``V p = moments``."""
    return np.vander(grid, order + 1, increasing=True).T


def quantiles_from_pmf(grid: np.ndarray, pmf: np.ndarray,
                       problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
    """Invert the CDF of a discrete density on the grid."""
    pmf = np.clip(np.asarray(pmf, dtype=float), 0.0, None)
    total = pmf.sum()
    if total <= 0:
        raise EstimationError("estimated density has no mass")
    cdf = np.cumsum(pmf) / total
    u = np.interp(phis, cdf, grid)
    return problem.to_data_units(u)
