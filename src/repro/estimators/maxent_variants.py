"""Maximum-entropy solver variants for the lesion study: ``newton``,
``bfgs``, and ``opt`` (Section 6.3, Figure 10).

All three solve the same continuous dual problem over the same Chebyshev
basis; they differ only in the machinery, isolating the contribution of
each Section 4.3 optimization:

* ``newton`` — Newton's method, but every gradient/Hessian entry is an
  independent adaptive quadrature (scipy's Gauss-Kronrod, standing in for
  the paper's adaptive Romberg).  This is the "no efficient integration"
  lesion: O(k^2) slow integrals per iteration.
* ``bfgs`` — first-order L-BFGS on the dual with fast grid integration for
  the gradient: cheap steps, but many more of them, and no reuse of the
  (nearly free) Hessian.
* ``opt`` — the full Section 4.3 solver (:mod:`repro.core.solver`).
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad_vec
from scipy.optimize import minimize

from ..core.errors import ConvergenceError, EstimationError
from ..core.quantile import QuantileEstimator
from ..core.sketch import MomentsSketch
from ..core.solver import SolverConfig, _basis_matrix_on, build_basis
from ..core.chebyshev import antiderivative_series, eval_chebyshev_series, interpolation_coefficients
from ..core.solver import chebyshev_nodes
from .base import MomentEstimator, MomentProblem


def _sketch_from_problem(problem: MomentProblem, sketch: MomentsSketch) -> tuple[int, int]:
    """Moment counts (k1, k2) realizing the lesion protocol on a sketch.

    The lesion feeds either only standard moments or only log moments;
    translate that into the (k1, k2) arguments of the core solver.
    """
    k = problem.moments.size - 1
    return (0, k) if problem.use_log else (k, 0)


class OptEstimator(MomentEstimator):
    """``opt``: the production solver of Section 4.3 (reference point)."""

    name = "opt"

    def __init__(self, config: SolverConfig | None = None):
        self.config = config or SolverConfig()
        self._sketch: MomentsSketch | None = None

    def bind(self, sketch: MomentsSketch) -> "OptEstimator":
        """Attach the source sketch (the core solver needs full state)."""
        self._sketch = sketch
        return self

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        if self._sketch is None:
            raise EstimationError("OptEstimator.bind(sketch) must be called first")
        k1, k2 = _sketch_from_problem(problem, self._sketch)
        estimator = QuantileEstimator.fit(self._sketch, config=self.config,
                                          k1=max(k1, 0), k2=k2)
        return estimator.quantiles(phis)


class _DualSolverEstimator(MomentEstimator):
    """Shared basis/CDF plumbing for the newton and bfgs variants."""

    def __init__(self, config: SolverConfig | None = None):
        self.config = config or SolverConfig()
        self._sketch: MomentsSketch | None = None

    def bind(self, sketch: MomentsSketch) -> "_DualSolverEstimator":
        self._sketch = sketch
        return self

    def _build(self, problem: MomentProblem):
        if self._sketch is None:
            raise EstimationError("bind(sketch) must be called first")
        k1, k2 = _sketch_from_problem(problem, self._sketch)
        domain = "log" if problem.use_log else "linear"
        return build_basis(self._sketch, k1, k2, self.config, domain=domain)

    def _quantiles_from_theta(self, basis, theta: np.ndarray,
                              problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        nodes = chebyshev_nodes(self.config.cdf_grid_size)
        matrix = _basis_matrix_on(basis, nodes)
        density = np.exp(theta @ matrix)
        coeffs = interpolation_coefficients(density)
        anti = antiderivative_series(coeffs)
        grid = np.linspace(-1.0, 1.0, 2049)
        raw = eval_chebyshev_series(anti, grid)
        cdf = (raw - raw[0]) / max(raw[-1] - raw[0], 1e-300)
        cdf = np.maximum.accumulate(np.clip(cdf, 0.0, 1.0))
        u = np.interp(phis, cdf, grid)
        return problem.to_data_units(u)


class NaiveNewtonEstimator(_DualSolverEstimator):
    """``newton``: second-order solve with per-entry adaptive quadrature."""

    name = "newton"

    def __init__(self, config: SolverConfig | None = None, quad_limit: int = 50):
        super().__init__(config)
        self.quad_limit = quad_limit

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        basis = self._build(problem)
        m = basis.size
        d = basis.targets

        def integrands(u: float, theta: np.ndarray) -> np.ndarray:
            """All gradient + Hessian integrands at one point.

            Adaptive quadrature re-evaluates the basis functions and the
            exponential from scratch at every point — no interpolant reuse,
            which is exactly the cost the Section 4.3.1 optimization
            removes.
            """
            rows = _basis_matrix_on(basis, np.asarray([u]))[:, 0]
            f = float(np.exp(theta @ rows))
            outer = np.outer(rows, rows) * f
            return np.concatenate([rows * f, outer.ravel()])

        theta = np.zeros(m)
        theta[0] = np.log(0.5)
        for _ in range(self.config.max_iterations):
            values, _ = quad_vec(lambda u: integrands(u, theta), -1.0, 1.0,
                                 epsabs=1e-10, epsrel=1e-10, limit=self.quad_limit)
            grad = values[:m] - d
            hessian = values[m:].reshape(m, m)
            if float(np.max(np.abs(grad))) < 1e-8:
                return self._quantiles_from_theta(basis, theta, problem, phis)
            try:
                step = np.linalg.solve(hessian, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, grad, rcond=None)[0]
            theta = theta - step
        raise ConvergenceError("naive Newton failed to converge",
                               iterations=self.config.max_iterations)


class BfgsEstimator(_DualSolverEstimator):
    """``bfgs``: first-order L-BFGS-B on the dual (grad via grid quadrature)."""

    name = "bfgs"

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        basis = self._build(problem)
        B = basis.matrix
        w = basis.weights
        d = basis.targets

        def dual_and_grad(theta: np.ndarray) -> tuple[float, np.ndarray]:
            f = np.exp(theta @ B)
            wf = w * f
            return float(wf.sum() - theta @ d), B @ wf - d

        theta0 = np.zeros(basis.size)
        theta0[0] = np.log(0.5)
        result = minimize(dual_and_grad, theta0, jac=True, method="L-BFGS-B",
                          options={"maxiter": 5000, "ftol": 1e-16, "gtol": 1e-9})
        return self._quantiles_from_theta(basis, result.x, problem, phis)
