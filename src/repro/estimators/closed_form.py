"""Closed-form moment estimators: ``gaussian`` and ``mnat`` (Section 6.3).

These are the microsecond-scale baselines of Figure 10: no optimization, a
direct formula over the moments — and correspondingly at least 5x the error
of the maximum-entropy estimates.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb, ndtri

from .base import MomentEstimator, MomentProblem


class GaussianEstimator(MomentEstimator):
    """Fit a normal distribution to the first two moments.

    ``quantile(phi) = mean + std * Phi^{-1}(phi)`` — exact for Gaussian
    data (hence its respectable hepmass score in Figure 10) and badly
    biased on anything skewed.
    """

    name = "gaussian"

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        mean = problem.moments[1]
        variance = max(problem.moments[2] - mean ** 2, 0.0)
        std = float(np.sqrt(variance))
        phis = np.clip(phis, 1e-12, 1.0 - 1e-12)
        u = mean + std * ndtri(phis)
        return problem.to_data_units(np.clip(u, -1.0, 1.0))


class MnatsakanovEstimator(MomentEstimator):
    """Mnatsakanov's moment-inversion CDF reconstruction [58].

    For a distribution on [0, 1] with moments ``mu_0..mu_alpha``:

        F_alpha(x) = sum_{k <= alpha x} sum_{m=k}^{alpha}
                     C(alpha, m) C(m, k) (-1)^(m-k) mu_m

    The scaled [-1, 1] problem is first mapped onto [0, 1] via the affine
    change of variables (binomial re-expansion of the moments).  Quantiles
    invert the reconstructed stepwise CDF.
    """

    name = "mnat"

    def quantiles(self, problem: MomentProblem, phis: np.ndarray) -> np.ndarray:
        alpha = problem.moments.size - 1
        unit_moments = _moments_to_unit_interval(problem.moments)
        # Weight of each "cell" k/alpha: the inner alternating sum.
        weights = np.zeros(alpha + 1)
        for k in range(alpha + 1):
            m = np.arange(k, alpha + 1)
            terms = comb(alpha, m) * comb(m, k) * (-1.0) ** (m - k) * unit_moments[m]
            weights[k] = terms.sum()
        weights = np.clip(weights, 0.0, None)
        total = weights.sum()
        if total <= 0:
            weights = np.full(alpha + 1, 1.0 / (alpha + 1))
            total = 1.0
        cdf = np.cumsum(weights) / total
        cells = np.arange(alpha + 1) / alpha
        u01 = np.interp(phis, cdf, cells)
        return problem.to_data_units(2.0 * u01 - 1.0)


def _moments_to_unit_interval(moments: np.ndarray) -> np.ndarray:
    """Moments of ``(u + 1) / 2`` from moments of ``u`` on [-1, 1]."""
    order = moments.size - 1
    out = np.zeros(order + 1)
    for j in range(order + 1):
        i = np.arange(j + 1)
        out[j] = float(np.sum(comb(j, i) * moments[i]) / 2.0 ** j)
    return out
