"""repro: reproduction of "Moment-Based Quantile Sketches" (VLDB 2018)."""

from .core import (
    MomentsSketch, merge_all, QuantileEstimator,
    estimate_quantile, estimate_quantiles, safe_estimate_quantiles,
    SolverConfig, ReproError,
)
from .store import PackedSketchStore

__version__ = "1.2.0"


def __getattr__(name: str):
    # Lazy import: `repro.api` / `repro.ingest` pull in every engine
    # layer, which plain `import repro` users (sketch-only pipelines)
    # should not pay for.
    if name in ("api", "ingest"):
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MomentsSketch", "merge_all", "QuantileEstimator",
    "estimate_quantile", "estimate_quantiles", "safe_estimate_quantiles",
    "SolverConfig", "ReproError", "PackedSketchStore", "__version__",
]
