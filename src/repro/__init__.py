"""repro: reproduction of "Moment-Based Quantile Sketches" (VLDB 2018)."""

from .core import (
    MomentsSketch, merge_all, QuantileEstimator,
    estimate_quantile, estimate_quantiles, safe_estimate_quantiles,
    SolverConfig, ReproError,
)
from .store import PackedSketchStore

__version__ = "1.1.0"

__all__ = [
    "MomentsSketch", "merge_all", "QuantileEstimator",
    "estimate_quantile", "estimate_quantiles", "safe_estimate_quantiles",
    "SolverConfig", "ReproError", "PackedSketchStore", "__version__",
]
