"""Unified declarative query API (the repo's single public query surface).

One :class:`QuerySpec` describes a query; a :class:`QueryService` plans
it and executes it against any registered backend — data cube, Druid
engine, packed sketch store, window panes, or a simulated
:mod:`repro.cluster` scatter-gather cluster — returning a uniform
:class:`QueryResponse` with estimates, optional certified bounds, and
the Eq. 2 planner/merge/solve cost decomposition.  See
``examples/unified_api.py`` for one spec run against three backends.
"""

from .backends import (Backend, CubeBackend, DruidBackend, GroupRollupResult,
                       PackedStoreBackend, RollupResult, SummariesBackend,
                       WindowBackend, WindowedResult, as_backend,
                       register_adapter, sketch_of)
from .planner import QueryPlan, plan
from .service import BatchReport, QueryService, execute
from .spec import (KINDS, QueryResponse, QuerySpec, QueryTimings, WindowSpec,
                   normalize_q, qkey)

__all__ = [
    "Backend", "CubeBackend", "DruidBackend", "GroupRollupResult",
    "PackedStoreBackend", "RollupResult", "SummariesBackend", "WindowBackend",
    "WindowedResult", "as_backend", "register_adapter", "sketch_of",
    "QueryPlan", "plan", "BatchReport", "QueryService", "execute",
    "KINDS", "QueryResponse", "QuerySpec", "QueryTimings", "WindowSpec",
    "normalize_q", "qkey",
]
