"""Query planner: route a :class:`QuerySpec` to a backend execution mode.

The planner is deliberately small — the interesting decisions (packed
vectorized reduction vs per-object merge loop) live in the backends,
which know their storage layout.  What the planner owns is the *shape*
of execution:

* ``mode`` — whether the spec needs one roll-up scan, one group scan,
  or a sliding-window scan;
* ``scan_key`` — the identity under which
  :meth:`~repro.api.service.QueryService.execute_batch` shares one merge
  across specs hitting the same cell subset (same backend, measure,
  filters, interval, and grouping);
* ``fused_quantiles`` — the multi-quantile targets answered from a
  single merge + a single estimator solve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import QueryError
from .backends import Backend
from .spec import QuerySpec

#: Execution shapes.
MODES = ("rollup", "group", "windowed")


@dataclass(frozen=True)
class QueryPlan:
    """Resolved execution shape for one spec on one backend."""

    spec: QuerySpec
    backend_name: str
    mode: str
    route: str
    scan_key: tuple | None
    fused_quantiles: tuple[float, ...]

    @property
    def shareable(self) -> bool:
        return self.scan_key is not None


def plan(spec: QuerySpec, backend: Backend,
         backend_name: str | None = None) -> QueryPlan:
    """Resolve the execution mode, merge route, and scan-sharing key."""
    name = backend_name or backend.name
    if spec.kind not in backend.kinds:
        raise QueryError(
            f"backend {name!r} does not support {spec.kind!r} queries "
            f"(supports {sorted(backend.kinds)})")
    if spec.kind == "windowed":
        mode = "windowed"
        scan_key = None  # window scans touch every pane w times; never shared
        route = spec.window.strategy if spec.window else "turnstile"
    elif spec.kind in ("group_by", "top_n") or (
            spec.kind == "threshold_count" and spec.group_dimension):
        mode = "group"
        scan_key = (name, "group") + spec.scan_signature()
        route = "packed" if backend.supports_packed else "loop"
    else:
        mode = "rollup"
        scan_key = (name, "rollup") + spec.scan_signature()
        route = "packed" if backend.supports_packed else "loop"
    return QueryPlan(spec=spec, backend_name=name, mode=mode, route=route,
                     scan_key=scan_key, fused_quantiles=spec.quantiles)


def solve_signature(spec: QuerySpec) -> tuple:
    """Hashable identity of everything *after* the merge.

    Two specs with equal scan signatures share a merged partial; they
    only share a solved :class:`~repro.api.QueryResponse` when the solve
    inputs match too — same kind, targets, estimator, cascade stages,
    and reporting flags.  The optimizer's response-cache key is
    ``scan_key + solve_signature`` (the service appends its own solver
    configuration, which also shapes payloads).
    """
    return (spec.kind, spec.quantiles, spec.thresholds, spec.n,
            spec.estimator, spec.cascade_stages, spec.report_bounds,
            spec.report_moments)
