"""Backend protocol and adapters for the unified query API.

A :class:`Backend` turns the storage-specific half of a query — locate
the matching cells, merge their summaries — into two primitives the
service layer consumes:

* :meth:`Backend.rollup` — merge every matching cell into one summary;
* :meth:`Backend.group_rollup` — one merged summary per value of the
  grouping dimension.

Adapters are provided for the four aggregation systems in this
repository: :class:`CubeBackend` (:class:`~repro.datacube.DataCube`),
:class:`DruidBackend` (:class:`~repro.druid.DruidEngine`),
:class:`PackedStoreBackend` (:class:`~repro.store.PackedSketchStore`),
and :class:`WindowBackend` (pre-aggregated panes, which additionally
answers ``windowed`` alert queries).  :class:`SummariesBackend` covers
any plain sequence of mergeable summaries (the workload harness's object
cells).  All adapters reuse the engines' own merge code paths, so
results routed through the API are identical — bit-for-bit on moments —
to the legacy per-engine entry points.

:func:`as_backend` adapts a raw engine object via the module-level
:data:`ADAPTERS` registry, which downstream systems can extend with
:func:`register_adapter`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.errors import QueryError
from ..core.sketch import MomentsSketch
from ..core.solver import SolverConfig
from ..datacube.cube import DataCube
from ..druid.aggregators import MomentsSketchAggregator, SummaryState
from ..druid.engine import DruidEngine
from ..store import PackedSketchStore
from ..summaries.moments_summary import MomentsSummary
from ..window.sliding import (Pane, TurnstileWindowProcessor, pack_panes,
                              remerge_windows_packed)
from ..window.streaming import StreamingWindowMonitor
from .spec import QuerySpec


def sketch_of(summary) -> MomentsSketch | None:
    """The raw moments sketch behind a summary, if it has one."""
    sketch = getattr(summary, "sketch", None)
    return sketch if isinstance(sketch, MomentsSketch) else None


@dataclass
class RollupResult:
    """One merged summary plus the scan/merge profile that produced it."""

    summary: object
    cells_scanned: int
    merge_calls: int
    planner_seconds: float
    merge_seconds: float
    route: str

    @property
    def sketch(self) -> MomentsSketch | None:
        return sketch_of(self.summary)


@dataclass
class GroupRollupResult:
    """Merged summary per group value, plus the scan/merge profile."""

    groups: dict
    cells_scanned: int
    merge_calls: int
    planner_seconds: float
    merge_seconds: float
    route: str


@dataclass
class WindowedResult:
    """Alerts from a sliding-window threshold scan."""

    alerts: list
    windows_checked: int
    panes: int
    count: float
    merge_seconds: float
    solve_seconds: float
    route: str


class Backend(abc.ABC):
    """Adapter contract between a storage engine and the query service."""

    #: Registered display name (overridden per instance by the service).
    name: str = "backend"
    #: True when roll-ups run as vectorized packed reductions.
    supports_packed: bool = False
    #: Query kinds this backend can execute.
    kinds: frozenset = frozenset(
        ("quantile", "cdf", "threshold_count", "group_by", "top_n"))

    @abc.abstractmethod
    def rollup(self, spec: QuerySpec) -> RollupResult: ...

    def group_rollup(self, spec: QuerySpec) -> GroupRollupResult:
        raise QueryError(f"backend {self.name!r} cannot group by dimension")

    def windowed(self, spec: QuerySpec) -> WindowedResult:
        raise QueryError(f"backend {self.name!r} cannot run windowed queries")

    def cache_target(self):
        """The engine object whose flush epoch invalidates this backend.

        Adapters are cheap wrappers that may be rebuilt per query (the
        harness re-registers them after every flush), so the optimizer's
        caches key on the long-lived engine underneath, not the adapter.
        Subclasses wrapping an inner engine must override this.
        """
        return self


def _timed_fold(summaries: Sequence) -> tuple[object, float]:
    """Left-fold merge with timing; the object-per-cell baseline plan."""
    start = time.perf_counter()
    aggregate = summaries[0].copy()
    for summary in summaries[1:]:
        aggregate.merge(summary)
    return aggregate, time.perf_counter() - start


# ----------------------------------------------------------------------
# DataCube
# ----------------------------------------------------------------------

class CubeBackend(Backend):
    """Adapter over :class:`~repro.datacube.DataCube` (both cell backends)."""

    name = "cube"

    def __init__(self, cube: DataCube):
        self.cube = cube

    def cache_target(self):
        return self.cube

    @property
    def supports_packed(self) -> bool:  # type: ignore[override]
        return self.cube.backend == "packed"

    def rollup(self, spec: QuerySpec) -> RollupResult:
        if spec.interval is not None:
            raise QueryError("the cube backend has no time axis; "
                             "drop the interval or use the druid backend")
        merged, profile = self.cube.rollup_profiled(spec.filters_dict())
        return RollupResult(summary=merged, **profile)

    def group_rollup(self, spec: QuerySpec) -> GroupRollupResult:
        if spec.interval is not None:
            raise QueryError("the cube backend has no time axis; "
                             "drop the interval or use the druid backend")
        profile: dict = {}
        groups = self.cube._group_summaries(spec.group_dimension,
                                            spec.filters_dict(),
                                            profile=profile)
        route = "packed" if self.cube.backend == "packed" else "loop"
        return GroupRollupResult(
            groups=groups, cells_scanned=self.cube.num_cells,
            merge_calls=len(groups) if route == "packed" else 0,
            planner_seconds=profile["locate_seconds"],
            merge_seconds=profile["merge_seconds"], route=route)


# ----------------------------------------------------------------------
# Druid engine
# ----------------------------------------------------------------------

class _FinalizeSummary:
    """Minimal summary facade over a non-summary aggregator state."""

    def __init__(self, state):
        self.state = state

    def quantile(self, q: float) -> float:
        return self.state.finalize(q=q)

    def quantiles(self, qs) -> np.ndarray:
        return np.asarray([self.quantile(float(q)) for q in np.atleast_1d(qs)])

    @property
    def count(self) -> float | None:
        return getattr(self.state, "count", None)


def _state_summary(state) -> object:
    return state.summary if isinstance(state, SummaryState) else _FinalizeSummary(state)


class DruidBackend(Backend):
    """Adapter over :class:`~repro.druid.DruidEngine`.

    ``spec.measure`` selects the aggregator; when omitted, a single
    registered aggregator is used implicitly, else the first registered
    moments-sketch aggregator.
    """

    name = "druid"

    def __init__(self, engine: DruidEngine):
        self.engine = engine

    def cache_target(self):
        return self.engine

    @property
    def supports_packed(self) -> bool:  # type: ignore[override]
        return bool(self.engine._packed_names)

    def _aggregator(self, spec: QuerySpec) -> str:
        if spec.measure is not None:
            return spec.measure
        names = list(self.engine.aggregators)
        if len(names) == 1:
            return names[0]
        for name, factory in self.engine.aggregators.items():
            if isinstance(factory, MomentsSketchAggregator):
                return name
        raise QueryError(
            f"ambiguous measure; set spec.measure to one of {sorted(names)}")

    def rollup(self, spec: QuerySpec) -> RollupResult:
        engine = self.engine
        aggregator = self._aggregator(spec)
        filters = spec.filters_dict()
        start = time.perf_counter()
        if aggregator in engine._packed_names:
            refs = engine._matching_packed_rows(aggregator, filters,
                                                spec.interval)
            planner = time.perf_counter() - start
            scanned = sum(rows.size for _, rows in refs)
            if scanned == 0:
                raise QueryError("query matched no cells")
            start = time.perf_counter()
            sketch = DruidEngine.fold_packed_refs(refs)
            merged = engine._wrap_packed(aggregator, sketch)
            return RollupResult(summary=_state_summary(merged),
                                cells_scanned=scanned, merge_calls=len(refs),
                                planner_seconds=planner,
                                merge_seconds=time.perf_counter() - start,
                                route="packed")
        states = engine._matching_states(aggregator, filters, spec.interval)
        planner = time.perf_counter() - start
        if not states:
            raise QueryError("query matched no cells")
        start = time.perf_counter()
        merged = engine._merge_states(states)
        return RollupResult(summary=_state_summary(merged),
                            cells_scanned=len(states),
                            merge_calls=len(states) - 1,
                            planner_seconds=planner,
                            merge_seconds=time.perf_counter() - start,
                            route="loop")

    def group_rollup(self, spec: QuerySpec) -> GroupRollupResult:
        if spec.interval is not None:
            # group_states scans every segment; silently answering over
            # all time would be wrong, so reject until it learns intervals.
            raise QueryError(
                "the druid backend does not support intervals on grouped "
                "queries; drop the interval")
        aggregator = self._aggregator(spec)
        profile: dict = {}
        states = self.engine.group_states(aggregator, spec.group_dimension,
                                          spec.filters_dict(),
                                          profile=profile)
        route = "packed" if aggregator in self.engine._packed_names else "loop"
        return GroupRollupResult(
            groups={value: _state_summary(state)
                    for value, state in states.items()},
            cells_scanned=self.engine.num_cells,
            merge_calls=len(states) if route == "packed" else 0,
            planner_seconds=profile["locate_seconds"],
            merge_seconds=profile["merge_seconds"], route=route)


# ----------------------------------------------------------------------
# Packed sketch store
# ----------------------------------------------------------------------

class PackedStoreBackend(Backend):
    """Adapter over a raw :class:`~repro.store.PackedSketchStore`.

    ``keys`` (optional) maps each row to its dimension tuple, enabling
    filters and group-bys; ``dimensions`` names the tuple positions.
    ``rows`` restricts the backend to a row subset (the workload
    harness's ``num_cells`` knob).
    """

    name = "packed"
    supports_packed = True

    def __init__(self, store: PackedSketchStore,
                 keys: Sequence[tuple] | None = None,
                 dimensions: Sequence[str] | None = None,
                 config: SolverConfig | None = None,
                 rows: np.ndarray | None = None):
        if (keys is None) != (dimensions is None):
            raise QueryError("keys and dimensions must be given together")
        self.store = store
        self.keys = list(keys) if keys is not None else None
        self.dimensions = tuple(dimensions) if dimensions is not None else ()
        self.config = config or SolverConfig()
        self.rows = (np.arange(len(store), dtype=np.intp) if rows is None
                     else np.asarray(rows, dtype=np.intp))
        if self.keys is not None and len(self.keys) != len(store):
            raise QueryError("need one key tuple per store row")

    def cache_target(self):
        return self.store

    def _wrap(self, sketch: MomentsSketch) -> MomentsSummary:
        summary = MomentsSummary(k=self.store.k, track_log=self.store.track_log,
                                 config=self.config)
        summary.sketch = sketch
        return summary

    def _positions(self, filters: dict) -> dict[int, object]:
        if not filters:
            return {}
        if self.keys is None:
            raise QueryError("this packed store has no dimensions to filter on")
        positions = {}
        for dim, value in filters.items():
            if dim not in self.dimensions:
                raise QueryError(f"unknown dimension {dim!r}; "
                                 f"have {self.dimensions}")
            positions[self.dimensions.index(dim)] = value
        return positions

    def _matching_rows(self, filters: dict) -> np.ndarray:
        positions = self._positions(filters)
        if not positions:
            return self.rows
        return np.asarray(
            [row for row in self.rows
             if all(self.keys[row][pos] == value
                    for pos, value in positions.items())], dtype=np.intp)

    def rollup(self, spec: QuerySpec) -> RollupResult:
        if spec.interval is not None:
            raise QueryError("the packed-store backend has no time axis")
        start = time.perf_counter()
        rows = self._matching_rows(spec.filters_dict())
        planner = time.perf_counter() - start
        if rows.size == 0:
            raise QueryError(f"no cells match filter {spec.filters_dict()}")
        start = time.perf_counter()
        merged = self._wrap(self.store.batch_merge(rows))
        return RollupResult(summary=merged, cells_scanned=int(rows.size),
                            merge_calls=1, planner_seconds=planner,
                            merge_seconds=time.perf_counter() - start,
                            route="packed")

    def group_rollup(self, spec: QuerySpec) -> GroupRollupResult:
        if self.keys is None:
            raise QueryError("this packed store has no dimensions to group on")
        if spec.group_dimension not in self.dimensions:
            raise QueryError(f"unknown dimension {spec.group_dimension!r}")
        position = self.dimensions.index(spec.group_dimension)
        start = time.perf_counter()
        rows = self._matching_rows(spec.filters_dict())
        if rows.size == 0:
            raise QueryError(f"no cells match filter {spec.filters_dict()}")
        group_keys = [self.keys[row][position] for row in rows]
        planner = time.perf_counter() - start
        start = time.perf_counter()
        groups = {value: self._wrap(sketch) for value, sketch
                  in self.store.batch_merge_by(rows, group_keys).items()}
        return GroupRollupResult(groups=groups, cells_scanned=int(rows.size),
                                 merge_calls=len(groups),
                                 planner_seconds=planner,
                                 merge_seconds=time.perf_counter() - start,
                                 route="packed")


# ----------------------------------------------------------------------
# Window layer
# ----------------------------------------------------------------------

class WindowBackend(Backend):
    """Adapter over pre-aggregated panes (Section 7.2.2 workloads).

    Plain roll-up kinds merge every pane (one packed reduction);
    ``windowed`` specs run the sliding threshold scan with the strategy
    named in the spec's :class:`~repro.api.spec.WindowSpec`.
    """

    name = "window"
    supports_packed = True
    kinds = frozenset(("quantile", "cdf", "threshold_count", "windowed"))

    def __init__(self, panes: Sequence[Pane],
                 config: SolverConfig | None = None):
        if not panes:
            raise QueryError("the window backend needs at least one pane")
        self.panes = list(panes)
        self.config = config or SolverConfig()
        self.store = pack_panes(self.panes)

    def rollup(self, spec: QuerySpec) -> RollupResult:
        if spec.filters or spec.interval is not None:
            raise QueryError("the window backend has no dimensions to filter")
        start = time.perf_counter()
        merged = self.store.batch_merge()
        merge_seconds = time.perf_counter() - start
        summary = MomentsSummary(k=merged.k, track_log=merged.track_log,
                                 config=self.config)
        summary.sketch = merged
        return RollupResult(summary=summary, cells_scanned=len(self.panes),
                            merge_calls=1, planner_seconds=0.0,
                            merge_seconds=merge_seconds, route="packed")

    def windowed(self, spec: QuerySpec) -> WindowedResult:
        if spec.filters or spec.interval is not None:
            raise QueryError("the window backend has no dimensions to filter")
        assert spec.window is not None
        window = spec.window
        threshold = spec.thresholds[0]
        if window.strategy == "turnstile":
            processor = TurnstileWindowProcessor(
                self.panes, window.window_panes,
                cascade_stages=spec.cascade_stages, config=self.config)
            result = processor.query(threshold, q=spec.q)
        else:
            result = remerge_windows_packed(
                self.panes, window.window_panes, threshold, q=spec.q,
                config=self.config)
        alerts = [{"start_pane": alert.start_pane, "end_pane": alert.end_pane,
                   "stage": alert.stage} for alert in result.alerts]
        return WindowedResult(alerts=alerts,
                              windows_checked=result.windows_checked,
                              panes=len(self.panes),
                              count=float(sum(p.count for p in self.panes)),
                              merge_seconds=result.merge_seconds,
                              solve_seconds=result.estimation_seconds,
                              route=window.strategy)


# ----------------------------------------------------------------------
# Plain summary sequences (workload object cells, single sketches)
# ----------------------------------------------------------------------

class SummariesBackend(Backend):
    """Adapter over any sequence of mergeable quantile summaries."""

    name = "summaries"

    def __init__(self, summaries: Sequence):
        if not summaries:
            raise QueryError("need at least one summary")
        self.summaries = list(summaries)

    def rollup(self, spec: QuerySpec) -> RollupResult:
        if spec.filters or spec.interval is not None:
            raise QueryError("a summary list has no dimensions to filter")
        if len(self.summaries) == 1:
            return RollupResult(summary=self.summaries[0],
                                cells_scanned=1, merge_calls=0,
                                planner_seconds=0.0, merge_seconds=0.0,
                                route="loop")
        merged, merge_seconds = _timed_fold(self.summaries)
        return RollupResult(summary=merged, cells_scanned=len(self.summaries),
                            merge_calls=len(self.summaries) - 1,
                            planner_seconds=0.0, merge_seconds=merge_seconds,
                            route="loop")


# ----------------------------------------------------------------------
# Adapter registry
# ----------------------------------------------------------------------

#: (predicate, adapter factory) pairs tried in order by :func:`as_backend`.
ADAPTERS: list[tuple[Callable[[object], bool], Callable[..., Backend]]] = []


def register_adapter(predicate: Callable[[object], bool],
                     factory: Callable[..., Backend]) -> None:
    """Register an automatic engine-object -> backend adapter."""
    ADAPTERS.append((predicate, factory))


def as_backend(obj, **kwargs) -> Backend:
    """Adapt a raw engine object (or pass a Backend through unchanged)."""
    if isinstance(obj, Backend):
        return obj
    for attempt in range(2):
        for predicate, factory in ADAPTERS:
            if predicate(obj):
                return factory(obj, **kwargs)
        if attempt == 0:
            # Layers above this module (the cluster serving and tiered
            # storage layers) register their adapters on import; pull
            # them in lazily so `QueryService(cluster=coordinator)` or
            # `QueryService(tiered=store)` works without the caller
            # importing repro.cluster / repro.storage first.
            from .. import cluster, storage  # noqa: F401
    raise QueryError(
        f"no backend adapter for {type(obj).__name__}; register one with "
        "repro.api.register_adapter or pass a Backend instance")


def _monitor_panes(monitor, **kwargs) -> WindowBackend:
    """Adapt a live StreamingWindowMonitor: query its current window.

    The monitor retains the last ``window_panes`` sealed panes; this is
    the read side of a :class:`~repro.ingest.IngestSession` over a
    monitor, so freshly streamed data is queryable right after a flush.
    """
    panes = list(monitor._panes)
    if not panes:
        raise QueryError("the window monitor has no sealed panes to query")
    return WindowBackend(panes, **kwargs)


def _panes_like(obj) -> bool:
    return (isinstance(obj, (list, tuple)) and len(obj) > 0
            and all(isinstance(item, Pane) for item in obj))


def _summary_like(obj) -> bool:
    return (isinstance(obj, (list, tuple)) and len(obj) > 0
            and all(hasattr(item, "merge") and hasattr(item, "quantile")
                    for item in obj))


register_adapter(lambda obj: isinstance(obj, DataCube), CubeBackend)
register_adapter(lambda obj: isinstance(obj, DruidEngine), DruidBackend)
register_adapter(lambda obj: isinstance(obj, PackedSketchStore),
                 PackedStoreBackend)
register_adapter(lambda obj: isinstance(obj, StreamingWindowMonitor),
                 _monitor_panes)
register_adapter(_panes_like, WindowBackend)
register_adapter(_summary_like, SummariesBackend)
