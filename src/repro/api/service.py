"""QueryService: plan and execute declarative specs over registered backends.

The service owns the engine-independent half of a query: estimator
solves, bound computation, threshold cascades, top-n pruning, and the
batched executor.  :meth:`QueryService.execute_batch` groups specs by
their plan's ``scan_key`` so N specs over the same cell subset cost one
merge (and, for moments summaries, one estimator solve — the summary's
cached estimator serves every fused quantile), which is the Eq. 2
``t_merge * n_merge`` term paid once instead of N times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

import numpy as np

from ..core.batch_solver import fit_estimators
from ..core.bounds import (markov_bound, quantile_error_bound, rtt_bound,
                           rtt_bound_batch)
from ..core.cascade import ThresholdCascade
from ..core.errors import QueryError
from ..core.quantile import QuantileEstimator, safe_estimate_quantiles
from ..core.sketch import ColumnarMoments, MomentsSketch
from ..core.solver import SolverConfig
from ..druid.engine import _quantile_bracket
from ..summaries.moments_summary import MomentsSummary
from ..telemetry import TELEMETRY
from .backends import (Backend, GroupRollupResult, RollupResult, as_backend,
                       sketch_of)
from .planner import QueryPlan, plan, solve_signature
from .spec import QueryResponse, QuerySpec, QueryTimings, qkey


@dataclass(frozen=True)
class BatchReport:
    """Scan-sharing profile of the last :meth:`QueryService.execute_batch`."""

    specs: int
    distinct_scans: int
    shared_hits: int
    merge_calls: int
    #: Specs served by the cross-batch optimizer (response, partial, or
    #: materialized-roll-up tier) rather than this batch's own scans.
    cache_hits: int = 0


def _moments_payload(sketch: MomentsSketch) -> dict:
    payload = {"count": sketch.count, "min": sketch.min, "max": sketch.max,
               "power_sums": [float(v) for v in sketch.power_sums]}
    if sketch.track_log:
        payload["log_sums"] = [float(v) for v in sketch.log_sums]
        payload["log_valid"] = bool(sketch.log_valid)
    return payload


class QueryService:
    """Facade executing :class:`QuerySpec` objects against named backends.

    Backends are registered either at construction (raw engine objects
    are adapted automatically via :func:`~repro.api.backends.as_backend`)
    or later with :meth:`register`.  The first registered backend is the
    default; ``spec.backend`` selects another by name.

    ``batched`` (default on) routes every multi-group estimation phase —
    ``group_by`` solves, ``top_n`` bracket pruning and scoring,
    ``threshold_count`` cascades — through the batched max-entropy layer
    (:mod:`repro.core.batch_solver`): one stacked Newton solve for all
    surviving groups instead of one solve per group.  Pass
    ``batched=False`` to A/B the scalar per-group path; the response's
    ``timings.solve_route``/``solve_calls`` report which path ran.

    ``optimizer`` (opt-in) attaches a
    :class:`~repro.optimizer.Optimizer`: scans and solved responses are
    then cached *across* batches, invalidated by the flush epochs that
    :class:`~repro.ingest.IngestSession` advances.  It is never on by
    default because writes that bypass the ingest layer (direct kernel
    mutation) would silently serve stale answers.
    """

    def __init__(self, *args, config: SolverConfig | None = None,
                 batched: bool = True, optimizer=None, **named):
        self.config = config or SolverConfig()
        self.batched = bool(batched)
        self.optimizer = optimizer
        self._backends: dict[str, Backend] = {}
        self._default: str | None = None
        self.last_batch_report: BatchReport | None = None
        #: The most recent roll-up (summary + profile), for in-process
        #: callers that need the merged aggregate itself (workload runner).
        self.last_rollup: RollupResult | None = None
        for obj in args:
            backend = as_backend(obj)
            self.register(backend.name, backend)
        for name, obj in named.items():
            self.register(name, obj)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def register(self, name: str, backend_or_engine) -> "QueryService":
        backend = as_backend(backend_or_engine)
        self._backends[name] = backend
        if self._default is None:
            self._default = name
        return self

    @property
    def backends(self) -> tuple[str, ...]:
        return tuple(self._backends)

    def backend(self, name: str) -> Backend:
        """The registered backend adapter for ``name``."""
        try:
            return self._backends[name]
        except KeyError:
            raise QueryError(f"unknown backend {name!r}; "
                             f"registered: {sorted(self._backends)}") from None

    def _resolve(self, spec: QuerySpec) -> tuple[str, Backend]:
        name = spec.backend or self._default
        if name is None:
            raise QueryError("no backends registered")
        try:
            return name, self._backends[name]
        except KeyError:
            raise QueryError(f"unknown backend {name!r}; "
                             f"registered: {sorted(self._backends)}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(spec) -> QuerySpec:
        if isinstance(spec, QuerySpec):
            return spec
        if isinstance(spec, Mapping):
            return QuerySpec.from_dict(spec)
        if isinstance(spec, str):
            return QuerySpec.from_json(spec)
        raise QueryError(f"cannot interpret {type(spec).__name__} as a QuerySpec")

    def execute(self, spec, backend: str | None = None) -> QueryResponse:
        """Plan and run one spec; see :meth:`execute_batch` for many."""
        spec = self._coerce(spec)
        if backend is not None:
            spec = spec.with_backend(backend)
        return self.execute_batch([spec])[0]

    def execute_batch(self, specs: Iterable) -> list[QueryResponse]:
        """Execute many specs, sharing one merge per distinct cell subset.

        Specs whose plans carry the same ``scan_key`` (same backend,
        measure, filters, interval, grouping) reuse the first spec's
        merged summary; because moments summaries cache their solved
        estimator, fused multi-quantile batches also share one
        max-entropy solve.  ``last_batch_report`` records the sharing.
        """
        specs = [self._coerce(spec) for spec in specs]
        responses: list[QueryResponse] = []
        rollups: dict[tuple, RollupResult] = {}
        group_rollups: dict[tuple, GroupRollupResult] = {}
        merge_calls = 0
        shared_hits = 0
        cache_hits = 0
        for spec in specs:
            run = (self._execute_traced if TELEMETRY.enabled
                   else self._execute_spec)
            response, shared, merges, source = run(spec, rollups,
                                                   group_rollups)
            shared_hits += shared
            cache_hits += source in ("response", "partial", "advisor")
            merge_calls += merges
            responses.append(response)
        self.last_batch_report = BatchReport(
            specs=len(specs),
            distinct_scans=len(rollups) + len(group_rollups),
            shared_hits=shared_hits, merge_calls=merge_calls,
            cache_hits=cache_hits)
        return responses

    def _execute_spec(self, spec: QuerySpec,
                      rollups: dict, group_rollups: dict
                      ) -> tuple[QueryResponse, bool, int, str]:
        """Run one spec against the batch's (and optimizer's) scan caches.

        Returns ``(response, shared_scan, new_merge_calls, source)``;
        ``source`` names the tier that served the scan — ``"batch"``
        (intra-batch sharing), ``"response"``/``"partial"``/``"advisor"``
        (optimizer tiers), ``"refresh"`` (a stale materialized roll-up
        re-merged), ``"cold"``, or ``"window"``.
        """
        name, backend = self._resolve(spec)
        start = time.perf_counter()
        the_plan = plan(spec, backend, backend_name=name)
        plan_seconds = time.perf_counter() - start
        if the_plan.mode == "windowed":
            return (self._run_windowed(spec, the_plan, backend, plan_seconds),
                    False, 0, "window")
        cache = group_rollups if the_plan.mode == "group" else rollups
        shared = the_plan.scan_key in cache
        merges = 0
        opt = self.optimizer
        token = epoch = solve_sig = None
        if shared:
            result = cache[the_plan.scan_key]
            source = "batch"
        elif opt is not None:
            token = opt.token(backend)
            epoch = opt.scan_epoch(backend, spec)
            # The response tier keys on everything that shapes the
            # payload: the spec's solve inputs plus the service's own
            # estimation knobs.
            solve_sig = solve_signature(spec) + (self.batched, self.config)
            start = time.perf_counter()
            hit = opt.cached_response(token, the_plan, solve_sig, epoch)
            lookup_seconds = time.perf_counter() - start
            if hit is not None:
                response = replace(
                    hit, shared_scan=True,
                    timings=QueryTimings(
                        planner_seconds=plan_seconds + lookup_seconds,
                        solve_route="cached"))
                return response, True, 0, "response"
            result, source = opt.lookup_scan(backend, token, the_plan,
                                             epoch)
            if result is None:
                result = (backend.group_rollup(spec)
                          if the_plan.mode == "group"
                          else backend.rollup(spec))
                merges = result.merge_calls
                opt.store_scan(token, the_plan, epoch, result)
            elif source == "refresh":
                merges = result.merge_calls
            cache[the_plan.scan_key] = result
        else:
            source = "cold"
            result = (backend.group_rollup(spec)
                      if the_plan.mode == "group"
                      else backend.rollup(spec))
            cache[the_plan.scan_key] = result
            merges = result.merge_calls
        # A scan served from the cache (or an up-to-date materialized
        # roll-up) paid a lookup, not the cold scan's locate + merge.
        hit_scan = source in ("partial", "advisor")
        timings_base = QueryTimings(
            planner_seconds=(plan_seconds if hit_scan
                             else plan_seconds + result.planner_seconds),
            merge_seconds=0.0 if hit_scan else result.merge_seconds)
        shared_scan = shared or hit_scan
        if the_plan.mode == "group":
            response = self._finish_group(spec, the_plan, result,
                                          timings_base, shared_scan)
        else:
            self.last_rollup = result
            response = self._finish_rollup(spec, the_plan, result,
                                           timings_base, shared_scan)
        if token is not None:
            opt.store_response(token, the_plan, solve_sig, epoch, response)
        return response, shared_scan, merges, source

    def _execute_traced(self, spec: QuerySpec,  # repro: noqa[TEL001]
                        rollups: dict, group_rollups: dict
                        ) -> tuple[QueryResponse, bool, int, str]:
        """Telemetry wrapper around :meth:`_execute_spec`.

        Emits a root ``query`` span (active while backends run, so
        cluster/storage child spans attach to it), phase spans whose
        durations are copied verbatim from the response's
        :class:`QueryTimings` (the two accountings agree exactly), a
        latency histogram per (backend, kind, route), and scan-signature
        sharing counters labelled by the tier that served the scan —
        intra-batch (``route="batch"``) and the optimizer's cross-batch
        tiers (``"response"``/``"partial"``/``"advisor"``) alike.
        """
        tracer = TELEMETRY.tracer
        registry = TELEMETRY.registry
        kind = spec.kind
        try:
            with tracer.span("query", kind=kind) as root:
                response, shared, merges, source = self._execute_spec(
                    spec, rollups, group_rollups)
                root.set_attribute("backend", response.backend)
                root.set_attribute("route", response.route)
                root.set_attribute("shared_scan", shared)
        except Exception:
            registry.counter("query_errors_total",
                             backend=spec.backend or self._default or "?",
                             kind=kind).inc()
            raise
        timings = response.timings
        base = root.start_monotonic
        if source == "response":
            # The whole answer came out of the optimizer's response
            # tier: one cache phase instead of plan/merge/solve.
            tracer.record("query.cache", timings.planner_seconds,
                          parent=root, start_monotonic=base, tier=source)
        else:
            tracer.record("query.plan", timings.planner_seconds, parent=root,
                          start_monotonic=base)
            tracer.record("query.merge", timings.merge_seconds, parent=root,
                          start_monotonic=base + timings.planner_seconds,
                          merges=response.merges,
                          cells_scanned=response.cells_scanned,
                          shared_scan=shared)
            tracer.record("query.solve", timings.solve_seconds, parent=root,
                          start_monotonic=(base + timings.planner_seconds
                                           + timings.merge_seconds),
                          solve_route=timings.solve_route,
                          solve_calls=timings.solve_calls)
        backend_name = response.backend
        registry.histogram("query_seconds", backend=backend_name, kind=kind,
                           route=response.route).observe(root.duration_seconds)
        registry.counter("queries_total", backend=backend_name,
                         kind=kind).inc()
        registry.counter(
            "scan_signature_hits_total" if shared
            else "scan_signature_misses_total",
            backend=backend_name, route=source).inc()
        TELEMETRY.slow_queries.consider(root.payload, tracer)
        return response, shared, merges, source

    # ------------------------------------------------------------------
    # Roll-up kinds
    # ------------------------------------------------------------------

    def _estimates(self, spec: QuerySpec, summary) -> np.ndarray:
        qs = np.asarray(spec.quantiles, dtype=float)
        if spec.estimator == "maxent":
            sketch = sketch_of(summary)
            if sketch is None:
                raise QueryError(
                    "estimator='maxent' needs a moments-backed summary")
            estimator = QuantileEstimator.fit(sketch, config=self.config)
            return np.asarray(estimator.quantiles(qs), dtype=float)
        return np.asarray(summary.quantiles(qs), dtype=float)

    def _group_estimates(self, spec: QuerySpec, summaries: list
                         ) -> tuple[list[np.ndarray], int, str]:
        """Per-summary quantile estimates for a group scan.

        On the batched route every moments-backed summary joins one
        stacked max-entropy solve (``fit_estimators``); the solved
        estimator is seeded back into the summary's cache so later
        per-group ``quantile`` calls are free.  Summaries without a raw
        sketch (non-moments aggregators) fall back to their own scalar
        path.  Returns ``(estimates, solve_calls, solve_route)``.
        """
        qs = np.asarray(spec.quantiles, dtype=float)
        if not self.batched:
            return ([np.atleast_1d(self._estimates(spec, summary))
                     for summary in summaries], len(summaries), "scalar")
        out: list = [None] * len(summaries)
        # Fit with the config the scalar route would use: the summary's
        # own config on the "auto" path (summary.quantiles), the
        # service config for estimator="maxent" (matching _estimates).
        # Distinct configs batch separately — in practice one group.
        by_config: dict[SolverConfig, list[int]] = {}
        for index, summary in enumerate(summaries):
            if sketch_of(summary) is None:
                continue
            config = (self.config if spec.estimator == "maxent"
                      else getattr(summary, "config", None) or self.config)
            by_config.setdefault(config, []).append(index)
        calls = 0
        for config, rows in by_config.items():
            sketches = [summaries[index].sketch for index in rows]
            estimators, errors, _ = fit_estimators(
                sketches, config,
                allow_backoff=spec.estimator != "maxent")
            calls += 1
            for position, index in enumerate(rows):
                estimator = estimators[position]
                if estimator is None:
                    if spec.estimator == "maxent":
                        raise errors[position]
                    # Near-discrete group: the production degradation of
                    # MomentsSummary.quantiles (two-point-mass model).
                    out[index] = safe_estimate_quantiles(
                        sketches[position], qs, config)
                    continue
                summary = summaries[index]
                if isinstance(summary, MomentsSummary) \
                        and spec.estimator != "maxent":
                    summary._estimator = estimator
                out[index] = np.atleast_1d(estimator.quantiles(qs))
        for index, summary in enumerate(summaries):
            if out[index] is None:
                out[index] = np.atleast_1d(self._estimates(spec, summary))
                calls += 1
        return out, calls, "batched"

    def _finish_rollup(self, spec: QuerySpec, the_plan: QueryPlan,
                       result: RollupResult, timings: QueryTimings,
                       shared: bool) -> QueryResponse:
        summary = result.summary
        sketch = result.sketch
        count = getattr(summary, "count", None)
        moments = (_moments_payload(sketch)
                   if spec.report_moments and sketch is not None else None)
        start = time.perf_counter()
        if spec.kind == "quantile":
            # One summary, one estimator fit (cached across the fused
            # quantiles) — inherently a scalar solve.
            solve_calls = 1
            solve_route = "scalar"
            estimates_arr = self._estimates(spec, summary)
            estimates = {qkey(q): float(est)
                         for q, est in zip(spec.quantiles, estimates_arr)}
            bounds = None
            if spec.report_bounds and sketch is not None:
                bounds = {qkey(q): quantile_error_bound(sketch, float(est), q)
                          for q, est in zip(spec.quantiles, estimates_arr)}
            value = float(estimates_arr[0])
            groups = None
        elif spec.kind == "cdf":
            if sketch is None:
                raise QueryError("cdf queries need a moments-backed summary")
            # CDF points come from closed-form RTT bounds, one per
            # threshold; no max-entropy solver runs.
            solve_calls = len(spec.thresholds)
            solve_route = "bounds"
            estimates = {}
            bounds = {} if spec.report_bounds else None
            for t in spec.thresholds:
                rtt = rtt_bound(sketch, t)
                lo, hi = rtt.fraction()
                estimates[qkey(t)] = 0.5 * (lo + hi)
                if bounds is not None:
                    markov = markov_bound(sketch, t)
                    bounds[qkey(t)] = {
                        "rtt": {"lower": rtt.lower, "upper": rtt.upper},
                        "markov": {"lower": markov.lower,
                                   "upper": markov.upper}}
            value = estimates[qkey(spec.thresholds[0])]
            groups = None
        else:  # threshold_count without a grouping dimension
            groups_map = {"*": summary}
            estimates, groups, value, solve_calls, solve_route = \
                self._threshold_outcomes(spec, groups_map)
            bounds = None
        solve = time.perf_counter() - start
        return QueryResponse(
            kind=spec.kind, backend=the_plan.backend_name,
            route=result.route, value=value, estimates=estimates,
            groups=groups, bounds=bounds, moments=moments,
            count=float(count) if count is not None else None,
            cells_scanned=result.cells_scanned, merges=result.merge_calls,
            shared_scan=shared,
            timings=QueryTimings(planner_seconds=timings.planner_seconds,
                                 merge_seconds=timings.merge_seconds,
                                 solve_seconds=solve, solve_calls=solve_calls,
                                 solve_route=solve_route))

    def _threshold_outcomes(self, spec: QuerySpec, groups_map: Mapping
                            ) -> tuple[dict, dict, float, int, str]:
        """Cascade every group against every threshold (Eq. 3 counting).

        On the batched route the whole group set runs through
        :meth:`ThresholdCascade.evaluate_batch` per threshold — the
        vectorized bound stages filter all cells at once and the
        survivors share one batched max-entropy solve — with decisions
        identical to the per-cell cascade.  Falls back to the scalar
        loop when any group lacks a raw moments sketch.  Also returns
        the number of solve/cascade invocations and the route that
        actually ran (``"batched"``/``"scalar"``) for the timings.
        """
        cascade = ThresholdCascade(config=self.config,
                                   enabled_stages=spec.cascade_stages)
        q = spec.q
        groups_payload: dict = {}
        counts = {qkey(t): 0 for t in spec.thresholds}
        sketches = [sketch_of(summary) for summary in groups_map.values()]
        if self.batched and groups_map and all(
                sketch is not None for sketch in sketches):
            route = "batched"
            # One columnar gather serves every threshold's cascade pass.
            block = ColumnarMoments.from_sketches(sketches)
            groups_payload = {value: {} for value in groups_map}
            for t in spec.thresholds:
                outcomes = cascade.evaluate_batch(block, t, q)
                for value, outcome in zip(groups_map, outcomes):
                    groups_payload[value][qkey(t)] = {
                        "exceeds": outcome.result, "stage": outcome.stage}
                    if outcome.result:
                        counts[qkey(t)] += 1
            calls = len(spec.thresholds)
        else:
            route = "scalar"
            for value, summary in groups_map.items():
                sketch = sketch_of(summary)
                outcomes = {}
                for t in spec.thresholds:
                    if sketch is not None:
                        outcome = cascade.evaluate(sketch, t, q)
                        exceeds, stage = outcome.result, outcome.stage
                    else:
                        exceeds = bool(summary.quantile(q) > t)
                        stage = "estimate"
                    outcomes[qkey(t)] = {"exceeds": exceeds, "stage": stage}
                    if exceeds:
                        counts[qkey(t)] += 1
                groups_payload[value] = outcomes
            calls = len(groups_map) * len(spec.thresholds)
        estimates = {key: float(n) for key, n in counts.items()}
        return (estimates, groups_payload, estimates[qkey(spec.thresholds[0])],
                calls, route)

    # ------------------------------------------------------------------
    # Group kinds
    # ------------------------------------------------------------------

    def _finish_group(self, spec: QuerySpec, the_plan: QueryPlan,
                      result: GroupRollupResult, timings: QueryTimings,
                      shared: bool) -> QueryResponse:
        groups_map = result.groups
        if not groups_map and spec.kind == "top_n":
            raise QueryError("query matched no cells")
        start = time.perf_counter()
        top = None
        bounds = None
        solve_route = "batched" if self.batched else "scalar"
        if spec.kind == "group_by":
            value = None
            estimates = None
            arrays, solve_calls, solve_route = self._group_estimates(
                spec, list(groups_map.values()))
            groups = {
                group: {qkey(q): float(est)
                        for q, est in zip(spec.quantiles, array)}
                for group, array in zip(groups_map, arrays)}
            count = float(sum(getattr(s, "count", 0.0) or 0.0
                              for s in groups_map.values()))
        elif spec.kind == "top_n":
            top, solve_calls, solve_route = self._top_n(spec, groups_map)
            value = float(top[0][1]) if top else None
            estimates = None
            groups = None
            count = float(sum(getattr(s, "count", 0.0) or 0.0
                              for s in groups_map.values()))
        else:  # threshold_count over groups
            estimates, groups, value, solve_calls, solve_route = \
                self._threshold_outcomes(spec, groups_map)
            count = float(sum(getattr(s, "count", 0.0) or 0.0
                              for s in groups_map.values()))
        solve = time.perf_counter() - start
        return QueryResponse(
            kind=spec.kind, backend=the_plan.backend_name, route=result.route,
            value=value, estimates=estimates, groups=groups, top=top,
            bounds=bounds, count=count, cells_scanned=result.cells_scanned,
            merges=result.merge_calls, shared_scan=shared,
            timings=QueryTimings(planner_seconds=timings.planner_seconds,
                                 merge_seconds=timings.merge_seconds,
                                 solve_seconds=solve, solve_calls=solve_calls,
                                 solve_route=solve_route))

    def _top_n(self, spec: QuerySpec, groups_map: Mapping
               ) -> tuple[list, int, str]:
        """Bounds-pruned top-n ranking (Section 5's principle on ranking).

        Identical plan to the legacy ``top_n_by_quantile``: when every
        group is moments-backed and there are more groups than ``n``,
        RTT rank bounds bracket each group's quantile and groups whose
        best case cannot beat the n-th worst case are discarded before
        any max-entropy solve.  On the batched route the bracket
        bisection runs all groups through :func:`rtt_bound_batch` per
        step (identical brackets, so identical pruning) and the
        surviving candidates share one batched solve.  Also returns the
        solve-call count for the timings.
        """
        n = spec.n or 1
        q = spec.q
        sketches = {value: summary.sketch
                    for value, summary in groups_map.items()
                    if isinstance(summary, MomentsSummary)}
        if len(sketches) == len(groups_map) and len(groups_map) > n:
            if self.batched:
                lows, highs = _quantile_brackets_batch(
                    list(sketches.values()), q)
                brackets = {value: (lows[i], highs[i])
                            for i, value in enumerate(sketches)}
            else:
                brackets = {value: _quantile_bracket(sketch, q, rtt_bound)
                            for value, sketch in sketches.items()}
            floors = sorted((b[0] for b in brackets.values()), reverse=True)
            cutoff = floors[n - 1]
            candidates = [value for value, (lo, hi) in brackets.items()
                          if hi >= cutoff]
        else:
            candidates = list(groups_map)
        # Score with the summaries' own estimation path (estimator
        # "auto"), exactly like the historical `summary.quantile(q)`
        # scoring — top_n never consulted spec.estimator.
        scoring_spec = (spec if spec.estimator == "auto"
                        else replace(spec, estimator="auto"))
        arrays, calls, route = self._group_estimates(
            scoring_spec, [groups_map[value] for value in candidates])
        scored = [(value, float(array[0]))
                  for value, array in zip(candidates, arrays)]
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return scored[:n], calls, route

    # ------------------------------------------------------------------
    # Windowed kind
    # ------------------------------------------------------------------

    def _run_windowed(self, spec: QuerySpec, the_plan: QueryPlan,
                      backend: Backend, plan_seconds: float) -> QueryResponse:
        result = backend.windowed(spec)
        return QueryResponse(
            kind=spec.kind, backend=the_plan.backend_name, route=result.route,
            value=float(len(result.alerts)), alerts=result.alerts,
            count=result.count, cells_scanned=result.panes,
            merges=result.windows_checked,
            timings=QueryTimings(planner_seconds=plan_seconds,
                                 merge_seconds=result.merge_seconds,
                                 solve_seconds=result.solve_seconds,
                                 solve_calls=max(result.windows_checked, 1),
                                 solve_route="window"))


def _quantile_brackets_batch(sketches: list, q: float
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.druid.engine._quantile_bracket` over cells.

    Runs every group's bisection in lockstep, evaluating one
    :func:`rtt_bound_batch` call per step over the still-undecided rows.
    Each row probes exactly the midpoints the scalar bracket would, so
    the returned ``[lower, upper]`` intervals — and therefore the top-n
    pruning decisions — are identical.
    """
    moments = ColumnarMoments.from_sketches(sketches)
    lows = moments.mins.copy()
    highs = moments.maxs.copy()
    targets = q * moments.counts
    undecided = np.ones(len(moments), dtype=bool)
    for _ in range(20):
        rows = np.flatnonzero(undecided)
        if rows.size == 0:
            break
        mids = 0.5 * (lows[rows] + highs[rows])
        bounds = rtt_bound_batch(moments.take(rows), mids)
        up = bounds.upper < targets[rows]    # quantile certainly above mid
        down = bounds.lower > targets[rows]  # quantile certainly below mid
        lows[rows[up]] = mids[up]
        highs[rows[down]] = mids[down]
        undecided[rows[~(up | down)]] = False  # bracket is [lo, hi]
    return lows, highs


def execute(spec, backend_obj, **adapter_kwargs) -> QueryResponse:
    """One-shot convenience: adapt ``backend_obj`` and execute ``spec``."""
    backend = as_backend(backend_obj, **adapter_kwargs)
    return QueryService().register(backend.name, backend).execute(spec)
