"""Declarative query descriptions and uniform responses.

:class:`QuerySpec` is the single entry point of the unified query API:
one validated, JSON-round-trippable value object that describes *what*
to compute (quantiles, CDF points, threshold counts, group-bys, top-n
rankings, windowed alerts) independently of *which* backend computes it
(data cube, Druid engine, packed store, window processors).  The planner
(:mod:`repro.api.planner`) turns a spec into an execution route and
:class:`~repro.api.service.QueryService` runs it, returning a
:class:`QueryResponse` with the estimate(s), optional error bounds, the
merged moments (on request), and the Eq. 2 cost decomposition
(planner / merge / solve seconds, cells scanned, merges performed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..core.errors import QueryError
from ..core.params import normalize_q  # noqa: F401  (canonical home re-export)

#: Supported query kinds.
KINDS = ("quantile", "cdf", "threshold_count", "group_by", "top_n", "windowed")

#: Cascade stage names a spec may enable (see repro.core.cascade.STAGES).
_CASCADE_STAGES = ("simple", "markov", "rtt")

#: Window execution strategies.
WINDOW_STRATEGIES = ("turnstile", "remerge")


def qkey(value: float) -> str:
    """Stable string key for a quantile/threshold in JSON payloads.

    Uses Python's shortest round-trip ``repr``, so distinct floats never
    collide (``format(x, "g")`` would merge values past 6 significant
    digits) while common fractions stay readable (``"0.5"``, ``"0.99"``).
    """
    return repr(float(value))


@dataclass(frozen=True)
class WindowSpec:
    """Sliding-window parameters for ``kind="windowed"`` queries."""

    window_panes: int
    strategy: str = "turnstile"

    def __post_init__(self):
        if int(self.window_panes) < 1:
            raise QueryError(
                f"window_panes must be positive, got {self.window_panes}")
        object.__setattr__(self, "window_panes", int(self.window_panes))
        if self.strategy not in WINDOW_STRATEGIES:
            raise QueryError(f"unknown window strategy {self.strategy!r}; "
                             f"use one of {WINDOW_STRATEGIES}")

    def to_dict(self) -> dict:
        return {"window_panes": self.window_panes, "strategy": self.strategy}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WindowSpec":
        return cls(window_panes=payload["window_panes"],
                   strategy=payload.get("strategy", "turnstile"))


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query over any registered backend.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    quantiles:
        Target quantile fractions ``q`` in (0, 1).  ``quantile`` and
        ``group_by`` accept several (fused into one merge + one solver
        pass); ``threshold_count``/``top_n``/``windowed`` use exactly one.
    thresholds:
        Metric-value thresholds for ``cdf``, ``threshold_count``, and
        ``windowed`` queries.
    filters:
        Equality filters ``{dimension: value}`` applied before merging.
    interval:
        Optional ``(t_lo, t_hi)`` time interval (Druid backend).
    group_dimension:
        Grouping dimension for ``group_by``/``top_n`` (and optionally
        ``threshold_count``).
    n:
        Result-list size for ``top_n``.
    measure:
        Backend measure name (the Druid aggregator); backends with a
        single implicit measure ignore it.
    backend:
        Optional registered backend name; defaults to the service's
        default backend.
    estimator:
        ``"auto"`` (max-entropy with safe fallback, the default) or
        ``"maxent"``.
    cascade_stages:
        Bound stages enabled for threshold/windowed cascades.
    report_bounds:
        Include certified error bounds in the response.
    report_moments:
        Include the merged raw moments in the response (cross-backend
        equivalence checks).
    window:
        :class:`WindowSpec` for ``windowed`` queries.
    """

    kind: str
    quantiles: tuple[float, ...] = (0.5,)
    thresholds: tuple[float, ...] = ()
    filters: tuple[tuple[str, object], ...] = ()
    interval: tuple[float, float] | None = None
    group_dimension: str | None = None
    n: int | None = None
    measure: str | None = None
    backend: str | None = None
    estimator: str = "auto"
    cascade_stages: tuple[str, ...] = _CASCADE_STAGES
    report_bounds: bool = False
    report_moments: bool = False
    window: WindowSpec | None = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def __post_init__(self):
        if self.kind not in KINDS:
            raise QueryError(f"unknown query kind {self.kind!r}; "
                             f"use one of {KINDS}")
        object.__setattr__(self, "quantiles",
                           tuple(float(q) for q in self.quantiles))
        object.__setattr__(self, "thresholds",
                           tuple(float(t) for t in self.thresholds))
        if isinstance(self.filters, Mapping):
            object.__setattr__(self, "filters",
                               tuple(sorted(self.filters.items(),
                                            key=lambda kv: kv[0])))
        else:
            object.__setattr__(
                self, "filters",
                tuple(sorted(((str(d), v) for d, v in self.filters),
                             key=lambda kv: kv[0])))
        if self.interval is not None:
            lo, hi = self.interval
            object.__setattr__(self, "interval", (float(lo), float(hi)))
            if self.interval[0] > self.interval[1]:
                raise QueryError(f"empty interval {self.interval}")
        object.__setattr__(self, "cascade_stages", tuple(self.cascade_stages))
        unknown = set(self.cascade_stages) - set(_CASCADE_STAGES)
        if unknown:
            raise QueryError(f"unknown cascade stages: {sorted(unknown)}")
        if self.estimator not in ("auto", "maxent"):
            raise QueryError(f"unknown estimator {self.estimator!r}; "
                             f"use 'auto' or 'maxent'")
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise QueryError(f"quantile fraction must be in (0, 1), got {q}")

        needs_quantiles = self.kind in ("quantile", "group_by", "top_n",
                                        "threshold_count", "windowed")
        if needs_quantiles and not self.quantiles:
            raise QueryError(f"{self.kind} queries need at least one quantile")
        if self.kind in ("threshold_count", "top_n", "windowed") \
                and len(self.quantiles) != 1:
            raise QueryError(f"{self.kind} queries use exactly one quantile")
        if self.kind in ("cdf", "threshold_count", "windowed") \
                and not self.thresholds:
            raise QueryError(f"{self.kind} queries need at least one threshold")
        if self.kind == "windowed" and len(self.thresholds) != 1:
            raise QueryError("windowed queries use exactly one threshold")
        if self.kind in ("group_by", "top_n") and not self.group_dimension:
            raise QueryError(f"{self.kind} queries need a group_dimension")
        if self.kind == "top_n":
            if self.n is None or int(self.n) < 1:
                raise QueryError(f"top_n queries need n >= 1, got {self.n}")
            object.__setattr__(self, "n", int(self.n))
        if self.kind == "windowed" and self.window is None:
            raise QueryError("windowed queries need a window=WindowSpec(...)")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def q(self) -> float:
        """The (single) target quantile fraction."""
        return self.quantiles[0]

    def filters_dict(self) -> dict[str, object]:
        return dict(self.filters)

    def scan_signature(self) -> tuple:
        """Hashable identity of the cell subset this spec merges.

        Two specs with equal signatures (on the same backend) share one
        merge in :meth:`~repro.api.service.QueryService.execute_batch`.
        Group scans fold the grouping dimension in; windowed queries are
        never shared.
        """
        group = (self.group_dimension
                 if self.kind in ("group_by", "top_n", "threshold_count")
                 else None)
        return (self.measure, self.filters, self.interval, group)

    def with_backend(self, name: str) -> "QuerySpec":
        return replace(self, backend=name)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind,
                         "quantiles": list(self.quantiles)}
        if self.thresholds:
            payload["thresholds"] = list(self.thresholds)
        if self.filters:
            payload["filters"] = {dim: value for dim, value in self.filters}
        if self.interval is not None:
            payload["interval"] = list(self.interval)
        for name in ("group_dimension", "n", "measure", "backend"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.estimator != "auto":
            payload["estimator"] = self.estimator
        if self.cascade_stages != _CASCADE_STAGES:
            payload["cascade_stages"] = list(self.cascade_stages)
        if self.report_bounds:
            payload["report_bounds"] = True
        if self.report_moments:
            payload["report_moments"] = True
        if self.window is not None:
            payload["window"] = self.window.to_dict()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QuerySpec":
        payload = dict(payload)
        kind = payload.pop("kind", None)
        if kind is None:
            raise QueryError("a query spec needs a 'kind'")
        quantiles = payload.pop("quantiles", None)
        # Accept the scalar aliases 'q' (canonical) and 'phi' (deprecated).
        if quantiles is None and "q" in payload:
            q = payload.pop("q")
            quantiles = q if isinstance(q, (list, tuple)) else [q]
        if quantiles is None and "phi" in payload:
            quantiles = [normalize_q(phi=payload.pop("phi"))]
        if quantiles is None:
            quantiles = [0.5]
        thresholds = payload.pop("thresholds", None)
        if thresholds is None and "t" in payload:
            t = payload.pop("t")
            thresholds = t if isinstance(t, (list, tuple)) else [t]
        window = payload.pop("window", None)
        known = {name: payload[name] for name in
                 ("filters", "interval", "group_dimension", "n", "measure",
                  "backend", "estimator", "cascade_stages", "report_bounds",
                  "report_moments") if name in payload}
        unknown = set(payload) - set(known)
        if unknown:
            raise QueryError(f"unknown query spec fields: {sorted(unknown)}")
        if "interval" in known and known["interval"] is not None:
            known["interval"] = tuple(known["interval"])
        if "cascade_stages" in known:
            known["cascade_stages"] = tuple(known["cascade_stages"])
        return cls(kind=kind, quantiles=tuple(quantiles),
                   thresholds=tuple(thresholds or ()),
                   window=WindowSpec.from_dict(window) if window else None,
                   **known)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError(f"invalid query spec JSON: {exc}") from None
        if not isinstance(payload, Mapping):
            raise QueryError("query spec JSON must be an object")
        return cls.from_dict(payload)


@dataclass(frozen=True)
class QueryTimings:
    """Eq. 2 cost decomposition: plan + scan, merge fold, estimator solve.

    ``solve_route`` records which estimation path ran the solve phase —
    ``"batched"`` (one stacked max-entropy solve across all groups),
    ``"scalar"`` (one solve per group, and all single-summary solves),
    ``"bounds"`` (closed-form RTT/Markov bounds, the ``cdf`` kind),
    ``"window"`` (per-window sliding scans), or ``"cached"`` (no solve
    ran at all: the multi-query optimizer served a previously solved
    response verbatim) — and ``solve_calls`` how
    many solver/bound invocations that was, ``1`` for a batched group
    solve regardless of group count.  Every :class:`~repro.api.service
    .QueryService` route fills both, so observability layers (the
    workload harness) can rely on them; they are omitted from JSON only
    when zero/empty (hand-built instances).
    """

    planner_seconds: float = 0.0
    merge_seconds: float = 0.0
    solve_seconds: float = 0.0
    solve_calls: int = 0
    solve_route: str = ""

    @property
    def total_seconds(self) -> float:
        return self.planner_seconds + self.merge_seconds + self.solve_seconds

    def to_dict(self) -> dict:
        payload = {"planner_seconds": self.planner_seconds,
                   "merge_seconds": self.merge_seconds,
                   "solve_seconds": self.solve_seconds}
        if self.solve_calls:
            payload["solve_calls"] = self.solve_calls
        if self.solve_route:
            payload["solve_route"] = self.solve_route
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QueryTimings":
        return cls(planner_seconds=float(payload.get("planner_seconds", 0.0)),
                   merge_seconds=float(payload.get("merge_seconds", 0.0)),
                   solve_seconds=float(payload.get("solve_seconds", 0.0)),
                   solve_calls=int(payload.get("solve_calls", 0)),
                   solve_route=str(payload.get("solve_route", "")))


@dataclass(frozen=True)
class QueryResponse:
    """Uniform result of executing one :class:`QuerySpec`.

    ``estimates`` is keyed by :func:`qkey` of the quantile (or threshold,
    for ``cdf``); ``groups``/``top`` keep the original group values
    in-memory and stringify them only in :meth:`to_dict`, so the JSON
    round trip is stable at the JSON level
    (``from_json(r.to_json()).to_json() == r.to_json()``).
    """

    kind: str
    backend: str
    route: str
    value: float | None = None
    estimates: dict | None = None
    groups: dict | None = None
    top: list | None = None
    alerts: list | None = None
    bounds: dict | None = None
    moments: dict | None = None
    count: float | None = None
    cells_scanned: int = 0
    merges: int = 0
    shared_scan: bool = False
    timings: QueryTimings = field(default_factory=QueryTimings)

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "backend": self.backend,
                         "route": self.route}
        if self.value is not None:
            payload["value"] = self.value
        if self.estimates is not None:
            payload["estimates"] = dict(self.estimates)
        if self.groups is not None:
            payload["groups"] = {str(key): value
                                 for key, value in self.groups.items()}
        if self.top is not None:
            payload["top"] = [[str(key), est] for key, est in self.top]
        if self.alerts is not None:
            payload["alerts"] = list(self.alerts)
        if self.bounds is not None:
            payload["bounds"] = self.bounds
        if self.moments is not None:
            payload["moments"] = self.moments
        if self.count is not None:
            payload["count"] = self.count
        payload["cells_scanned"] = self.cells_scanned
        payload["merges"] = self.merges
        if self.shared_scan:
            payload["shared_scan"] = True
        payload["timings"] = self.timings.to_dict()
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=float)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QueryResponse":
        payload = dict(payload)
        timings = QueryTimings.from_dict(payload.pop("timings", {}))
        top = payload.pop("top", None)
        if top is not None:
            top = [(key, est) for key, est in top]
        return cls(kind=payload.pop("kind"), backend=payload.pop("backend"),
                   route=payload.pop("route"),
                   value=payload.pop("value", None),
                   estimates=payload.pop("estimates", None),
                   groups=payload.pop("groups", None), top=top,
                   alerts=payload.pop("alerts", None),
                   bounds=payload.pop("bounds", None),
                   moments=payload.pop("moments", None),
                   count=payload.pop("count", None),
                   cells_scanned=int(payload.pop("cells_scanned", 0)),
                   merges=int(payload.pop("merges", 0)),
                   shared_scan=bool(payload.pop("shared_scan", False)),
                   timings=timings)

    @classmethod
    def from_json(cls, text: str) -> "QueryResponse":
        return cls.from_dict(json.loads(text))
