"""Repo-invariant static analysis for the moments-sketch codebase.

Four rule families encode the invariants the test suite cannot cheaply
observe:

* lock discipline (LOCK001/LOCK002) — declared guarded state is only
  touched under its lock, including closure escapes into thread pools;
* determinism discipline (DET001–DET003) — no hash-order iteration or
  unordered float folds in merge-order-sensitive modules;
* telemetry guards (TEL001/TEL002) — data-plane calls dominated by
  ``TELEMETRY.enabled``, spans managed by context managers;
* API hygiene (API001/API002) — no internal deprecated-keyword callers,
  public errors from the ``core.errors`` taxonomy.

Run it as ``repro analysis lint src/`` (or ``make lint``); suppress a
single finding with ``# repro: noqa[RULE]`` and accepted legacy debt
with the baseline file (:mod:`repro.analysis.baseline`).
"""

from .api_hygiene import ApiHygieneChecker, BARE_ERROR, DEPRECATED_KWARG
from .baseline import (apply_baseline, load_baseline, save_baseline,
                       BASELINE_VERSION)
from .config import (AnalysisConfig, DEFAULT_CONFIG, DEFAULT_GUARDED_BY,
                     LockSpec)
from .core import (Checker, Finding, ModuleContext, PARSE_RULE, RuleSpec,
                   all_rules, analyze_paths, iter_python_files)
from .determinism import (DeterminismChecker, DICT_VIEW_ITER, FLOAT_SUM,
                          SET_ITER)
from .locks import LOCK_HELPER, LOCK_OUTSIDE, LockDisciplineChecker
from .telemetry_guard import SPAN_LIFECYCLE, TelemetryGuardChecker, UNGUARDED

#: Checker classes run by default (order = report grouping preference).
DEFAULT_CHECKERS = (
    LockDisciplineChecker,
    DeterminismChecker,
    TelemetryGuardChecker,
    ApiHygieneChecker,
)

__all__ = [
    "AnalysisConfig", "ApiHygieneChecker", "Checker", "DeterminismChecker",
    "Finding", "LockDisciplineChecker", "LockSpec", "ModuleContext",
    "RuleSpec", "TelemetryGuardChecker",
    "DEFAULT_CHECKERS", "DEFAULT_CONFIG", "DEFAULT_GUARDED_BY",
    "BASELINE_VERSION", "PARSE_RULE",
    "LOCK_OUTSIDE", "LOCK_HELPER", "SET_ITER", "DICT_VIEW_ITER", "FLOAT_SUM",
    "UNGUARDED", "SPAN_LIFECYCLE", "DEPRECATED_KWARG", "BARE_ERROR",
    "all_rules", "analyze_paths", "apply_baseline", "iter_python_files",
    "load_baseline", "save_baseline",
]
