"""Visitor core of the repo-invariant static-analysis engine.

The engine is deliberately small: a :class:`Finding` record, a
:class:`Checker` protocol, per-file :class:`ModuleContext` construction
(AST + ``# repro: noqa[...]`` suppression map), and
:func:`analyze_paths`, which walks the target tree, runs every checker,
and filters suppressed findings.

Suppression has two in-code forms plus the baseline file (see
:mod:`repro.analysis.baseline`):

* line level — ``# repro: noqa[LOCK001]`` (or a bare ``# repro: noqa``)
  on the flagged physical line;
* function level — the same comment on a ``def`` line suppresses the
  named rules for the whole function body.  This is the escape hatch
  for functions whose *callers* establish an invariant the
  intraprocedural analysis cannot see (e.g. a tracing wrapper that is
  only dispatched when ``TELEMETRY.enabled`` is true).
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator,
                    List, Optional, Sequence, Tuple, Union)

from ..core.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .config import AnalysisConfig

PathLike = Union[str, Path]

#: Rule id for files the engine cannot parse at all.
PARSE_RULE = "PARSE001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: ``None`` in the per-line suppression map means "all rules".
NoqaRules = Optional[FrozenSet[str]]


@dataclass(frozen=True)
class RuleSpec:
    """One rule's identity and one-line summary (shown by ``--rules``)."""

    rule: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stripped source text of the flagged line — the baseline key
    #: component that survives unrelated line-number drift.
    snippet: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> str:
        return f"{self.path}::{self.rule}::{self.snippet}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message,
                "snippet": self.snippet}


class ModuleContext:
    """One parsed target file: AST, source lines, suppression map."""

    def __init__(self, path: Path, source: str, rel: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.noqa: Dict[int, NoqaRules] = _collect_noqa(source)
        self._function_spans = _function_spans(self.tree)

    def matches(self, patterns: Iterable[str]) -> bool:
        """True when any pattern occurs in this file's canonical path."""
        return any(pattern in self.rel for pattern in patterns)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        snippet = (self.lines[line - 1].strip()
                   if 0 < line <= len(self.lines) else "")
        return Finding(path=self.rel, line=line, col=col, rule=rule,
                       message=message, snippet=snippet)

    def suppressed(self, finding: Finding) -> bool:
        """Line-level or enclosing-function-level noqa for this rule."""
        if _noqa_covers(self.noqa.get(finding.line), finding.rule):
            return True
        for start, end in self._function_spans:
            if start <= finding.line <= end \
                    and _noqa_covers(self.noqa.get(start), finding.rule):
                return True
        return False


class Checker:
    """Base class: subclasses declare ``rules`` and implement ``check``."""

    rules: Tuple[RuleSpec, ...] = ()

    def __init__(self, config: "AnalysisConfig"):
        self.config = config

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def _noqa_covers(entry: NoqaRules, rule: str) -> bool:
    if entry is None:
        return False
    return entry is ALL_RULES or rule in entry


#: Sentinel for a bare ``# repro: noqa`` (suppresses every rule).
ALL_RULES = frozenset({"*"})


def _collect_noqa(source: str) -> Dict[int, NoqaRules]:
    """Map line number -> suppressed rule set (ALL_RULES for bare noqa).

    Uses the tokenizer so string literals containing the marker text do
    not suppress anything.
    """
    out: Dict[int, NoqaRules] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                out[tok.start[0]] = ALL_RULES
            else:
                names = frozenset(part.strip() for part in rules.split(",")
                                  if part.strip())
                existing = out.get(tok.start[0])
                if existing is ALL_RULES:
                    continue
                out[tok.start[0]] = (names if existing is None
                                     else existing | names)
    except tokenize.TokenizeError:
        pass
    return out


def _function_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(def-line, end-line) for every function, for function-level noqa."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = int(getattr(node, "end_lineno", node.lineno) or node.lineno)
            spans.append((node.lineno, end))
    return spans


# ----------------------------------------------------------------------
# AST helpers shared by the rule modules
# ----------------------------------------------------------------------

def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None when the root is not a Name.

    Calls inside the chain are peeled (``a.b("x").c`` -> ["a","b","c"]),
    which is what lets ``TELEMETRY.registry.counter(...).inc(...)``
    resolve to its ``TELEMETRY.registry`` root.
    """
    parts: List[str] = []
    cur: ast.expr = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Call):
            cur = cur.func
        elif isinstance(cur, ast.Name):
            parts.append(cur.id)
            return list(reversed(parts))
        else:
            return None


def is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    """``self.<attr>`` (any attr when ``attr`` is None)."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and (attr is None or node.attr == attr))


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/method in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".mypy_cache", ".pytest_cache"}


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path, None)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.setdefault(sub, None)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(seen)


def canonical_rel(path: Path) -> str:
    """Stable posix path for findings and config matching.

    Relative to the current directory when possible, so findings read
    as ``src/repro/...`` regardless of how the path was spelled.
    """
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def analyze_paths(paths: Sequence[PathLike],
                  config: Optional["AnalysisConfig"] = None,
                  checkers: Optional[Sequence[type]] = None
                  ) -> Tuple[List[Finding], int]:
    """Run every checker over every target file.

    Returns ``(findings, files_checked)`` with noqa suppression already
    applied (baseline filtering is the caller's concern — see
    :func:`repro.analysis.baseline.apply_baseline`).
    """
    from .config import DEFAULT_CONFIG
    from . import DEFAULT_CHECKERS

    cfg = config if config is not None else DEFAULT_CONFIG
    checker_types = list(checkers if checkers is not None
                         else DEFAULT_CHECKERS)
    instances = [cls(cfg) for cls in checker_types]
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        rel = canonical_rel(path)
        source = path.read_text(encoding="utf-8")
        try:
            ctx = ModuleContext(path, source, rel)
        except SyntaxError as exc:
            findings.append(Finding(
                path=rel, line=int(exc.lineno or 1), col=int(exc.offset or 1),
                rule=PARSE_RULE, message=f"cannot parse file: {exc.msg}",
                snippet=(exc.text or "").strip()))
            continue
        for checker in instances:
            for finding in checker.check(ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings, len(files)


def all_rules(checkers: Optional[Sequence[type]] = None) -> List[RuleSpec]:
    """The rule catalogue of the given (default: all) checkers."""
    from . import DEFAULT_CHECKERS

    specs: List[RuleSpec] = [RuleSpec(PARSE_RULE, "file cannot be parsed")]
    for cls in (checkers if checkers is not None else DEFAULT_CHECKERS):
        specs.extend(cls.rules)
    return specs
