"""Baseline suppression: accepted legacy findings live in one file.

A baseline entry is keyed on ``path::rule::stripped-source-line`` so it
survives unrelated line-number drift but dies with the offending code.
Matching is multiset-accurate: two identical violations need two
baseline entries, so fixing one of them surfaces the other.

The shipped baseline (``.analysis-baseline.json``) starts *empty* —
this PR fixes every true positive instead of grandfathering it — but
the mechanism is what lets the next rule family land without blocking
on a repo-wide cleanup.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..core.errors import AnalysisError
from .core import Finding

PathLike = Union[str, Path]

BASELINE_VERSION = 1


def load_baseline(path: PathLike) -> Counter:
    """Baseline-key multiset from a baseline document on disk."""
    raw = Path(path)
    try:
        doc = json.loads(raw.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise AnalysisError(f"baseline file not found: {raw}")
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"corrupt baseline {raw}: {exc}")
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {raw} has unsupported version "
            f"{doc.get('version') if isinstance(doc, dict) else doc!r}")
    entries = doc.get("findings", [])
    if not isinstance(entries, list):
        raise AnalysisError(f"baseline {raw}: 'findings' must be a list")
    keys: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict) or "key" not in entry:
            raise AnalysisError(
                f"baseline {raw}: each finding needs a 'key' field")
        keys[str(entry["key"])] += 1
    return keys


def save_baseline(path: PathLike, findings: Sequence[Finding]) -> None:
    """Write the given findings as the new accepted baseline."""
    entries: List[Dict[str, object]] = [
        {"key": f.baseline_key(), "rule": f.rule, "path": f.path}
        for f in sorted(findings, key=Finding.sort_key)]
    doc = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: Sequence[Finding], baseline: Counter
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against the baseline.

    Consumes baseline entries one-for-one, preserving finding order.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
