"""Repo-specific configuration of the static-analysis rules.

Everything checkable is declared here rather than hard-coded in the
rule modules, so tests can run the same checkers against the fixture
corpus with a fixture-shaped configuration, and the next subsystem PR
extends coverage by editing one file.

Path patterns are plain substrings matched against the canonical posix
path of each target file (``src/repro/cluster/broker.py`` matches the
pattern ``repro/cluster/broker.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Tuple


@dataclass(frozen=True)
class LockSpec:
    """Which attributes of one class a ``with self.<lock>`` must guard.

    ``init_methods`` run before the object is published to other
    threads, so they are treated as implicitly holding the lock; the
    same applies to any method whose name ends in ``_locked`` — the
    repo convention for private helpers whose *callers* hold the lock
    (the companion rule LOCK002 enforces that convention at call
    sites).
    """

    guarded: FrozenSet[str]
    lock_attr: str = "_lock"
    init_methods: FrozenSet[str] = frozenset({"__init__"})


def _lock(*attrs: str, lock_attr: str = "_lock",
          init_methods: Tuple[str, ...] = ("__init__",)) -> LockSpec:
    return LockSpec(guarded=frozenset(attrs), lock_attr=lock_attr,
                    init_methods=frozenset(init_methods))


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable scope of every rule family."""

    #: path pattern -> class name -> lock declaration (GUARDED_BY).
    guarded_by: Mapping[str, Mapping[str, LockSpec]] = field(
        default_factory=dict)
    #: Modules whose answers must be bit-exact across merge orders.
    determinism_modules: Tuple[str, ...] = ()
    #: Identifier substrings marking float accumulations for DET003.
    float_sum_hints: Tuple[str, ...] = (
        "seconds", "latency", "duration", "power_sums", "log_sums",
        "estimate", "weight")
    #: Modules exempt from the telemetry-guard rules (the plane itself).
    telemetry_exempt_modules: Tuple[str, ...] = ("repro/telemetry/",)
    #: Deprecated call-site keyword -> its canonical replacement.
    deprecated_kwargs: Mapping[str, str] = field(
        default_factory=lambda: {"phi": "q"})
    #: Callees allowed to receive a deprecated keyword (the funnel that
    #: implements the deprecation itself).
    deprecated_kwarg_funnels: Tuple[str, ...] = ("normalize_q",)
    #: Modules whose public surface must raise the core.errors taxonomy.
    error_taxonomy_modules: Tuple[str, ...] = ()
    #: Builtin exception names the taxonomy rule rejects.
    bare_errors: Tuple[str, ...] = ("ValueError",)

    def with_overrides(self, **kwargs: object) -> "AnalysisConfig":
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: GUARDED_BY registry for the threaded production modules.  Attributes
#: not listed (schema fields, config knobs, backend handles) are
#: immutable after ``__init__`` and deliberately unguarded.
DEFAULT_GUARDED_BY: Dict[str, Dict[str, LockSpec]] = {
    "repro/cluster/broker.py": {
        "ClusterBroker": _lock("_pool", "queries_served", "last_profile"),
    },
    "repro/storage/compactor.py": {
        "Compactor": _lock("rounds", "_thread"),
    },
    "repro/storage/tiered.py": {
        "TieredStore": _lock(
            "segments", "_index", "_seen", "_next_seen", "_file_seq",
            "epoch", "stats_counters", "hot", "_hot_rows", "_hot_keys",
            "manifest",
            init_methods=("__init__", "_recover")),
    },
    "repro/ingest/session.py": {
        "IngestSession": _lock(
            "buffer", "reports", "total_rows", "total_cells", "closed",
            "_flush_index"),
    },
    "repro/telemetry/metrics.py": {
        "LogHistogram": _lock("zeros", "min", "max", "_pos", "_neg"),
        "Counter": _lock("value"),
        "Gauge": _lock("value"),
        "MetricsRegistry": _lock("_metrics"),
    },
    "repro/telemetry/trace.py": {
        "Tracer": _lock("_ring", "spans_recorded", "spans_dropped"),
    },
    "repro/telemetry/slowlog.py": {
        "SlowQueryLog": _lock("_entries", "captured"),
    },
    "repro/optimizer/epochs.py": {
        "FlushEpochs": _lock("_next_token", "_tokens", "_refs", "_pins",
                             "_epochs", "_shard_epochs"),
    },
    "repro/optimizer/cache.py": {
        "MergeCache": _lock("_entries", "bytes_used", "hits", "misses",
                            "evictions", "stale_drops"),
    },
    "repro/optimizer/advisor.py": {
        "WorkloadProfile": _lock("_scans"),
    },
    "repro/optimizer/planner.py": {
        "Optimizer": _lock("_materialized"),
    },
}

#: Merge-order-sensitive modules: folds here feed bit-exact contracts.
DEFAULT_DETERMINISM_MODULES: Tuple[str, ...] = (
    "repro/store/",
    "repro/cluster/",
    "repro/core/batch_solver.py",
    "repro/telemetry/metrics.py",
    "repro/optimizer/",
)

#: Packages whose public entry points must raise the errors taxonomy.
DEFAULT_ERROR_TAXONOMY_MODULES: Tuple[str, ...] = (
    "repro/api/",
    "repro/ingest/",
    "repro/cluster/",
    "repro/storage/",
    "repro/telemetry/",
    "repro/macrobase/",
    "repro/datacube/",
    "repro/druid/",
    "repro/analysis/",
    "repro/optimizer/",
)

DEFAULT_CONFIG = AnalysisConfig(
    guarded_by=DEFAULT_GUARDED_BY,
    determinism_modules=DEFAULT_DETERMINISM_MODULES,
    error_taxonomy_modules=DEFAULT_ERROR_TAXONOMY_MODULES,
)
