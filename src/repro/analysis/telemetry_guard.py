"""Telemetry guard discipline: the data plane is free when disabled.

The telemetry plane's core promise is near-zero cost while disabled, so
every call into the data plane (``TELEMETRY.tracer``,
``TELEMETRY.registry``, ``TELEMETRY.slow_queries``) outside
``repro/telemetry/`` itself must be dominated by an enabledness check:

* **TEL001** — a data-plane call not dominated by ``TELEMETRY.enabled``
  (or a recognized proxy for it).  Recognized guards, tracked
  intraprocedurally:

  - a direct ``if TELEMETRY.enabled:`` (or ``... and other:``) test;
  - a boolean alias — ``telemetry_on = TELEMETRY.enabled`` — used the
    same way;
  - an early return — ``if not TELEMETRY.enabled: return`` dominates
    the rest of the function;
  - a *span-like* optional — ``span = tracer.span(...) if enabled else
    None`` — whose ``if span is not None:`` (or truthiness) test
    re-establishes the guard later.

  Control-plane calls (``TELEMETRY.enable()``, ``disable()``,
  ``snapshot()``) are exempt: they are exactly the calls that must work
  while disabled.  Nested functions inherit alias facts but not
  dominance — a closure defined under a guard may run later, when
  telemetry has been toggled.

* **TEL002** — span lifecycle outside a context manager: an explicit
  ``span.end()`` on a span that was not opened ``detached=True``, a
  literal ``__enter__()`` call, or a ``.span(...)`` opened and
  immediately discarded as a bare expression statement.  Detached spans
  are the sanctioned exception — they exist precisely for lifetimes
  that cross thread boundaries (the cluster node ends them manually).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from .core import Checker, Finding, ModuleContext, RuleSpec, attribute_chain

UNGUARDED = "TEL001"
SPAN_LIFECYCLE = "TEL002"

#: Attributes of the TELEMETRY singleton that form the data plane.
DATA_ROOTS = ("tracer", "registry", "slow_queries")


@dataclass
class _Facts:
    """Per-function alias knowledge, inherited by nested functions."""

    #: names aliasing a data-plane handle (``tracer = TELEMETRY.tracer``).
    handles: Set[str] = field(default_factory=set)
    #: names aliasing the enabled flag (``on = TELEMETRY.enabled``).
    enabled: Set[str] = field(default_factory=set)
    #: span-like optionals -> opened detached?  (``s = span(...) if on
    #: else None``; truthiness of ``s`` re-establishes the guard).
    spanlike: Dict[str, bool] = field(default_factory=dict)

    def copy(self) -> "_Facts":
        return _Facts(set(self.handles), set(self.enabled),
                      dict(self.spanlike))


def _telemetry_root(chain: Optional[List[str]], facts: _Facts) -> str:
    """Data-plane root of an attribute chain, or '' when not telemetry."""
    if not chain:
        return ""
    if chain[0] in facts.handles:
        return chain[0]
    try:
        idx = chain.index("TELEMETRY")
    except ValueError:
        return ""
    if idx + 1 < len(chain) and chain[idx + 1] in DATA_ROOTS:
        return f"TELEMETRY.{chain[idx + 1]}"
    return ""


def _is_enabled_attr(node: ast.expr) -> bool:
    chain = attribute_chain(node)
    return bool(chain) and len(chain) >= 2 \
        and chain[-2] == "TELEMETRY" and chain[-1] == "enabled"


def _span_call(node: ast.expr, facts: _Facts) -> Optional[ast.Call]:
    """The Call node when ``node`` is a tracer ``.span(...)`` call."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "span" \
            and _telemetry_root(attribute_chain(node.func), facts):
        return node
    return None


def _is_detached(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "detached" and isinstance(kw.value, ast.Constant) \
                and bool(kw.value.value):
            return True
    return False


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


class TelemetryGuardChecker(Checker):
    """TEL001/TEL002 over every function (and module body) of a file."""

    rules = (
        RuleSpec(UNGUARDED,
                 "telemetry data-plane call not dominated by an "
                 "enabledness check"),
        RuleSpec(SPAN_LIFECYCLE,
                 "span lifecycle managed manually instead of via a "
                 "context manager"),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.matches(self.config.telemetry_exempt_modules):
            return
        self._ctx = ctx
        self._out: List[Finding] = []
        self._block(ctx.tree.body, _Facts(), guarded=False)
        yield from self._out

    # -- guard recognition ---------------------------------------------

    def _is_guard(self, test: ast.expr, facts: _Facts) -> bool:
        if _is_enabled_attr(test):
            return True
        if isinstance(test, ast.Name) and (test.id in facts.enabled
                                           or test.id in facts.spanlike):
            return True
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.IsNot) \
                and isinstance(test.left, ast.Name) \
                and test.left.id in facts.spanlike \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            return True
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return any(self._is_guard(v, facts) for v in test.values)
        return False

    def _is_unguard(self, test: ast.expr, facts: _Facts) -> bool:
        """``not <guard>`` / ``x is None`` — the early-return shapes."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._is_guard(test.operand, facts)
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.Is) \
                and isinstance(test.left, ast.Name) \
                and test.left.id in facts.spanlike \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            return True
        return False

    # -- statement dataflow --------------------------------------------

    def _block(self, body: Sequence[ast.stmt], facts: _Facts,
               guarded: bool) -> None:
        for stmt in body:
            guarded = self._stmt(stmt, facts, guarded)

    def _stmt(self, stmt: ast.stmt, facts: _Facts, guarded: bool) -> bool:
        """Process one statement; returns guardedness for its successors."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._block(stmt.body, facts.copy(), guarded=False)
            return guarded
        if isinstance(stmt, ast.ClassDef):
            self._block(stmt.body, facts.copy(), guarded=False)
            return guarded
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, facts, guarded)
            body_guarded = guarded or self._is_guard(stmt.test, facts)
            self._block(stmt.body, facts, body_guarded)
            self._block(stmt.orelse, facts, guarded)
            if not guarded and self._is_unguard(stmt.test, facts) \
                    and _terminates(stmt.body) and not stmt.orelse:
                return True
            return guarded
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                self._expr(value, facts, guarded)
                if isinstance(stmt, ast.Assign):
                    self._record_assign(stmt.targets, value, facts, guarded)
            return guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, facts, guarded)
                span = _span_call(item.context_expr, facts)
                if span is not None and item.optional_vars is not None \
                        and isinstance(item.optional_vars, ast.Name):
                    facts.spanlike[item.optional_vars.id] = True
            self._block(stmt.body, facts, guarded)
            return guarded
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, facts, guarded)
            self._block(stmt.body, facts, guarded)
            self._block(stmt.orelse, facts, guarded)
            return guarded
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, facts, guarded)
            self._block(stmt.body, facts, guarded)
            self._block(stmt.orelse, facts, guarded)
            return guarded
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, facts, guarded)
            for handler in stmt.handlers:
                self._block(handler.body, facts, guarded)
            self._block(stmt.orelse, facts, guarded)
            self._block(stmt.finalbody, facts, guarded)
            return guarded
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            span = _span_call(value, facts)
            if span is not None:
                self._out.append(self._ctx.finding(
                    value, SPAN_LIFECYCLE,
                    "span opened and discarded; use 'with ...tracer."
                    "span(...):' so it is always closed"))
            self._expr(value, facts, guarded)
            return guarded
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, facts, guarded)
            elif isinstance(child, ast.stmt):
                self._stmt(child, facts, guarded)
        return guarded

    def _record_assign(self, targets: Sequence[ast.expr], value: ast.expr,
                       facts: _Facts, guarded: bool) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        chain = attribute_chain(value)
        # tracer = TELEMETRY.tracer  (plain attribute, no call involved)
        if isinstance(value, ast.Attribute) and chain \
                and chain[-1] in DATA_ROOTS and "TELEMETRY" in chain:
            facts.handles.update(names)
            return
        # on = TELEMETRY.enabled  /  on = TELEMETRY.enabled and fast
        if _is_enabled_attr(value):
            facts.enabled.update(names)
            return
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.And) \
                and any(self._is_guard(v, facts) for v in value.values):
            facts.enabled.update(names)
            return
        # span = tracer.span(...) if <guard> else None
        if isinstance(value, ast.IfExp) \
                and self._is_guard(value.test, facts) \
                and isinstance(value.orelse, ast.Constant) \
                and value.orelse.value is None:
            span = _span_call(value.body, facts)
            detached = _is_detached(span) if span is not None else False
            for name in names:
                facts.spanlike[name] = detached
            return
        # other = span  (transitive span-like)
        if isinstance(value, ast.Name) and value.id in facts.spanlike:
            for name in names:
                facts.spanlike[name] = facts.spanlike[value.id]
            return
        # span = tracer.span(...) under an established guard
        span = _span_call(value, facts)
        if span is not None and guarded:
            for name in names:
                facts.spanlike[name] = _is_detached(span)
            return
        # reassignment kills stale facts
        for name in names:
            facts.handles.discard(name)
            facts.enabled.discard(name)
            facts.spanlike.pop(name, None)

    # -- expression dataflow -------------------------------------------

    def _expr(self, node: ast.expr, facts: _Facts, guarded: bool) -> None:
        if isinstance(node, ast.IfExp):
            self._expr(node.test, facts, guarded)
            body_guarded = guarded or self._is_guard(node.test, facts)
            self._expr(node.body, facts, body_guarded)
            self._expr(node.orelse, facts, guarded)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            running = guarded
            for value in node.values:
                self._expr(value, facts, running)
                running = running or self._is_guard(value, facts)
            return
        if isinstance(node, ast.Lambda):
            self._expr(node.body, facts.copy(), guarded=False)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "__enter__":
                    self._out.append(self._ctx.finding(
                        node, SPAN_LIFECYCLE,
                        "explicit __enter__() call; use a 'with' block"))
                if func.attr == "end" and isinstance(func.value, ast.Name) \
                        and func.value.id in facts.spanlike \
                        and not facts.spanlike[func.value.id]:
                    self._out.append(self._ctx.finding(
                        node, SPAN_LIFECYCLE,
                        f"manual '{func.value.id}.end()' on a span not "
                        "opened detached; use 'with' (detached=True spans "
                        "may be ended manually)"))
            root = _telemetry_root(attribute_chain(func), facts)
            if root:
                if not guarded:
                    self._out.append(self._ctx.finding(
                        node, UNGUARDED,
                        f"call into '{root}' is not dominated by a "
                        "'TELEMETRY.enabled' check; guard it so disabled "
                        "telemetry stays free"))
                # One finding per chained call: skip the func chain
                # (inner calls are part of it), still visit arguments.
                for arg in node.args:
                    self._expr(arg, facts, guarded)
                for kw in node.keywords:
                    self._expr(kw.value, facts, guarded)
                return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, facts, guarded)
