"""Lock discipline: declared guarded state is only touched under its lock.

An intraprocedural held-locks dataflow over ``with self.<lock>:`` blocks
for every class declared in the ``guarded_by`` registry:

* **LOCK001** — a read or write of a lock-guarded attribute outside any
  ``with self.<lock>`` block.  Nested functions and lambdas reset the
  held state: a closure defined inside a lock block may run later on
  another thread (e.g. submitted to the broker pool), so holding the
  lock at definition time proves nothing at call time.
* **LOCK002** — a ``self._foo_locked(...)`` call made without holding
  the lock.  The ``_locked`` suffix is the repo convention for private
  helpers whose callers must hold the lock; their bodies are analyzed
  as lock-held, and this rule closes the loop at the call sites.

``__init__`` (plus any method listed in ``LockSpec.init_methods``) is
treated as implicitly holding every lock: the object has not been
published to other threads yet.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from .config import LockSpec
from .core import Checker, Finding, ModuleContext, RuleSpec, is_self_attr

LOCK_OUTSIDE = "LOCK001"
LOCK_HELPER = "LOCK002"


class LockDisciplineChecker(Checker):
    """Enforces the GUARDED_BY registry declared in the config."""

    rules = (
        RuleSpec(LOCK_OUTSIDE,
                 "lock-guarded attribute accessed outside its lock"),
        RuleSpec(LOCK_HELPER,
                 "_locked-suffixed helper called without holding the lock"),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        specs: Dict[str, LockSpec] = {}
        for pattern, classes in self.config.guarded_by.items():
            if pattern in ctx.rel:
                specs.update(classes)
        if not specs:
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in specs:
                yield from self._check_class(ctx, node, specs[node.name])

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef,
                     spec: LockSpec) -> Iterator[Finding]:
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                held = (item.name in spec.init_methods
                        or item.name.endswith("_locked"))
                for stmt in item.body:
                    yield from self._visit(ctx, stmt, spec, held,
                                           escaped=False)

    # ------------------------------------------------------------------

    def _visit(self, ctx: ModuleContext, node: ast.AST, spec: LockSpec,
               held: bool, escaped: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            takes_lock = any(
                is_self_attr(item.context_expr, spec.lock_attr)
                for item in node.items)
            for item in node.items:
                yield from self._visit(ctx, item.context_expr, spec, held,
                                       escaped)
            for stmt in node.body:
                yield from self._visit(ctx, stmt, spec, held or takes_lock,
                                       escaped)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Closure escape: the body may run after the lock is gone.
            body = (node.body if isinstance(node.body, list)
                    else [node.body])
            for stmt in body:
                yield from self._visit(ctx, stmt, spec, held=False,
                                       escaped=True)
            return
        if isinstance(node, ast.Attribute) and not held \
                and is_self_attr(node) and node.attr in spec.guarded:
            where = (" (closure may outlive the lock scope — e.g. a "
                     "callback submitted to a thread pool)"
                     if escaped else "")
            yield ctx.finding(
                node, LOCK_OUTSIDE,
                f"'self.{node.attr}' is guarded by 'self.{spec.lock_attr}' "
                f"but accessed outside a 'with self.{spec.lock_attr}:' "
                f"block{where}")
            # Fall through: still visit children (subscripts etc.).
        if isinstance(node, ast.Call) and not held \
                and is_self_attr(node.func) \
                and node.func.attr.endswith("_locked"):
            yield ctx.finding(
                node, LOCK_HELPER,
                f"'self.{node.func.attr}()' requires "
                f"'self.{spec.lock_attr}' to be held by the caller")
        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, spec, held, escaped)
