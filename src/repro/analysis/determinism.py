"""Determinism discipline for merge-order-sensitive modules.

The repo's accuracy story rests on bit-exact left-fold merges
(``merge_all`` documents the canonical order, and the cluster layer
sorts partials before folding).  Any iteration whose order depends on
hash seeds, or any float accumulation whose association order is
unspecified, silently breaks that contract.  Within the modules listed
in ``AnalysisConfig.determinism_modules``:

* **DET001** — iterating a ``set`` (literal, ``set()`` call, or set
  comprehension) in a ``for`` loop or comprehension.  Sets are fine for
  membership; iterate ``sorted(...)`` instead when order can leak into
  results.
* **DET002** — iterating ``d.keys()`` in a loop or comprehension.
  ``.keys()`` adds nothing over iterating the dict and, like it,
  yields insertion order — which for merged state is arrival order;
  spell the intended order with ``sorted(d)`` instead.  (``.items()``
  and ``.values()`` loops are left alone: the repo's hot maps are
  built in sorted key order, so those iterations are deterministic.)
* **DET003** — accumulating floats with builtin ``sum(...)`` when the
  argument mentions a float-hinted identifier (latency, power_sums,
  estimate, ...).  Builtin ``sum`` folds in iteration order with no
  compensation; use an explicit sorted fold or ``math.fsum``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .core import Checker, Finding, ModuleContext, RuleSpec

SET_ITER = "DET001"
DICT_VIEW_ITER = "DET002"
FLOAT_SUM = "DET003"

_DICT_VIEWS = ("keys",)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def _dict_view_name(node: ast.expr) -> str:
    """'keys'/'values'/'items' when node is ``<expr>.keys()`` etc."""
    if isinstance(node, ast.Call) and not node.args and not node.keywords \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _DICT_VIEWS:
        return node.func.attr
    return ""


class DeterminismChecker(Checker):
    """Flags hash-order and fold-order hazards in tagged modules."""

    rules = (
        RuleSpec(SET_ITER, "set iterated in a merge-order-sensitive module"),
        RuleSpec(DICT_VIEW_ITER,
                 "dict view iterated in a merge-order-sensitive module"),
        RuleSpec(FLOAT_SUM,
                 "float accumulation via builtin sum() in a "
                 "merge-order-sensitive module"),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(self.config.determinism_modules):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield ctx.finding(
                        it, SET_ITER,
                        "iteration order of a set depends on hash seeds; "
                        "iterate sorted(...) so merged results stay "
                        "bit-exact")
                view = _dict_view_name(it)
                if view:
                    yield ctx.finding(
                        it, DICT_VIEW_ITER,
                        f"dict .{view}() iterates in insertion order, "
                        "which is arrival order for merged state; iterate "
                        "sorted(...) instead")
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "sum" and node.args \
                    and self._mentions_float_hint(node.args[0]):
                yield ctx.finding(
                    node, FLOAT_SUM,
                    "builtin sum() folds floats in unspecified association "
                    "order; use an explicit sorted fold or math.fsum for "
                    "merge-order-stable totals")

    def _mentions_float_hint(self, node: ast.expr) -> bool:
        hints = self.config.float_sum_hints
        for sub in ast.walk(node):
            name = ""
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name and any(hint in name for hint in hints):
                return True
        return False
