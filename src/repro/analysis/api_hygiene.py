"""API hygiene: deprecated keywords and the error taxonomy.

* **API001** — an internal call site still passing a deprecated keyword
  (``phi=`` → ``q=``).  The compatibility shims themselves keep
  accepting the old spelling for external callers; the *funnel* helpers
  that implement the deprecation (``normalize_q``) are the only callees
  allowed to receive it.  Definition sites are never flagged — removing
  the parameter would break the public surface.
* **API002** — a public entry point raising a bare builtin exception
  (``raise ValueError(...)``) inside a module covered by the
  ``core/errors.py`` taxonomy.  Callers dispatch on :class:`ReproError`
  subclasses at system boundaries; a bare builtin escapes that net.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import Checker, Finding, ModuleContext, RuleSpec

DEPRECATED_KWARG = "API001"
BARE_ERROR = "API002"


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ApiHygieneChecker(Checker):
    """API001/API002 over the configured module patterns."""

    rules = (
        RuleSpec(DEPRECATED_KWARG,
                 "internal call site passes a deprecated keyword"),
        RuleSpec(BARE_ERROR,
                 "public entry point raises a bare builtin exception "
                 "instead of the core.errors taxonomy"),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        taxonomy = ctx.matches(self.config.error_taxonomy_modules)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif taxonomy and isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)

    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterator[Finding]:
        callee = _callee_name(node.func)
        if callee in self.config.deprecated_kwarg_funnels:
            return
        for kw in node.keywords:
            if kw.arg in self.config.deprecated_kwargs:
                replacement = self.config.deprecated_kwargs[kw.arg]
                target = f" to '{callee}'" if callee else ""
                yield ctx.finding(
                    node, DEPRECATED_KWARG,
                    f"deprecated keyword '{kw.arg}='{target}; pass "
                    f"'{replacement}=' (the shim exists for external "
                    "callers only)")

    def _check_raise(self, ctx: ModuleContext,
                     node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return
        name: Optional[str] = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in self.config.bare_errors:
            yield ctx.finding(
                node, BARE_ERROR,
                f"raise of bare '{name}' in a taxonomy-covered module; "
                "raise a repro.core.errors subclass so boundary handlers "
                "catch it")
