"""Columnar packed storage for homogeneous moments sketches.

The paper's cost model for a pre-aggregated quantile query is
``t_query = t_merge * n_merge + t_est`` (Eq. 2): a roll-up touches
``n_merge`` cells, merges their summaries, and estimates once.  The
moments sketch wins that race because one merge is a handful of float
adds — but only if those adds run at hardware speed.  Keeping every cell
as its own :class:`~repro.core.sketch.MomentsSketch` forces each merge
through Python attribute lookups and tiny ``(k+1)``-element numpy adds,
so a million-cell roll-up pays a million interpreter round trips.

:class:`PackedSketchStore` removes that bottleneck by packing N
homogeneous sketches (same order ``k``, same ``track_log``) into
structure-of-arrays buffers::

    counts[N]            float64   row counts (duplicated in power_sums[:, 0])
    mins[N], maxs[N]     float64   per-row extrema
    power_sums[N, k+1]   float64   sum(x**i) per row, index 0 = count
    log_sums[N, k+1]     float64   sum(log(x)**i) per row (track_log stores)
    log_valid[N]         bool      per-row log-moment validity

so that

* :meth:`batch_merge` over any row subset is a single ``np.add.reduce``
  along axis 0 plus one min/max reduction — and, because numpy's axis-0
  reduction over a C-contiguous matrix accumulates rows in order, the
  result is *bit-for-bit* identical to the sequential
  :func:`~repro.core.sketch.merge_all` fold over the same sketches;
* :meth:`batch_accumulate` ingests (row, value) pairs with one shared
  Vandermonde matrix and segmented ``np.add.reduceat`` reductions;
* :meth:`to_bytes` / :meth:`from_bytes` serialize the whole store as one
  header plus one contiguous little-endian payload, instead of N framed
  blobs;
* :meth:`sketch_at` round-trips individual rows to
  :class:`~repro.core.sketch.MomentsSketch` objects, zero-copy when
  ``copy=False`` (the sketch's arrays are views into the store).

Use the packed store when many sketches are merged *together* (data-cube
roll-ups, Druid broker merges, window re-merges); keep individual
sketches for one-off aggregation.  The measured crossover on this
implementation is a few dozen merges — see
``benchmarks/bench_batch_merge.py``.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

import numpy as np

from ..core.errors import EmptySketchError, IncompatibleSketchError, SketchError
from ..core.sketch import (ColumnarMoments, DEFAULT_ORDER, MAX_ORDER,
                           MomentsSketch)

#: Bulk wire format: magic, order k, flags, padding, row count (uint64).
_HEADER = struct.Struct("<4sBBxxQ")
_MAGIC = b"PSS1"

#: Initial capacity for stores created without an explicit one.
_MIN_CAPACITY = 8


class PackedSketchStore:
    """N homogeneous moments sketches in structure-of-arrays layout.

    Parameters
    ----------
    k:
        Moment order shared by every row (Section 4.1's ``k``).
    track_log:
        Whether rows maintain log power sums.  Homogeneous across the
        store; a row fed non-positive data simply flips its
        ``log_valid`` bit, exactly like a standalone sketch.
    capacity:
        Pre-allocated row count.  The store grows geometrically when
        exceeded, so this is an optimization, not a limit.
    """

    __slots__ = ("k", "track_log", "_size", "counts", "mins", "maxs",
                 "power_sums", "log_sums", "log_valid")

    def __init__(self, k: int = DEFAULT_ORDER, track_log: bool = True,
                 capacity: int = 0):
        if not 1 <= k <= MAX_ORDER:
            raise SketchError(f"order k must be in [1, {MAX_ORDER}], got {k}")
        self.k = int(k)
        self.track_log = bool(track_log)
        self._size = 0
        cap = max(int(capacity), 0)
        self.counts = np.zeros(cap)
        self.mins = np.full(cap, np.inf)
        self.maxs = np.full(cap, -np.inf)
        self.power_sums = np.zeros((cap, self.k + 1))
        self.log_sums = np.zeros((cap, self.k + 1))
        self.log_valid = np.full(cap, self.track_log, dtype=bool)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_sketches(cls, sketches: Iterable[MomentsSketch],
                      k: int | None = None,
                      track_log: bool | None = None) -> "PackedSketchStore":
        """Pack an iterable of sketches; parameters default to the first's."""
        sketches = list(sketches)
        if k is None or track_log is None:
            if not sketches:
                raise SketchError(
                    "cannot infer store parameters from zero sketches; "
                    "pass k and track_log explicitly")
            first = sketches[0]
            k = first.k if k is None else k
            track_log = first.track_log if track_log is None else track_log
        store = cls(k=k, track_log=track_log, capacity=len(sketches))
        for sketch in sketches:
            store.append(sketch)
        return store

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of live rows."""
        return self._size

    @property
    def capacity(self) -> int:
        return self.counts.shape[0]

    def new_row(self) -> int:
        """Allocate one empty row and return its index."""
        row = self._size
        if row == self.capacity:
            self._grow(row + 1)
        self._size = row + 1
        return row

    def append(self, sketch: MomentsSketch | None = None) -> int:
        """Append a row (empty, or a copy of ``sketch``'s state)."""
        row = self.new_row()
        if sketch is not None:
            self.set_row(row, sketch)
        return row

    def set_row(self, row: int, sketch: MomentsSketch) -> None:
        """Overwrite a row with ``sketch``'s state (the sketch is copied)."""
        self._check_row(row)
        self._check_sketch(sketch)
        self.counts[row] = sketch.count
        self.mins[row] = sketch.min
        self.maxs[row] = sketch.max
        self.power_sums[row] = sketch.power_sums
        if self.track_log:
            if sketch.track_log:
                self.log_sums[row] = sketch.log_sums
                self.log_valid[row] = sketch.log_valid
            else:
                # A non-log sketch carries no usable log state; mirroring
                # MomentsSketch.merge, the row's log moments are poisoned.
                self.log_sums[row] = 0.0
                self.log_valid[row] = False

    def clear_row(self, row: int) -> None:
        """Reset a row to the empty-sketch state (for ring reuse)."""
        self._check_row(row)
        self.counts[row] = 0.0
        self.mins[row] = np.inf
        self.maxs[row] = -np.inf
        self.power_sums[row] = 0.0
        self.log_sums[row] = 0.0
        self.log_valid[row] = self.track_log

    def sketch_at(self, row: int, copy: bool = True) -> MomentsSketch:
        """Materialize one row as a :class:`MomentsSketch`.

        With ``copy=False`` the sketch's ``power_sums``/``log_sums`` are
        zero-copy *views* into the store: cheap, but in-place mutation of
        the returned sketch writes through to the row (and scalar fields
        like ``count`` do not write back).  Use views for read paths only.
        """
        self._check_row(row)
        out = MomentsSketch(self.k, self.track_log)
        out.count = float(self.counts[row])
        out.min = float(self.mins[row])
        out.max = float(self.maxs[row])
        if copy:
            out.power_sums = self.power_sums[row].copy()
            out.log_sums = self.log_sums[row].copy()
        else:
            out.power_sums = self.power_sums[row]
            out.log_sums = self.log_sums[row]
        out.log_valid = bool(self.log_valid[row])
        return out

    def sketches(self, copy: bool = True) -> list[MomentsSketch]:
        """Every live row as a sketch (see :meth:`sketch_at` for ``copy``)."""
        return [self.sketch_at(row, copy=copy) for row in range(self._size)]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def accumulate_row(self, row: int, values) -> None:
        """Accumulate raw values into one row (Algorithm 1's ``Accumulate``).

        Bit-for-bit identical to ``MomentsSketch.accumulate`` fed the same
        chunk, so packed and standalone ingestion stay interchangeable.
        """
        self._check_row(row)
        x = np.atleast_1d(np.asarray(values, dtype=float))
        if x.size == 0:
            return
        if np.isnan(x).any():
            raise SketchError("cannot accumulate NaN values")
        self.counts[row] += x.size
        self.mins[row] = min(self.mins[row], float(x.min()))
        self.maxs[row] = max(self.maxs[row], float(x.max()))
        self.power_sums[row] += np.vander(x, self.k + 1, increasing=True).sum(axis=0)
        if self.track_log:
            if (x <= 0).any():
                self.log_valid[row] = False
            if self.log_valid[row]:
                logs = np.log(x)
                self.log_sums[row] += np.vander(
                    logs, self.k + 1, increasing=True).sum(axis=0)

    def batch_accumulate(self, rows, values) -> None:
        """Accumulate aligned (row, value) pairs with one Vandermonde pass.

        ``rows[i]`` is the destination row of ``values[i]``.  Values are
        grouped by row with a stable sort, so per-row update order matches
        feeding each row's values to ``accumulate_row`` in input order.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.intp))
        x = np.atleast_1d(np.asarray(values, dtype=float))
        if rows.shape != x.shape or rows.ndim != 1:
            raise SketchError(
                f"rows and values must be aligned 1-d arrays, got "
                f"{rows.shape} vs {x.shape}")
        if x.size == 0:
            return
        if np.isnan(x).any():
            raise SketchError("cannot accumulate NaN values")
        if rows.size and (rows.min() < 0 or rows.max() >= self._size):
            raise SketchError(
                f"row index out of range [0, {self._size})")
        order = np.argsort(rows, kind="stable")
        r = rows[order]
        xs = x[order]
        starts = np.flatnonzero(np.r_[True, r[1:] != r[:-1]])
        bounds = np.append(starts, r.size)
        target = r[starts]
        sizes = np.diff(bounds)
        # One shared Vandermonde matrix for the whole batch; the per-group
        # fold below uses np.add.reduce on contiguous slices, which is a
        # strict left fold and therefore bit-for-bit identical to feeding
        # each group to MomentsSketch.accumulate (reduceat is not: its
        # segment sums differ in associativity by ~1 ulp).
        vander = np.vander(xs, self.k + 1, increasing=True)
        for i in range(target.size):
            self.power_sums[target[i]] += np.add.reduce(
                vander[starts[i]:bounds[i + 1]], axis=0)
        self.counts[target] += sizes
        self.mins[target] = np.minimum(self.mins[target],
                                       np.minimum.reduceat(xs, starts))
        self.maxs[target] = np.maximum(self.maxs[target],
                                       np.maximum.reduceat(xs, starts))
        if self.track_log:
            poisoned = np.logical_or.reduceat(xs <= 0, starts)
            live = self.log_valid[target] & ~poisoned
            self.log_valid[target[poisoned]] = False
            if live.any():
                # Only the values of still-valid rows may enter np.log.
                keep = np.repeat(live, sizes)
                logs = np.vander(np.log(xs[keep]), self.k + 1, increasing=True)
                live_rows = target[live]
                stops = np.cumsum(sizes[live])
                starts_live = stops - sizes[live]
                for j in range(live_rows.size):
                    self.log_sums[live_rows[j]] += np.add.reduce(
                        logs[starts_live[j]:stops[j]], axis=0)

    def merge_into_row(self, row: int, sketch: MomentsSketch) -> None:
        """Merge a standalone sketch into one row (Algorithm 1's ``Merge``)."""
        self._check_row(row)
        self._check_sketch(sketch)
        self.counts[row] += sketch.count
        if sketch.min < self.mins[row]:
            self.mins[row] = sketch.min
        if sketch.max > self.maxs[row]:
            self.maxs[row] = sketch.max
        self.power_sums[row] += sketch.power_sums
        if self.track_log:
            if sketch.track_log and sketch.log_valid:
                if self.log_valid[row]:
                    self.log_sums[row] += sketch.log_sums
            else:
                self.log_valid[row] = False

    # ------------------------------------------------------------------
    # Vectorized merges (the hot path)
    # ------------------------------------------------------------------

    def batch_merge(self, indices=None) -> MomentsSketch:
        """Merge a row subset into a fresh sketch with one reduction.

        ``indices`` may repeat rows and dictates the fold order; ``None``
        merges every live row in storage order.  The result is bit-for-bit
        identical (count and power sums) to ``merge_all`` over the same
        sketches in the same order, because numpy's axis-0 ``add.reduce``
        over a C-contiguous matrix is a sequential left fold.

        Raises :class:`EmptySketchError` for an empty selection, matching
        ``merge_all`` on an empty iterable.
        """
        if indices is None:
            sel: slice | np.ndarray = slice(0, self._size)
            n = self._size
        else:
            sel = np.atleast_1d(np.asarray(indices, dtype=np.intp))
            if sel.ndim != 1:
                raise SketchError("indices must be one-dimensional")
            n = sel.size
            if n:
                if sel.min() < 0 or sel.max() >= self._size:
                    raise SketchError(
                        f"row index out of range [0, {self._size})")
                first = int(sel[0])
                # A contiguous ascending run (full scans, window ranges)
                # reduces over a zero-copy slice instead of a gather.
                if (int(sel[-1]) - first == n - 1
                        and np.all(np.diff(sel) == 1)):
                    sel = slice(first, first + n)
        if n == 0:
            raise EmptySketchError("batch_merge needs at least one row")
        out = MomentsSketch(self.k, self.track_log)
        out.power_sums = np.add.reduce(self._rows_of(self.power_sums, sel),
                                       axis=0)
        out.count = float(out.power_sums[0])
        out.min = float(np.min(self._rows_of(self.mins, sel)))
        out.max = float(np.max(self._rows_of(self.maxs, sel)))
        if self.track_log:
            valid = bool(np.all(self._rows_of(self.log_valid, sel)))
            out.log_valid = valid
            if valid:
                out.log_sums = np.add.reduce(
                    self._rows_of(self.log_sums, sel), axis=0)
        return out

    @staticmethod
    def _rows_of(buffer: np.ndarray, sel) -> np.ndarray:
        """Row selection: zero-copy for slices, np.take for index arrays.

        ``np.take(mode="clip")`` skips the per-element bounds re-check —
        callers have already validated the index range — and is measurably
        faster than fancy indexing on large gathers.
        """
        if isinstance(sel, slice):
            return buffer[sel]
        return np.take(buffer, sel, axis=0, mode="clip")

    def batch_merge_groups(self, rows, group_ids) -> dict[int, MomentsSketch]:
        """Group-wise :meth:`batch_merge`: one reduction per group id.

        ``rows[i]`` contributes to group ``group_ids[i]``.  Within each
        group the fold order is input order (stable sort), so every group
        result matches a sequential merge of its rows.  Returns a dict
        keyed by group id.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=np.intp))
        gids = np.atleast_1d(np.asarray(group_ids, dtype=np.intp))
        if rows.shape != gids.shape or rows.ndim != 1:
            raise SketchError("rows and group_ids must be aligned 1-d arrays")
        if rows.size == 0:
            return {}
        if rows.min() < 0 or rows.max() >= self._size:
            raise SketchError(f"row index out of range [0, {self._size})")
        order = np.argsort(gids, kind="stable")
        r = rows[order]
        g = gids[order]
        starts = np.flatnonzero(np.r_[True, g[1:] != g[:-1]])
        bounds = np.append(starts, r.size)
        # One batch_merge (= one left-fold reduction) per group keeps every
        # group result bit-for-bit equal to a sequential merge of its rows.
        return {int(g[start]): self.batch_merge(r[start:stop])
                for start, stop in zip(starts, bounds[1:])}

    def batch_merge_by(self, rows: Sequence[int],
                       keys: Sequence) -> dict:
        """Group rows by arbitrary hashable keys, batch-merge each group.

        The dict maps each distinct key, in first-seen order, to the
        merge of its rows (input order within a group).  This is the
        group-by building block the cube and Druid backends share.
        """
        key_ids: dict = {}
        gids = [key_ids.setdefault(key, len(key_ids)) for key in keys]
        merged = self.batch_merge_groups(rows, gids)
        ordered = list(key_ids)
        return {ordered[gid]: sketch for gid, sketch in merged.items()}

    # ------------------------------------------------------------------
    # Batched estimation feeds
    # ------------------------------------------------------------------

    def moment_columns(self, indices=None) -> ColumnarMoments:
        """Columnar view of rows for the batched estimation layer.

        With ``indices=None`` the block covers every live row zero-copy
        (the arrays are views into the store — read-only use only); a
        row subset gathers copies.  The result feeds the vectorized
        bound kernels (:func:`repro.core.bounds.markov_bound_batch`) and
        :meth:`repro.core.cascade.ThresholdCascade.evaluate_batch`
        without materializing per-row sketch objects.
        """
        if indices is None:
            sel: slice | np.ndarray = slice(0, self._size)
        else:
            sel = np.atleast_1d(np.asarray(indices, dtype=np.intp))
            if sel.size and (sel.min() < 0 or sel.max() >= self._size):
                raise SketchError(f"row index out of range [0, {self._size})")
        return ColumnarMoments(
            k=self.k, track_log=self.track_log, counts=self.counts[sel],
            mins=self.mins[sel], maxs=self.maxs[sel],
            power_sums=self.power_sums[sel], log_sums=self.log_sums[sel],
            log_valid=self.log_valid[sel])

    def group_bases(self, rows, keys, config=None) -> dict:
        """Solver-ready bases for a group-by, one batched build.

        Merges ``rows`` by ``keys`` (:meth:`batch_merge_by`) and runs
        batched moment selection + basis construction for every group
        aggregate, returning ``{key: (sketch, MaxEntBasis)}`` in
        first-seen key order — the hand-off
        :func:`repro.core.batch_solver.solve_batch` consumes.  Groups
        with degenerate support (point masses) map to ``(sketch,
        None)``; they need no solve.
        """
        from ..core.selector import select_moments_batch
        from ..core.solver import build_bases_batch

        merged = self.batch_merge_by(rows, keys)
        solvable = {key: sketch for key, sketch in merged.items()
                    if sketch.max > sketch.min}
        out: dict = {key: (sketch, None) for key, sketch in merged.items()}
        if solvable:
            sketches = list(solvable.values())
            selections = select_moments_batch(sketches, config)
            bases = build_bases_batch(sketches,
                                      [sel.k1 for sel in selections],
                                      [sel.k2 for sel in selections], config)
            for key, sketch, basis in zip(solvable, sketches, bases):
                out[key] = (sketch, basis)
        return out

    # ------------------------------------------------------------------
    # Bulk serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """One header plus one contiguous little-endian float64 payload.

        Layout after the 16-byte header: ``counts[N]``, ``mins[N]``,
        ``maxs[N]``, ``power_sums[:, 1:]`` row-major, then (log stores
        only) ``log_sums[:, 1:]`` row-major and ``log_valid`` as N raw
        bytes.  Index 0 of each sums row duplicates the count, so it is
        reconstructed rather than shipped — the same convention as the
        per-sketch ``MSK1`` format.
        """
        n = self._size
        flags = 1 if self.track_log else 0
        parts = [self.counts[:n], self.mins[:n], self.maxs[:n],
                 self.power_sums[:n, 1:].ravel()]
        if self.track_log:
            parts.append(self.log_sums[:n, 1:].ravel())
        payload = np.concatenate(parts) if n else np.zeros(0)
        blob = _HEADER.pack(_MAGIC, self.k, flags, n)
        blob += payload.astype("<f8", copy=False).tobytes()
        if self.track_log:
            blob += self.log_valid[:n].astype(np.uint8).tobytes()
        return blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedSketchStore":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < _HEADER.size:
            raise SketchError("buffer too short for a packed sketch store")
        magic, k, flags, n = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise SketchError(f"bad magic {magic!r}")
        if not 1 <= k <= MAX_ORDER:
            raise SketchError(f"corrupt header: order {k} out of range")
        track_log = bool(flags & 1)
        families = 2 if track_log else 1
        floats = n * (3 + families * k)
        tail = n if track_log else 0
        expected = _HEADER.size + 8 * floats + tail
        if len(blob) != expected:
            raise SketchError(
                f"payload holds {len(blob) - _HEADER.size} bytes, "
                f"expected {expected - _HEADER.size}")
        store = cls(k=k, track_log=track_log, capacity=n)
        store._size = n
        values = np.frombuffer(blob, dtype="<f8", count=floats,
                               offset=_HEADER.size)
        store.counts[:] = values[:n]
        store.mins[:] = values[n:2 * n]
        store.maxs[:] = values[2 * n:3 * n]
        store.power_sums[:, 1:] = values[3 * n:3 * n + n * k].reshape(n, k)
        store.power_sums[:, 0] = store.counts
        if track_log:
            store.log_sums[:, 1:] = values[3 * n + n * k:].reshape(n, k)
            store.log_sums[:, 0] = store.counts
            bits = np.frombuffer(blob, dtype=np.uint8, count=n,
                                 offset=_HEADER.size + 8 * floats)
            store.log_valid[:] = bits.astype(bool)
        return store

    def size_bytes(self) -> int:
        """Serialized footprint of the whole store in bytes."""
        families = 2 if self.track_log else 1
        return (_HEADER.size + 8 * self._size * (3 + families * self.k)
                + (self._size if self.track_log else 0))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grow(self, needed: int) -> None:
        cap = max(2 * self.capacity, needed, _MIN_CAPACITY)
        extra = cap - self.capacity
        self.counts = np.concatenate([self.counts, np.zeros(extra)])
        self.mins = np.concatenate([self.mins, np.full(extra, np.inf)])
        self.maxs = np.concatenate([self.maxs, np.full(extra, -np.inf)])
        self.power_sums = np.concatenate(
            [self.power_sums, np.zeros((extra, self.k + 1))])
        self.log_sums = np.concatenate(
            [self.log_sums, np.zeros((extra, self.k + 1))])
        self.log_valid = np.concatenate(
            [self.log_valid, np.full(extra, self.track_log, dtype=bool)])

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._size:
            raise SketchError(
                f"row {row} out of range [0, {self._size})")

    def _check_sketch(self, sketch: MomentsSketch) -> None:
        if not isinstance(sketch, MomentsSketch):
            raise IncompatibleSketchError(
                f"expected MomentsSketch, got {type(sketch).__name__}")
        if sketch.k != self.k:
            raise IncompatibleSketchError(
                f"order mismatch: store k={self.k} vs sketch k={sketch.k}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PackedSketchStore(k={self.k}, rows={self._size}, "
                f"log={'on' if self.track_log else 'off'})")


def pack(sketches: Sequence[MomentsSketch]) -> PackedSketchStore:
    """Convenience alias for :meth:`PackedSketchStore.from_sketches`."""
    return PackedSketchStore.from_sketches(sketches)
