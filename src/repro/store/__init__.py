"""Columnar packed sketch storage (structure-of-arrays, vectorized merge).

See :mod:`repro.store.packed` for the layout and the Eq. 2 rationale.
"""

from .packed import PackedSketchStore, pack

__all__ = ["PackedSketchStore", "pack"]
