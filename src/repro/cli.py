"""Command-line interface: build, merge, and query moments sketches.

Mirrors how the sketch would be operated from shell pipelines or cron
jobs around an analytics engine:

    python -m repro sketch build data.csv -o shard.msk --k 10
    python -m repro sketch merge shard1.msk shard2.msk -o total.msk
    python -m repro sketch query total.msk --q 0.5 0.9 0.99
    python -m repro sketch query total.msk --spec '{"kind": "quantile", "quantiles": [0.5, 0.99], "report_bounds": true}'
    python -m repro sketch threshold total.msk --t 100 --q 0.99
    python -m repro sketch bounds total.msk --t 100
    python -m repro sketch info total.msk
    python -m repro ingest rows.csv --spec '{"backend": "cube", "dimensions": ["service"]}' --query '{"kind": "quantile", "quantiles": [0.99]}'
    python -m repro harness run --spec examples/harness_smoke.json
    python -m repro datasets list
    python -m repro datasets stats milan --rows 100000

The ``query``/``threshold``/``bounds`` commands execute through the
unified query API (:mod:`repro.api`): pass ``--spec`` with a
:class:`~repro.api.QuerySpec` JSON document to run any spec against the
sketch and emit the full :class:`~repro.api.QueryResponse` JSON;
without ``--spec`` the flag-based invocations build the equivalent spec
and emit the historical compact output.  ``--phi`` is a deprecated
alias of ``--q``.

Input files are one float per line (CSV with a single column); sketch
files use the library's binary serialization.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import warnings
from pathlib import Path

import numpy as np

from .api import QueryService, QuerySpec, SummariesBackend, qkey
from .core import (ConvergenceError, IngestError, MomentsSketch,
                   QuantileEstimator, QueryError, merge_all)
from .datasets import available, load, spec, summary_statistics
from .summaries.moments_summary import MomentsSummary


def _read_values(path: str) -> np.ndarray:
    """Load one-float-per-line data (use '-' for stdin)."""
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        values = np.loadtxt(stream, dtype=float, ndmin=1)
    finally:
        if stream is not sys.stdin:
            stream.close()
    return values


def _load_sketch(path: str) -> MomentsSketch:
    return MomentsSketch.from_bytes(Path(path).read_bytes())


def _sketch_service(sketch: MomentsSketch,
                    batched: bool = True) -> QueryService:
    """A single-sketch query service (the CLI's one-cell backend)."""
    summary = MomentsSummary(k=sketch.k, track_log=sketch.track_log)
    summary.sketch = sketch
    return QueryService(sketch=SummariesBackend([summary]), batched=batched)


def _quantile_args(args: argparse.Namespace, default: list[float]) -> list[float]:
    """Resolve --q / deprecated --phi into quantile fractions."""
    q = getattr(args, "q", None)
    phi = getattr(args, "phi", None)
    if phi is not None:
        if q:
            raise QueryError("pass either --q or the deprecated --phi, not both")
        warnings.warn("the '--phi' flag is deprecated; use '--q'",
                      DeprecationWarning, stacklevel=2)
        return [float(v) for v in (phi if isinstance(phi, list) else [phi])]
    if q:
        return [float(v) for v in q]
    return list(default)


# ----------------------------------------------------------------------
# Subcommand handlers (each returns a JSON-serializable result)
# ----------------------------------------------------------------------

def cmd_build(args: argparse.Namespace) -> dict:
    values = _read_values(args.input)
    sketch = MomentsSketch.from_data(values, k=args.k,
                                     track_log=not args.no_log)
    Path(args.output).write_bytes(sketch.to_bytes())
    return {"output": args.output, "count": sketch.count,
            "min": sketch.min, "max": sketch.max,
            "size_bytes": sketch.size_bytes()}


def cmd_merge(args: argparse.Namespace) -> dict:
    sketches = [_load_sketch(path) for path in args.inputs]
    merged = merge_all(sketches)
    Path(args.output).write_bytes(merged.to_bytes())
    return {"output": args.output, "merged": len(sketches),
            "count": merged.count}


def cmd_query(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    service = _sketch_service(sketch, batched=args.batched)
    if args.spec:
        return service.execute(QuerySpec.from_json(args.spec)).to_dict()
    qs = _quantile_args(args, default=[0.5, 0.99])
    response = service.execute(QuerySpec(kind="quantile", quantiles=tuple(qs)))
    return {"count": sketch.count,
            "quantiles": {qkey(q): float(response.estimates[qkey(q)])
                          for q in qs}}


def cmd_threshold(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    service = _sketch_service(sketch, batched=args.batched)
    if args.spec:
        return service.execute(QuerySpec.from_json(args.spec)).to_dict()
    if args.t is None:
        raise QueryError("--t is required without --spec")
    q = _quantile_args(args, default=[0.99])[0]
    response = service.execute(QuerySpec(kind="threshold_count",
                                         thresholds=(args.t,),
                                         quantiles=(q,)))
    outcome = response.groups["*"][qkey(args.t)]
    return {"q": q, "threshold": args.t,
            "exceeds": outcome["exceeds"], "decided_by": outcome["stage"],
            "solve_route": response.timings.solve_route,
            "solve_seconds": response.timings.solve_seconds}


def cmd_info(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    info = {"k": sketch.k, "count": sketch.count, "min": sketch.min,
            "max": sketch.max, "size_bytes": sketch.size_bytes(),
            "log_moments": sketch.has_log_moments}
    if not sketch.is_empty and sketch.max > sketch.min:
        try:
            estimator = QuantileEstimator.fit(sketch, allow_backoff=True)
            if estimator.selection is not None:
                info["selected_k1"] = estimator.selection.k1
                info["selected_k2"] = estimator.selection.k2
        except ConvergenceError:
            info["estimation"] = "non-convergent (near-discrete data)"
    return info


def cmd_bounds(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    service = _sketch_service(sketch)
    if args.spec:
        return service.execute(QuerySpec.from_json(args.spec)).to_dict()
    if args.t is None:
        raise QueryError("--t is required without --spec")
    response = service.execute(QuerySpec(kind="cdf", thresholds=(args.t,),
                                         report_bounds=True))
    bounds = response.bounds[qkey(args.t)]
    return {"t": args.t, "count": sketch.count,
            "markov": bounds["markov"], "rtt": bounds["rtt"]}


def cmd_datasets_list(args: argparse.Namespace) -> dict:
    return {"datasets": sorted(available())}


def cmd_datasets_stats(args: argparse.Namespace) -> dict:
    data = np.asarray(load(args.name, n=args.rows, seed=args.seed))
    stats = summary_statistics(data)
    published = spec(args.name)
    return {"dataset": args.name, "generated": stats,
            "paper": {"size": published.paper_size, "min": published.paper_min,
                      "max": published.paper_max, "mean": published.paper_mean,
                      "stddev": published.paper_stddev,
                      "skew": published.paper_skew}}


def cmd_datasets_generate(args: argparse.Namespace) -> dict:
    data = np.asarray(load(args.name, n=args.rows, seed=args.seed))
    np.savetxt(args.output, data)
    return {"output": args.output, "rows": int(data.size)}


def _read_ingest_columns(path: str, fmt: str, dimensions: tuple[str, ...]
                         ) -> tuple[list, list[list], list | None]:
    """Parse CSV (with header) or JSONL rows into ingest columns.

    Every row needs the spec's dimension columns plus ``value``;
    ``timestamp`` is optional (required by time-bucketed backends).
    """
    if fmt == "auto":
        fmt = ("jsonl" if path.endswith((".jsonl", ".ndjson")) else "csv")
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        if fmt == "jsonl":
            rows = [json.loads(line) for line in stream if line.strip()]
        else:
            rows = list(csv.DictReader(stream))
    finally:
        if stream is not sys.stdin:
            stream.close()
    if not rows:
        raise IngestError(f"no rows in {path}")
    missing = [c for c in (*dimensions, "value") if c not in rows[0]]
    if missing:
        raise IngestError(f"input is missing columns {missing}; "
                          f"have {sorted(rows[0])}")
    with_time = "timestamp" in rows[0]
    try:
        values = [float(row["value"]) for row in rows]
        dims = [[row[d] for row in rows] for d in dimensions]
        timestamps = ([float(row["timestamp"]) for row in rows]
                      if with_time else None)
    except KeyError as exc:
        raise IngestError(f"a row is missing column {exc}") from None
    except (TypeError, ValueError) as exc:
        raise IngestError(f"bad numeric value in input: {exc}") from None
    return values, dims, timestamps


def cmd_ingest(args: argparse.Namespace) -> dict:
    """Unified ingestion: rows from a file into a spec-built backend.

    Builds the target engine named by the :class:`~repro.ingest.IngestSpec`,
    streams the rows through an :class:`~repro.ingest.IngestSession`
    (micro-batched at the spec's flush triggers), and optionally runs a
    :class:`~repro.api.QuerySpec` against the freshly written backend —
    the whole write+read loop from one shell command.
    """
    from .ingest import IngestSession, IngestSpec, build_target

    spec = IngestSpec.from_json(args.spec)
    if spec.backend is None:
        raise IngestError("--spec needs a 'backend' field "
                          "(cube/druid/packed/window/cluster)")
    values, dims, timestamps = _read_ingest_columns(
        args.input, args.format, spec.dimensions)
    target = build_target(spec)
    chunk = spec.flush_rows or len(values)
    with IngestSession(target, spec) as session:
        for start in range(0, len(values), chunk):
            stop = start + chunk
            session.append_columns(
                values[start:stop],
                dims=[column[start:stop] for column in dims],
                timestamps=(timestamps[start:stop]
                            if timestamps is not None else None))
    result = {"backend": session.backend.name, "rows": session.total_rows,
              "cells": session.total_cells,
              "flushes": len(session.reports),
              "reports": [report.to_dict() for report in session.reports]}
    if args.query:
        response = session.query_service().execute(
            QuerySpec.from_json(args.query))
        result["query"] = response.to_dict()
    return result


def cmd_harness_run(args: argparse.Namespace) -> dict:
    """Run one workload-harness experiment and emit its trajectory record.

    ``--spec`` takes an :class:`~repro.harness.ExperimentSpec` JSON
    document or a path to one; the record is appended to the
    ``--out`` trajectory file (``BENCH_harness.json``) unless
    ``--no-out`` is given.  With ``--check`` (the default), any exact-
    oracle ε-contract violation fails the command after the record is
    written — the CI smoke gate.

    ``--telemetry`` enables the in-process telemetry plane for the run
    (the record gains a ``telemetry`` block); ``--telemetry-out DIR``
    additionally dumps ``metrics.json``, ``metrics.prom``,
    ``spans.jsonl``, and ``slow_queries.json`` into ``DIR``.
    """
    from .harness import DEFAULT_TRAJECTORY, ExperimentSpec, run_experiment

    text = args.spec
    if not text.lstrip().startswith("{"):
        text = Path(text).read_text(encoding="utf-8")
    spec = ExperimentSpec.from_json(text)
    overrides = {}
    if args.duration is not None:
        overrides["duration_seconds"] = args.duration
    if args.qps is not None:
        overrides["target_qps"] = args.qps
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = ExperimentSpec.from_dict({**spec.to_dict(), **overrides})
    out = None if args.no_out else (args.out or DEFAULT_TRAJECTORY)
    telemetry_on = args.telemetry or args.telemetry_out is not None
    if telemetry_on:
        from .telemetry import TELEMETRY

        TELEMETRY.enable(
            slow_query_threshold_seconds=args.slow_query_threshold,
            reset=True)
    try:
        record = run_experiment(spec, trajectory_path=out,
                                fail_on_violation=args.check)
    finally:
        if telemetry_on and args.telemetry_out is not None:
            record_telemetry = _write_telemetry_artifacts(args.telemetry_out)
        if telemetry_on:
            TELEMETRY.disable()
    if out:
        record = dict(record, trajectory=str(out))
    if telemetry_on and args.telemetry_out is not None:
        record = dict(record, telemetry_out=record_telemetry)
    return record


def _write_telemetry_artifacts(directory) -> dict:  # repro: noqa[TEL001]
    """Dump the live telemetry plane into ``directory``; returns paths.

    Callers invoke this only when telemetry is enabled (an explicit
    ``--telemetry-out`` opt-in), hence the function-level TEL001 escape.
    """
    from .telemetry import TELEMETRY, render_json, render_prometheus

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    metrics_json = directory / "metrics.json"
    metrics_json.write_text(render_json(TELEMETRY.registry) + "\n",
                            encoding="utf-8")
    metrics_prom = directory / "metrics.prom"
    metrics_prom.write_text(render_prometheus(TELEMETRY.registry),
                            encoding="utf-8")
    spans_path = directory / "spans.jsonl"
    spans_exported = TELEMETRY.tracer.export_jsonl(str(spans_path))
    slow_entries = TELEMETRY.slow_queries.entries()
    slow_path = directory / "slow_queries.json"
    slow_path.write_text(
        json.dumps(slow_entries, indent=2, default=float) + "\n",
        encoding="utf-8")
    return {"directory": str(directory),
            "files": [metrics_json.name, metrics_prom.name,
                      spans_path.name, slow_path.name],
            "spans_exported": spans_exported,
            "slow_queries": len(slow_entries)}


def cmd_telemetry_dump(args: argparse.Namespace) -> dict:
    """Re-render a metrics dump (or harness record) as JSON/Prometheus."""
    from .telemetry import load_metrics, render_prometheus

    payload = load_metrics(args.metrics)
    series = sum(len(payload.get(kind, []))
                 for kind in ("counters", "gauges", "histograms"))
    if args.format == "prometheus":
        # Prometheus exposition is line-oriented text, not a JSON doc —
        # print it directly and hand main() a tiny summary envelope.
        print(render_prometheus(payload), end="")
        return {"format": "prometheus", "series": series}
    return {"format": "json", "series": series, "metrics": payload}


def cmd_telemetry_top(args: argparse.Namespace) -> dict:
    """Rank histogram series from a metrics dump by a latency quantile."""
    from .telemetry import LogHistogram, MetricsRegistry, load_metrics

    registry = MetricsRegistry.from_dict(load_metrics(args.metrics))
    rows = []
    for name, labels, metric in registry.items():
        if not isinstance(metric, LogHistogram) or metric.count == 0:
            continue
        if args.name and name != args.name:
            continue
        p50, p99 = metric.quantiles([0.5, 0.99])
        rows.append({"name": name, "labels": dict(labels),
                     "count": metric.count,
                     "p50": p50, "p99": p99,
                     "rank_by": metric.quantile(args.quantile)})
    rows.sort(key=lambda row: row["rank_by"], reverse=True)
    for row in rows:
        row[f"p{args.quantile * 100:g}"] = row.pop("rank_by")
    return {"quantile": args.quantile, "series": rows[:args.limit]}


def cmd_telemetry_trace(args: argparse.Namespace) -> dict:
    """Render one trace tree from a ``spans.jsonl`` export."""
    from .telemetry import build_trace_tree, render_trace_tree

    spans = []
    with open(args.spans, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    if not spans:
        return {"error": "no spans in file", "spans": 0}
    trace_id = args.trace_id
    if trace_id is None:
        # Default to the trace owning the longest root span — the
        # most interesting one in a slow-query investigation.
        roots = [s for s in spans if not s.get("parent_id")]
        pick = max(roots or spans,
                   key=lambda s: s.get("duration_seconds") or 0.0)
        trace_id = pick["trace_id"]
    selected = [s for s in spans if s["trace_id"] == trace_id]
    if not selected:
        return {"error": f"trace {trace_id!r} not found",
                "traces": sorted({s['trace_id'] for s in spans})}
    roots = build_trace_tree(selected)
    print("\n".join(render_trace_tree(selected)))
    return {"trace_id": trace_id, "spans": len(selected),
            "roots": len(roots)}


def _load_json_document(path: str) -> dict:
    """Read one JSON document (a dict) from ``path``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not hold a JSON object")
    return payload


def _latest_run(payload: dict, key: str | None = None) -> dict | None:
    """Latest run of a harness trajectory (optionally carrying ``key``)."""
    runs = payload.get("runs")
    if not isinstance(runs, list):
        return None
    for run in reversed(runs):
        if isinstance(run, dict) and (key is None or key in run):
            return run
    return None


def cmd_optimizer_advise(args: argparse.Namespace) -> dict:
    """Offline roll-up / caching advice from a harness or telemetry dump.

    Accepts a ``BENCH_harness.json`` trajectory (latest run wins), a
    single harness record, or a telemetry ``metrics.json`` dump, and
    ranks where a materialized roll-up or the optimizer cache would
    reclaim the most merge time.
    """
    from .optimizer import rank_harness_record, rank_metrics

    payload = _load_json_document(args.source)
    if "runs" in payload:
        record = _latest_run(payload, "latency")
        if record is None:
            return {"source": args.source, "mode": "harness",
                    "error": "trajectory has no runs with a latency section"}
        advice = rank_harness_record(record, top=args.top)
        return {"source": args.source, "mode": "harness",
                "run_at": record.get("run_at"), "advice": advice}
    if "latency" in payload:
        return {"source": args.source, "mode": "harness",
                "run_at": payload.get("run_at"),
                "advice": rank_harness_record(payload, top=args.top)}
    if "counters" in payload or "metrics" in payload:
        return {"source": args.source, "mode": "metrics",
                "advice": rank_metrics(payload, top=args.top)}
    raise ValueError(
        f"{args.source} is neither a harness trajectory/record "
        "(latency) nor a telemetry metrics dump (counters)")


def cmd_optimizer_stats(args: argparse.Namespace) -> dict:
    """Show the optimizer block of a harness record or stats snapshot."""
    payload = _load_json_document(args.source)
    if "runs" in payload:
        record = _latest_run(payload, "optimizer")
        if record is None:
            return {"source": args.source,
                    "error": "trajectory has no runs with an optimizer "
                             "section (set spec.optimizer = true)"}
        return {"source": args.source, "run_at": record.get("run_at"),
                "optimizer": record["optimizer"]}
    if "optimizer" in payload:
        return {"source": args.source, "run_at": payload.get("run_at"),
                "optimizer": payload["optimizer"]}
    if "cache" in payload and "profile" in payload:
        return {"source": args.source, "optimizer": payload}
    raise ValueError(
        f"{args.source} carries no optimizer stats (expected a harness "
        "record with an 'optimizer' section or an Optimizer.stats() dump)")


def cmd_storage_inspect(args: argparse.Namespace) -> dict:
    """Dump one segment file's footer, keys, and per-tier geometry."""
    from .storage import open_segment

    reader = open_segment(args.segment, verify=not args.no_verify)
    try:
        info = {
            "path": args.segment,
            "kind": "cold" if reader.kind else "warm",
            "k": reader.k,
            "rows": reader.rows,
            "track_log": reader.track_log,
            "keeps_log": reader.keeps_log,
            "size_bytes": reader.size_bytes,
            "min_key": reader.min_key,
            "max_key": reader.max_key,
            "total_count": int(reader.counts.sum()),
            "codec": reader.codec.to_dict() if reader.codec else None,
        }
        if args.keys:
            info["keys"] = [list(key) for key in reader.keys]
        return info
    finally:
        reader.close()


def cmd_storage_compact(args: argparse.Namespace) -> dict:
    """Open a tiered store directory and compact it until stable."""
    from .storage import ColdSpec, CompactionPolicy, Compactor, TieredStore

    policy = CompactionPolicy(size_ratio=args.size_ratio,
                              min_run=args.min_run, max_run=args.max_run)
    with TieredStore(args.directory) as store:
        before = store.stats()
        compactor = Compactor(store, policy=policy)
        rounds = compactor.run_until_stable(max_rounds=args.max_rounds)
        if args.demote_cold:
            store.demote(count=len(before["segments"]), spec=ColdSpec())
        after = store.stats()
    return {"directory": args.directory, "rounds": rounds,
            "segments_before": len(before["segments"]),
            "segments_after": len(after["segments"]),
            "rows_before": sum(s["rows"] for s in before["segments"]),
            "rows_after": sum(s["rows"] for s in after["segments"]),
            "disk_bytes_before": before["warm_bytes"] + before["cold_bytes"],
            "disk_bytes_after": after["warm_bytes"] + after["cold_bytes"],
            "segments": after["segments"]}


def cmd_cluster_demo(args: argparse.Namespace) -> dict:
    """Build a simulated cluster, query it, kill a node, query again.

    The single-process Druid reference ingests the same rows with
    shard-aligned time chunks, so its per-segment fold matches the
    broker's per-shard fold and the comparison is bit-exact.
    """
    from .api import as_backend
    from .cluster import ClusterCoordinator, timings_breakdown
    from .druid import DruidEngine, MomentsSketchAggregator

    qs = _quantile_args(args, default=[0.5, 0.99])
    rng = np.random.default_rng(args.seed)
    values = rng.lognormal(1.0, 1.0, args.rows)
    cells = (np.arange(args.rows) % args.cells).astype(int)

    aggregators = {"value": MomentsSketchAggregator(k=10)}
    cluster = ClusterCoordinator(
        dimensions=("cell",), aggregators=aggregators,
        num_shards=args.shards, replication=args.replication,
        granularity=1.0, nodes=[f"node-{i}" for i in range(args.nodes)])
    timestamps = cluster.shard_ids([cells]).astype(float)
    cluster.ingest(timestamps, [cells], values)

    reference = DruidEngine(dimensions=("cell",), aggregators=aggregators,
                            granularity=1.0, processing_threads=1)
    reference.ingest(timestamps, [cells], values)

    backend = as_backend(cluster, threads=args.threads)
    service = QueryService(cluster=backend, druid=reference)
    spec = QuerySpec(kind="quantile", quantiles=tuple(qs),
                     report_moments=True)
    before = service.execute(spec, backend="cluster")
    single = service.execute(spec, backend="druid")

    victim = args.kill or f"node-{args.nodes - 1}"
    cluster.fail_node(victim, repair=not args.no_repair)
    after = service.execute(spec, backend="cluster")

    status = cluster.status()
    return {
        "topology": {"nodes": args.nodes, "shards": args.shards,
                     "replication": args.replication,
                     "cells": cluster.num_cells,
                     "live_nodes": list(cluster.live_nodes)},
        "quantiles": {qkey(q): float(before.estimates[qkey(q)]) for q in qs},
        "matches_single_process": before.estimates == single.estimates
        and before.moments == single.moments,
        "timings": timings_breakdown(backend,
                                     solve_seconds=after.timings.solve_seconds),
        "failover": {
            "killed": victim,
            "repaired": not args.no_repair,
            "answers_unchanged": after.estimates == before.estimates
            and after.moments == before.moments,
            "rebalance": (
                {"copied_shards": cluster.last_rebalance.copied_shards,
                 "bytes_copied": cluster.last_rebalance.bytes_copied}
                if not args.no_repair and cluster.last_rebalance else None),
        },
        "status": status.to_dict(),
    }


def cmd_cluster_placement(args: argparse.Namespace) -> dict:
    """Show consistent-hash shard placement and the cost of one node add."""
    from .cluster import HashRing

    node_ids = [f"node-{i}" for i in range(args.nodes)]
    ring = HashRing(nodes=node_ids, replication=args.replication,
                    vnodes=args.vnodes)
    before = ring.placement(args.shards)
    primaries: dict[str, int] = {node_id: 0 for node_id in node_ids}
    for owners in before.values():
        primaries[owners[0]] += 1
    ring.add_node(f"node-{args.nodes}")
    moved = HashRing.moved_shards(before, ring.placement(args.shards))
    return {"nodes": args.nodes, "shards": args.shards,
            "replication": args.replication, "vnodes": args.vnodes,
            "primary_shards_per_node": primaries,
            "moved_on_one_node_add": len(moved),
            "moved_fraction": len(moved) / args.shards,
            "ideal_fraction": args.replication / (args.nodes + 1)}


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def cmd_analysis_lint(args) -> dict:
    """Run the repo-invariant static analyzers; exits 1 on new findings.

    Unlike the other handlers this one prints its own report (text or
    JSON) and raises ``SystemExit`` directly: lint is a pass/fail
    gate, and its exit code must reflect the findings, not whether the
    handler itself ran cleanly.
    """
    from .analysis import (all_rules, analyze_paths, apply_baseline,
                           load_baseline, save_baseline)

    if args.rules:
        catalogue = {spec.rule: spec.summary for spec in all_rules()}
        print(json.dumps({"rules": catalogue}, indent=2))
        raise SystemExit(0)

    findings, files = analyze_paths(args.paths or ["src"])
    if args.update_baseline:
        if not args.baseline:
            print(json.dumps(
                {"error": "--update-baseline requires --baseline PATH"}))
            raise SystemExit(2)
        save_baseline(args.baseline, findings)
        print(json.dumps({"baseline": str(args.baseline),
                          "accepted": len(findings)}))
        raise SystemExit(0)
    suppressed = 0
    if args.baseline:
        findings, suppressed = apply_baseline(findings,
                                              load_baseline(args.baseline))

    document = {
        "files_checked": files,
        "findings": [finding.to_dict() for finding in findings],
        "suppressed_by_baseline": suppressed,
    }
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        for finding in findings:
            print(finding.format())
        summary = (f"{len(findings)} finding(s) in {files} file(s)"
                   + (f", {suppressed} baselined" if suppressed else ""))
        print(summary)
    raise SystemExit(1 if findings else 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Moments sketch toolkit (VLDB 2018 reproduction)")
    subcommands = parser.add_subparsers(dest="command", required=True)

    sketch = subcommands.add_parser("sketch", help="sketch operations")
    sketch_sub = sketch.add_subparsers(dest="action", required=True)

    build = sketch_sub.add_parser("build", help="build a sketch from values")
    build.add_argument("input", help="value file, one float per line ('-' = stdin)")
    build.add_argument("-o", "--output", required=True)
    build.add_argument("--k", type=int, default=10, help="moment order")
    build.add_argument("--no-log", action="store_true",
                       help="skip log moments (halves the footprint)")
    build.set_defaults(handler=cmd_build)

    merge = sketch_sub.add_parser("merge", help="merge sketch files")
    merge.add_argument("inputs", nargs="+")
    merge.add_argument("-o", "--output", required=True)
    merge.set_defaults(handler=cmd_merge)

    query = sketch_sub.add_parser("query", help="estimate quantiles")
    query.add_argument("sketch")
    query.add_argument("--q", type=float, nargs="+", default=None,
                       help="target quantile fractions (default 0.5 0.99)")
    query.add_argument("--phi", type=float, nargs="+", default=None,
                       help="deprecated alias of --q")
    query.add_argument("--spec", default=None,
                       help="QuerySpec JSON; emits the full QueryResponse")
    query.add_argument("--batched", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="route group/threshold estimation through the "
                            "batched max-entropy layer (--no-batched A/Bs "
                            "the scalar per-group path)")
    query.set_defaults(handler=cmd_query)

    threshold = sketch_sub.add_parser("threshold",
                                      help="cascade threshold predicate")
    threshold.add_argument("sketch")
    threshold.add_argument("--t", type=float, default=None,
                           help="threshold (required without --spec)")
    threshold.add_argument("--q", type=float, nargs="+", default=None,
                           help="quantile fraction (default 0.99)")
    threshold.add_argument("--phi", type=float, default=None,
                           help="deprecated alias of --q")
    threshold.add_argument("--spec", default=None,
                           help="QuerySpec JSON; emits the full QueryResponse")
    threshold.add_argument("--batched", action=argparse.BooleanOptionalAction,
                           default=True,
                           help="route the cascade through the batched "
                                "estimation layer (--no-batched A/Bs the "
                                "scalar path)")
    threshold.set_defaults(handler=cmd_threshold)

    info = sketch_sub.add_parser("info", help="inspect a sketch file")
    info.add_argument("sketch")
    info.set_defaults(handler=cmd_info)

    bounds = sketch_sub.add_parser("bounds", help="rank bounds at a point")
    bounds.add_argument("sketch")
    bounds.add_argument("--t", type=float, default=None,
                        help="threshold (required without --spec)")
    bounds.add_argument("--spec", default=None,
                        help="QuerySpec JSON; emits the full QueryResponse")
    bounds.set_defaults(handler=cmd_bounds)

    ingest = subcommands.add_parser(
        "ingest", help="unified ingestion: CSV/JSONL rows -> any write backend")
    ingest.add_argument("input",
                        help="row file ('-' = stdin); CSV needs a header "
                             "with the spec's dimensions plus 'value' "
                             "(and 'timestamp' for druid/cluster)")
    ingest.add_argument("--spec", required=True,
                        help="IngestSpec JSON; must name a 'backend'")
    ingest.add_argument("--format", choices=("auto", "csv", "jsonl"),
                        default="auto",
                        help="input format (auto: by file extension)")
    ingest.add_argument("--query", default=None,
                        help="QuerySpec JSON to run against the freshly "
                             "ingested backend")
    ingest.set_defaults(handler=cmd_ingest)

    cluster = subcommands.add_parser(
        "cluster", help="simulated scatter-gather cluster (repro.cluster)")
    cluster_sub = cluster.add_subparsers(dest="action", required=True)

    demo = cluster_sub.add_parser(
        "demo", help="ingest, query, kill a node, verify identical answers")
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--shards", type=int, default=32)
    demo.add_argument("--replication", type=int, default=2)
    demo.add_argument("--rows", type=int, default=50_000)
    demo.add_argument("--cells", type=int, default=200,
                      help="distinct dimension values (cluster cells)")
    demo.add_argument("--threads", type=int, default=4,
                      help="broker fan-out threads")
    demo.add_argument("--q", type=float, nargs="+", default=None,
                      help="target quantile fractions (default 0.5 0.99)")
    demo.add_argument("--kill", default=None,
                      help="node id to fail (default: the last node)")
    demo.add_argument("--no-repair", action="store_true",
                      help="serve degraded instead of re-replicating")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(handler=cmd_cluster_demo)

    placement = cluster_sub.add_parser(
        "placement", help="inspect consistent-hash shard placement")
    placement.add_argument("--nodes", type=int, default=4)
    placement.add_argument("--shards", type=int, default=64)
    placement.add_argument("--replication", type=int, default=2)
    placement.add_argument("--vnodes", type=int, default=64)
    placement.set_defaults(handler=cmd_cluster_placement)

    storage = subcommands.add_parser(
        "storage", help="persistent tiered sketch storage (repro.storage)")
    storage_sub = storage.add_subparsers(dest="action", required=True)

    inspect = storage_sub.add_parser(
        "inspect", help="dump a segment file's footer and geometry")
    inspect.add_argument("segment", help="path to a .rsg segment file")
    inspect.add_argument("--keys", action="store_true",
                         help="include the full sorted key list")
    inspect.add_argument("--no-verify", action="store_true",
                         help="skip the body checksum (faster on huge files)")
    inspect.set_defaults(handler=cmd_storage_inspect)

    compact = storage_sub.add_parser(
        "compact", help="run leveled compaction on a tiered store directory")
    compact.add_argument("directory", help="TieredStore home directory")
    compact.add_argument("--size-ratio", type=float, default=4.0,
                         help="rows-per-level fanout of the leveled policy")
    compact.add_argument("--min-run", type=int, default=2,
                         help="smallest same-level run worth merging")
    compact.add_argument("--max-run", type=int, default=8,
                         help="largest run merged in one pass")
    compact.add_argument("--max-rounds", type=int, default=64,
                         help="safety cap on compaction rounds")
    compact.add_argument("--demote-cold", action="store_true",
                         help="re-encode surviving warm segments with the "
                              "low-precision cold codec afterwards")
    compact.set_defaults(handler=cmd_storage_compact)

    harness = subcommands.add_parser(
        "harness", help="production workload harness (repro.harness)")
    harness_sub = harness.add_subparsers(dest="action", required=True)

    harness_run = harness_sub.add_parser(
        "run", help="replay one ExperimentSpec; emit a BENCH_harness.json "
                    "trajectory record")
    harness_run.add_argument("--spec", required=True,
                             help="ExperimentSpec JSON document, or a path "
                                  "to a JSON file")
    harness_run.add_argument("--out", default=None,
                             help="trajectory file to append to "
                                  "(default BENCH_harness.json)")
    harness_run.add_argument("--no-out", action="store_true",
                             help="do not write a trajectory file")
    harness_run.add_argument("--check", action=argparse.BooleanOptionalAction,
                             default=True,
                             help="fail on exact-oracle ε-contract "
                                  "violations (--no-check records only)")
    harness_run.add_argument("--duration", type=float, default=None,
                             help="override spec duration_seconds")
    harness_run.add_argument("--qps", type=float, default=None,
                             help="override spec target_qps")
    harness_run.add_argument("--seed", type=int, default=None,
                             help="override spec seed")
    harness_run.add_argument("--telemetry", action="store_true",
                             help="enable the in-process telemetry plane; "
                                  "the record gains a 'telemetry' block")
    harness_run.add_argument("--slow-query-threshold", type=float,
                             default=None, metavar="SECONDS",
                             help="capture span trees for queries over this "
                                  "latency (0 captures every query)")
    harness_run.add_argument("--telemetry-out", default=None, metavar="DIR",
                             help="dump metrics.json/metrics.prom/"
                                  "spans.jsonl/slow_queries.json into DIR "
                                  "(implies --telemetry)")
    harness_run.set_defaults(handler=cmd_harness_run)

    telemetry = subcommands.add_parser(
        "telemetry", help="inspect telemetry dumps (repro.telemetry)")
    telemetry_sub = telemetry.add_subparsers(dest="action", required=True)

    tele_dump = telemetry_sub.add_parser(
        "dump", help="re-render a metrics dump as JSON or Prometheus text")
    tele_dump.add_argument("metrics",
                           help="metrics.json dump, harness telemetry "
                                "snapshot, or BENCH_harness.json trajectory "
                                "(latest run with telemetry wins)")
    tele_dump.add_argument("--format", choices=("json", "prometheus"),
                           default="json")
    tele_dump.set_defaults(handler=cmd_telemetry_dump)

    tele_top = telemetry_sub.add_parser(
        "top", help="rank latency histograms from a metrics dump")
    tele_top.add_argument("metrics", help="metrics dump (as for 'dump')")
    tele_top.add_argument("--quantile", type=float, default=0.99,
                          help="ranking quantile (default p99)")
    tele_top.add_argument("--name", default=None,
                          help="only rank series of this histogram name "
                               "(e.g. query_seconds)")
    tele_top.add_argument("--limit", type=int, default=10)
    tele_top.set_defaults(handler=cmd_telemetry_top)

    tele_trace = telemetry_sub.add_parser(
        "trace", help="render one trace tree from a spans.jsonl export")
    tele_trace.add_argument("spans", help="spans.jsonl file "
                                          "(see harness run --telemetry-out)")
    tele_trace.add_argument("--trace-id", default=None,
                            help="trace to render (default: the trace of "
                                 "the longest root span)")
    tele_trace.set_defaults(handler=cmd_telemetry_trace)

    optimizer = subcommands.add_parser(
        "optimizer", help="multi-query optimizer tooling (repro.optimizer)")
    optimizer_sub = optimizer.add_subparsers(dest="action", required=True)

    opt_advise = optimizer_sub.add_parser(
        "advise", help="rank roll-up/caching opportunities from a harness "
                       "trajectory or telemetry metrics dump")
    opt_advise.add_argument("source",
                            help="BENCH_harness.json trajectory, single "
                                 "harness record, or metrics.json dump")
    opt_advise.add_argument("--top", type=int, default=5,
                            help="number of recommendations (default 5)")
    opt_advise.set_defaults(handler=cmd_optimizer_advise)

    opt_stats = optimizer_sub.add_parser(
        "stats", help="show the optimizer cache/profile/materialized block "
                      "of a harness record")
    opt_stats.add_argument("source",
                           help="BENCH_harness.json trajectory (latest run "
                                "with an optimizer section), harness "
                                "record, or Optimizer.stats() JSON")
    opt_stats.set_defaults(handler=cmd_optimizer_stats)

    analysis = subcommands.add_parser(
        "analysis", help="repo-invariant static analysis")
    analysis_sub = analysis.add_subparsers(dest="action", required=True)

    lint = analysis_sub.add_parser(
        "lint", help="check lock/determinism/telemetry/API invariants")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to check (default: src)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of accepted legacy findings")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite --baseline with the current findings")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default: text)")
    lint.add_argument("--output", default=None,
                      help="also write the JSON report to this path "
                           "(CI artifact)")
    lint.add_argument("--rules", action="store_true",
                      help="list the rule catalogue and exit")
    lint.set_defaults(handler=cmd_analysis_lint)

    datasets = subcommands.add_parser("datasets",
                                      help="synthetic evaluation datasets")
    datasets_sub = datasets.add_subparsers(dest="action", required=True)

    ds_list = datasets_sub.add_parser("list")
    ds_list.set_defaults(handler=cmd_datasets_list)

    ds_stats = datasets_sub.add_parser("stats")
    ds_stats.add_argument("name")
    ds_stats.add_argument("--rows", type=int, default=100_000)
    ds_stats.add_argument("--seed", type=int, default=0)
    ds_stats.set_defaults(handler=cmd_datasets_stats)

    ds_generate = datasets_sub.add_parser("generate")
    ds_generate.add_argument("name")
    ds_generate.add_argument("-o", "--output", required=True)
    ds_generate.add_argument("--rows", type=int, default=100_000)
    ds_generate.add_argument("--seed", type=int, default=0)
    ds_generate.set_defaults(handler=cmd_datasets_generate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; prints one JSON document and returns an exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result = args.handler(args)
    except FileNotFoundError as exc:
        print(json.dumps({"error": f"file not found: {exc.filename}"}))
        return 2
    except Exception as exc:  # surfaced as structured output, not traceback
        print(json.dumps({"error": f"{type(exc).__name__}: {exc}"}))
        return 1
    print(json.dumps(result, indent=2, default=float))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
