"""Command-line interface: build, merge, and query moments sketches.

Mirrors how the sketch would be operated from shell pipelines or cron
jobs around an analytics engine:

    python -m repro sketch build data.csv -o shard.msk --k 10
    python -m repro sketch merge shard1.msk shard2.msk -o total.msk
    python -m repro sketch query total.msk --phi 0.5 0.9 0.99
    python -m repro sketch threshold total.msk --t 100 --phi 0.99
    python -m repro sketch info total.msk
    python -m repro datasets list
    python -m repro datasets stats milan --rows 100000

Input files are one float per line (CSV with a single column); sketch
files use the library's binary serialization.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .core import (
    ConvergenceError,
    MomentsSketch,
    QuantileEstimator,
    merge_all,
    safe_estimate_quantiles,
)
from .core.bounds import markov_bound, rtt_bound
from .core.cascade import ThresholdCascade
from .datasets import available, load, spec, summary_statistics


def _read_values(path: str) -> np.ndarray:
    """Load one-float-per-line data (use '-' for stdin)."""
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        values = np.loadtxt(stream, dtype=float, ndmin=1)
    finally:
        if stream is not sys.stdin:
            stream.close()
    return values


def _load_sketch(path: str) -> MomentsSketch:
    return MomentsSketch.from_bytes(Path(path).read_bytes())


# ----------------------------------------------------------------------
# Subcommand handlers (each returns a JSON-serializable result)
# ----------------------------------------------------------------------

def cmd_build(args: argparse.Namespace) -> dict:
    values = _read_values(args.input)
    sketch = MomentsSketch.from_data(values, k=args.k,
                                     track_log=not args.no_log)
    Path(args.output).write_bytes(sketch.to_bytes())
    return {"output": args.output, "count": sketch.count,
            "min": sketch.min, "max": sketch.max,
            "size_bytes": sketch.size_bytes()}


def cmd_merge(args: argparse.Namespace) -> dict:
    sketches = [_load_sketch(path) for path in args.inputs]
    merged = merge_all(sketches)
    Path(args.output).write_bytes(merged.to_bytes())
    return {"output": args.output, "merged": len(sketches),
            "count": merged.count}


def cmd_query(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    phis = np.asarray(args.phi, dtype=float)
    estimates = safe_estimate_quantiles(sketch, phis)
    return {"count": sketch.count,
            "quantiles": {f"{phi:g}": float(q)
                          for phi, q in zip(phis, estimates)}}


def cmd_threshold(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    cascade = ThresholdCascade()
    outcome = cascade.evaluate(sketch, args.t, args.phi)
    return {"phi": args.phi, "threshold": args.t,
            "exceeds": outcome.result, "decided_by": outcome.stage}


def cmd_info(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    info = {"k": sketch.k, "count": sketch.count, "min": sketch.min,
            "max": sketch.max, "size_bytes": sketch.size_bytes(),
            "log_moments": sketch.has_log_moments}
    if not sketch.is_empty and sketch.max > sketch.min:
        try:
            estimator = QuantileEstimator.fit(sketch, allow_backoff=True)
            if estimator.selection is not None:
                info["selected_k1"] = estimator.selection.k1
                info["selected_k2"] = estimator.selection.k2
        except ConvergenceError:
            info["estimation"] = "non-convergent (near-discrete data)"
    return info


def cmd_bounds(args: argparse.Namespace) -> dict:
    sketch = _load_sketch(args.sketch)
    markov = markov_bound(sketch, args.t)
    rtt = rtt_bound(sketch, args.t)
    return {"t": args.t, "count": sketch.count,
            "markov": {"lower": markov.lower, "upper": markov.upper},
            "rtt": {"lower": rtt.lower, "upper": rtt.upper}}


def cmd_datasets_list(args: argparse.Namespace) -> dict:
    return {"datasets": sorted(available())}


def cmd_datasets_stats(args: argparse.Namespace) -> dict:
    data = np.asarray(load(args.name, n=args.rows, seed=args.seed))
    stats = summary_statistics(data)
    published = spec(args.name)
    return {"dataset": args.name, "generated": stats,
            "paper": {"size": published.paper_size, "min": published.paper_min,
                      "max": published.paper_max, "mean": published.paper_mean,
                      "stddev": published.paper_stddev,
                      "skew": published.paper_skew}}


def cmd_datasets_generate(args: argparse.Namespace) -> dict:
    data = np.asarray(load(args.name, n=args.rows, seed=args.seed))
    np.savetxt(args.output, data)
    return {"output": args.output, "rows": int(data.size)}


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Moments sketch toolkit (VLDB 2018 reproduction)")
    subcommands = parser.add_subparsers(dest="command", required=True)

    sketch = subcommands.add_parser("sketch", help="sketch operations")
    sketch_sub = sketch.add_subparsers(dest="action", required=True)

    build = sketch_sub.add_parser("build", help="build a sketch from values")
    build.add_argument("input", help="value file, one float per line ('-' = stdin)")
    build.add_argument("-o", "--output", required=True)
    build.add_argument("--k", type=int, default=10, help="moment order")
    build.add_argument("--no-log", action="store_true",
                       help="skip log moments (halves the footprint)")
    build.set_defaults(handler=cmd_build)

    merge = sketch_sub.add_parser("merge", help="merge sketch files")
    merge.add_argument("inputs", nargs="+")
    merge.add_argument("-o", "--output", required=True)
    merge.set_defaults(handler=cmd_merge)

    query = sketch_sub.add_parser("query", help="estimate quantiles")
    query.add_argument("sketch")
    query.add_argument("--phi", type=float, nargs="+", default=[0.5, 0.99])
    query.set_defaults(handler=cmd_query)

    threshold = sketch_sub.add_parser("threshold",
                                      help="cascade threshold predicate")
    threshold.add_argument("sketch")
    threshold.add_argument("--t", type=float, required=True)
    threshold.add_argument("--phi", type=float, default=0.99)
    threshold.set_defaults(handler=cmd_threshold)

    info = sketch_sub.add_parser("info", help="inspect a sketch file")
    info.add_argument("sketch")
    info.set_defaults(handler=cmd_info)

    bounds = sketch_sub.add_parser("bounds", help="rank bounds at a point")
    bounds.add_argument("sketch")
    bounds.add_argument("--t", type=float, required=True)
    bounds.set_defaults(handler=cmd_bounds)

    datasets = subcommands.add_parser("datasets",
                                      help="synthetic evaluation datasets")
    datasets_sub = datasets.add_subparsers(dest="action", required=True)

    ds_list = datasets_sub.add_parser("list")
    ds_list.set_defaults(handler=cmd_datasets_list)

    ds_stats = datasets_sub.add_parser("stats")
    ds_stats.add_argument("name")
    ds_stats.add_argument("--rows", type=int, default=100_000)
    ds_stats.add_argument("--seed", type=int, default=0)
    ds_stats.set_defaults(handler=cmd_datasets_stats)

    ds_generate = datasets_sub.add_parser("generate")
    ds_generate.add_argument("name")
    ds_generate.add_argument("-o", "--output", required=True)
    ds_generate.add_argument("--rows", type=int, default=100_000)
    ds_generate.add_argument("--seed", type=int, default=0)
    ds_generate.set_defaults(handler=cmd_datasets_generate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; prints one JSON document and returns an exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result = args.handler(args)
    except FileNotFoundError as exc:
        print(json.dumps({"error": f"file not found: {exc.filename}"}))
        return 2
    except Exception as exc:  # surfaced as structured output, not traceback
        print(json.dumps({"error": f"{type(exc).__name__}: {exc}"}))
        return 1
    print(json.dumps(result, indent=2, default=float))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
