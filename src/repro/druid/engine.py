"""A self-contained Druid-like analytics engine (Section 7.1).

Implements the subset of Druid's architecture the paper's end-to-end
benchmark exercises:

* **Ingestion** rolls raw (timestamp, dimensions, value) rows up at a
  configurable time granularity: rows in the same time bucket with the
  same dimension tuple collapse into one pre-aggregated cube cell holding
  an aggregator state per configured aggregator (Druid "roll-up").
* **Segments** partition cells by time chunk and are scanned independently.
* The **broker** answers quantile/sum queries by scanning matching cells,
  merging their states (optionally across a small processing-thread pool —
  the paper's quickstart config uses 2), and finalizing once.

The moments sketch and S-Hist enter through the aggregator plug-in API in
:mod:`.aggregators`, so the comparison of Figure 11 runs the same plan for
every aggregator and differs only in merge/finalize cost.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import QueryError
from .aggregators import AggregatorFactory, AggregatorState


@dataclass
class Segment:
    """One time chunk: cube cells keyed by dimension tuple."""

    chunk: int
    cells: dict[tuple, dict[str, AggregatorState]] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class QueryResult:
    """Finalized value plus the execution profile the benchmarks report."""

    value: float
    cells_scanned: int
    merge_seconds: float
    finalize_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.merge_seconds + self.finalize_seconds


class DruidEngine:
    """Minimal Druid: ingestion, segments, and a broker with a thread pool."""

    def __init__(self, dimensions: Sequence[str],
                 aggregators: Mapping[str, AggregatorFactory],
                 granularity: float = 3600.0,
                 processing_threads: int = 2):
        if not dimensions:
            raise QueryError("need at least one dimension")
        self.dimensions = tuple(dimensions)
        self.aggregators = dict(aggregators)
        self.granularity = float(granularity)
        self.processing_threads = max(int(processing_threads), 1)
        self.segments: dict[int, Segment] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, timestamps: np.ndarray,
               dimension_columns: Sequence[np.ndarray],
               values: np.ndarray) -> None:
        """Roll up rows into per-(chunk, dimension-tuple) aggregator states."""
        if len(dimension_columns) != len(self.dimensions):
            raise QueryError(
                f"expected {len(self.dimensions)} dimension columns")
        timestamps = np.asarray(timestamps, dtype=float)
        values = np.asarray(values, dtype=float)
        chunks = np.floor(timestamps / self.granularity).astype(int)
        columns = [np.asarray(col) for col in dimension_columns]
        order = np.lexsort(tuple(reversed(columns)) + (chunks,))
        chunks = chunks[order]
        columns = [col[order] for col in columns]
        values = values[order]
        boundary = np.zeros(values.size, dtype=bool)
        boundary[0] = True
        boundary[1:] |= chunks[1:] != chunks[:-1]
        for col in columns:
            boundary[1:] |= col[1:] != col[:-1]
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], values.size)
        for start, end in zip(starts, ends):
            chunk = int(chunks[start])
            key = tuple(col[start] for col in columns)
            segment = self.segments.setdefault(chunk, Segment(chunk=chunk))
            cell = segment.cells.get(key)
            if cell is None:
                cell = {name: factory.create()
                        for name, factory in self.aggregators.items()}
                segment.cells[key] = cell
            batch = values[start:end]
            for state in cell.values():
                state.aggregate(batch)

    @property
    def num_cells(self) -> int:
        return sum(segment.num_cells for segment in self.segments.values())

    # ------------------------------------------------------------------
    # Broker
    # ------------------------------------------------------------------

    def _matching_states(self, aggregator: str,
                         filters: Mapping[str, object] | None,
                         interval: tuple[float, float] | None
                         ) -> list[AggregatorState]:
        if aggregator not in self.aggregators:
            raise QueryError(f"unknown aggregator {aggregator!r}; "
                             f"registered: {sorted(self.aggregators)}")
        positions = {}
        if filters:
            for dim, value in filters.items():
                if dim not in self.dimensions:
                    raise QueryError(f"unknown dimension {dim!r}")
                positions[self.dimensions.index(dim)] = value
        chunk_range = None
        if interval is not None:
            chunk_range = (int(np.floor(interval[0] / self.granularity)),
                           int(np.floor(interval[1] / self.granularity)))
        states = []
        for chunk, segment in self.segments.items():
            if chunk_range is not None and not chunk_range[0] <= chunk <= chunk_range[1]:
                continue
            for key, cell in segment.cells.items():
                if all(key[pos] == value for pos, value in positions.items()):
                    states.append(cell[aggregator])
        return states

    def query(self, aggregator: str, phi: float = 0.5,
              filters: Mapping[str, object] | None = None,
              interval: tuple[float, float] | None = None) -> QueryResult:
        """Scan matching cells, merge states, finalize (the Eq. 2 plan).

        ``phi`` reaches the aggregator's ``finalize`` (quantile aggregators
        use it; ``sum`` ignores it).  Merging shards across the processing
        thread pool as Druid's historical nodes do.
        """
        states = self._matching_states(aggregator, filters, interval)
        if not states:
            raise QueryError("query matched no cells")
        start = time.perf_counter()
        merged = self._merge_states(states)
        merge_seconds = time.perf_counter() - start
        start = time.perf_counter()
        value = merged.finalize(phi=phi)
        finalize_seconds = time.perf_counter() - start
        return QueryResult(value=value, cells_scanned=len(states),
                           merge_seconds=merge_seconds,
                           finalize_seconds=finalize_seconds)

    def _merge_states(self, states: list[AggregatorState]) -> AggregatorState:
        def fold(shard: list[AggregatorState]) -> AggregatorState:
            aggregate = shard[0].copy()
            for state in shard[1:]:
                aggregate.merge(state)
            return aggregate

        if self.processing_threads == 1 or len(states) < 2 * self.processing_threads:
            return fold(states)
        shard_size = (len(states) + self.processing_threads - 1) // self.processing_threads
        shards = [states[i:i + shard_size]
                  for i in range(0, len(states), shard_size)]
        with ThreadPoolExecutor(max_workers=self.processing_threads) as pool:
            partials = list(pool.map(fold, shards))
        return fold(partials)

    def group_by(self, aggregator: str, dimension: str, phi: float = 0.5,
                 filters: Mapping[str, object] | None = None
                 ) -> dict[object, float]:
        """Per-dimension-value finalized results (Druid groupBy query)."""
        if dimension not in self.dimensions:
            raise QueryError(f"unknown dimension {dimension!r}")
        position = self.dimensions.index(dimension)
        groups: dict[object, AggregatorState] = {}
        for segment in self.segments.values():
            for key, cell in segment.cells.items():
                if filters and any(
                        key[self.dimensions.index(d)] != v
                        for d, v in filters.items()):
                    continue
                value = key[position]
                if value in groups:
                    groups[value].merge(cell[aggregator])
                else:
                    groups[value] = cell[aggregator].copy()
        return {value: state.finalize(phi=phi) for value, state in groups.items()}


def top_n_by_quantile(engine: DruidEngine, aggregator: str, dimension: str,
                      n: int, phi: float = 0.99,
                      filters: Mapping[str, object] | None = None
                      ) -> list[tuple[object, float]]:
    """Druid-style topN: the n dimension values with the largest phi-quantile.

    For moments-sketch aggregators the candidate set is pruned with RTT
    rank bounds before any max-entropy solve: a group whose *best possible*
    quantile (from its rank bounds) cannot beat the n-th group's *worst
    possible* quantile is discarded without estimation — the same
    bounds-before-estimates principle as the threshold cascade (Section 5),
    applied to a ranking query.  Other aggregators estimate every group.

    Returns (dimension value, quantile estimate) pairs, best first.
    """
    from ..core.bounds import rtt_bound
    from ..summaries.moments_summary import MomentsSummary

    if n < 1:
        raise QueryError(f"n must be positive, got {n}")
    if dimension not in engine.dimensions:
        raise QueryError(f"unknown dimension {dimension!r}")
    position = engine.dimensions.index(dimension)
    groups: dict[object, AggregatorState] = {}
    for segment in engine.segments.values():
        for key, cell in segment.cells.items():
            if filters and any(key[engine.dimensions.index(d)] != v
                               for d, v in filters.items()):
                continue
            if aggregator not in cell:
                raise QueryError(f"unknown aggregator {aggregator!r}")
            value = key[position]
            if value in groups:
                groups[value].merge(cell[aggregator])
            else:
                groups[value] = cell[aggregator].copy()
    if not groups:
        raise QueryError("query matched no cells")

    sketches = {
        value: state.summary.sketch
        for value, state in groups.items()
        if hasattr(state, "summary") and isinstance(state.summary, MomentsSummary)
    }
    if len(sketches) == len(groups) and len(groups) > n:
        # Bound-based pruning.  For each group, bracket its phi-quantile:
        # invert the RTT rank bounds at the support edges via bisection on
        # candidate thresholds drawn from the group's own range.
        brackets = {}
        for value, sketch in sketches.items():
            lo, hi = _quantile_bracket(sketch, phi, rtt_bound)
            brackets[value] = (lo, hi)
        # n-th largest guaranteed-lower-bound; groups whose upper bound
        # falls below it cannot make the list.
        floors = sorted((b[0] for b in brackets.values()), reverse=True)
        cutoff = floors[n - 1]
        candidates = [value for value, (lo, hi) in brackets.items()
                      if hi >= cutoff]
    else:
        candidates = list(groups)

    scored = [(value, groups[value].finalize(phi=phi)) for value in candidates]
    scored.sort(key=lambda pair: pair[1], reverse=True)
    return scored[:n]


def _quantile_bracket(sketch, phi: float, bound_fn) -> tuple[float, float]:
    """[lower, upper] interval guaranteed to contain the phi-quantile.

    Bisects on the threshold t: F(t) bounds from the moment inequalities
    tell us whether the phi-quantile must lie above or below t.
    """
    lo, hi = sketch.min, sketch.max
    target = phi * sketch.count
    for _ in range(20):
        mid = 0.5 * (lo + hi)
        bounds = bound_fn(sketch, mid)
        if bounds.upper < target:
            lo = mid          # quantile certainly above mid
        elif bounds.lower > target:
            hi = mid          # quantile certainly below mid
        else:
            break             # undecidable: the bracket is [lo, hi]
    # Conservative expansion: the undecided region around mid belongs to
    # both sides, so return the outer bracket.
    return lo, hi
