"""A self-contained Druid-like analytics engine (Section 7.1).

Implements the subset of Druid's architecture the paper's end-to-end
benchmark exercises:

* **Ingestion** rolls raw (timestamp, dimensions, value) rows up at a
  configurable time granularity: rows in the same time bucket with the
  same dimension tuple collapse into one pre-aggregated cube cell holding
  an aggregator state per configured aggregator (Druid "roll-up").
* **Segments** partition cells by time chunk and are scanned independently.
* The **broker** answers quantile/sum queries by scanning matching cells,
  merging their states (optionally across a small processing-thread pool —
  the paper's quickstart config uses 2), and finalizing once.

The moments sketch and S-Hist enter through the aggregator plug-in API in
:mod:`.aggregators`, so the comparison of Figure 11 runs the same plan for
every aggregator and differs only in merge/finalize cost.

Moments-sketch aggregators are *packed* by default
(``packed_moments=True``): each segment stores their per-cell states as
rows of one :class:`~repro.store.PackedSketchStore` instead of individual
state objects, and the broker merges a segment's matching rows with a
single vectorized reduction (then folds the per-segment partials).  This
is the columnar layout a real Druid historical keeps per segment, and it
removes the per-merge interpreter overhead from the Eq. 2 merge term.
Each segment's reduction is bit-for-bit identical to merging its cells
sequentially; folding the per-segment partials associates the adds
differently than one flat loop over all cells (just like the
thread-pool shard fold does), so cross-segment aggregates can differ
from the object layout at the last-ulp level.  Pass
``packed_moments=False`` to benchmark the object-per-cell layout.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import QueryError
from ..core.grouping import lexsort_groups
from ..core.params import normalize_q
from ..core.sketch import MomentsSketch
from ..store import PackedSketchStore
from .aggregators import (AggregatorFactory, AggregatorState,
                          MomentsSketchAggregator, SummaryState)


@dataclass
class Segment:
    """One time chunk: cube cells keyed by dimension tuple.

    ``cells`` holds the object-per-cell aggregator states; packed
    moments aggregators instead keep one :class:`PackedSketchStore` per
    aggregator name in ``packed``, with ``packed_rows`` mapping each cell
    key to its store row.  Every cell key appears in ``cells`` even when
    all its aggregators are packed, so scans and ``num_cells`` are
    layout-agnostic.
    """

    chunk: int
    cells: dict[tuple, dict[str, AggregatorState]] = field(default_factory=dict)
    packed: dict[str, PackedSketchStore] = field(default_factory=dict)
    packed_rows: dict[str, dict[tuple, int]] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class QueryResult:
    """Finalized value plus the execution profile the benchmarks report.

    All three phase timings are populated identically on the packed and
    loop paths (both route through the shared
    :class:`~repro.api.backends.DruidBackend` adapter):
    ``planner_seconds`` covers the segment/cell scan that locates
    matching state, ``merge_seconds`` the merge fold, and
    ``finalize_seconds`` (alias ``solve_seconds``) the estimator solve
    — reported once per query, never summed per cell.  ``solve_route``
    records which estimation path ran on kinds where both exist
    (``"batched"``/``"scalar"``), so workload scripts can A/B the
    batched estimation layer.
    """

    value: float
    cells_scanned: int
    merge_seconds: float
    finalize_seconds: float
    planner_seconds: float = 0.0
    solve_route: str = ""

    @property
    def solve_seconds(self) -> float:
        """Canonical name for the estimation phase (see repro.api)."""
        return self.finalize_seconds

    @property
    def total_seconds(self) -> float:
        return self.planner_seconds + self.merge_seconds + self.finalize_seconds


class DruidEngine:
    """Minimal Druid: ingestion, segments, and a broker with a thread pool."""

    def __init__(self, dimensions: Sequence[str],
                 aggregators: Mapping[str, AggregatorFactory],
                 granularity: float = 3600.0,
                 processing_threads: int = 2,
                 packed_moments: bool = True):
        if not dimensions:
            raise QueryError("need at least one dimension")
        self.dimensions = tuple(dimensions)
        self.aggregators = dict(aggregators)
        self.granularity = float(granularity)
        self.processing_threads = max(int(processing_threads), 1)
        self.packed_moments = bool(packed_moments)
        self._packed_names = frozenset(
            name for name, factory in self.aggregators.items()
            if packed_moments and isinstance(factory, MomentsSketchAggregator))
        self.segments: dict[int, Segment] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, timestamps: np.ndarray,
               dimension_columns: Sequence[np.ndarray],
               values: np.ndarray) -> None:
        """Roll up rows into per-(chunk, dimension-tuple) aggregator states.

        Thin shim over the unified ingestion API (:mod:`repro.ingest`):
        the batch is validated (dimension arity *and* aligned column
        lengths, raising :class:`~repro.core.errors.IngestError`) and
        written through :class:`~repro.ingest.DruidWriteBackend` in a
        single flush, bit-for-bit identical to the historical entry
        point.  Use an :class:`~repro.ingest.IngestSession` for buffered
        micro-batched writes.
        """
        from ..ingest import write_columns
        write_columns(self, values, dims=dimension_columns,
                      timestamps=timestamps)

    def _rollup_rows(self, timestamps: np.ndarray,
                     dimension_columns: Sequence[np.ndarray],
                     values: np.ndarray) -> int:
        """One-batch roll-up kernel; returns the (chunk, key) groups hit."""
        timestamps = np.asarray(timestamps, dtype=float)
        values = np.asarray(values, dtype=float)
        chunks = np.floor(timestamps / self.granularity).astype(int)
        order, columns, chunks, starts, ends = \
            lexsort_groups(dimension_columns, primary=chunks)
        values = values[order]
        for start, end in zip(starts, ends):
            chunk = int(chunks[start])
            key = tuple(col[start] for col in columns)
            segment = self.segments.setdefault(chunk, Segment(chunk=chunk))
            cell = segment.cells.get(key)
            if cell is None:
                cell = {name: factory.create()
                        for name, factory in self.aggregators.items()
                        if name not in self._packed_names}
                segment.cells[key] = cell
            batch = values[start:end]
            for state in cell.values():
                state.aggregate(batch)
            for name in self._packed_names:
                store = segment.packed.get(name)
                if store is None:
                    factory = self.aggregators[name]
                    assert isinstance(factory, MomentsSketchAggregator)
                    store = PackedSketchStore(k=factory.k)
                    segment.packed[name] = store
                    segment.packed_rows[name] = {}
                rows = segment.packed_rows[name]
                row = rows.get(key)
                if row is None:
                    row = store.new_row()
                    rows[key] = row
                store.accumulate_row(row, batch)
        return int(starts.size)

    @property
    def num_cells(self) -> int:
        return sum(segment.num_cells for segment in self.segments.values())

    # ------------------------------------------------------------------
    # Broker
    # ------------------------------------------------------------------

    def _filter_positions(self, filters: Mapping[str, object] | None
                          ) -> dict[int, object]:
        positions: dict[int, object] = {}
        if filters:
            for dim, value in filters.items():
                if dim not in self.dimensions:
                    raise QueryError(f"unknown dimension {dim!r}")
                positions[self.dimensions.index(dim)] = value
        return positions

    def _scanned_segments(self, interval: tuple[float, float] | None
                          ) -> list[Segment]:
        if interval is None:
            return list(self.segments.values())
        lo = int(np.floor(interval[0] / self.granularity))
        hi = int(np.floor(interval[1] / self.granularity))
        return [segment for chunk, segment in self.segments.items()
                if lo <= chunk <= hi]

    def _check_aggregator(self, aggregator: str) -> None:
        if aggregator not in self.aggregators:
            raise QueryError(f"unknown aggregator {aggregator!r}; "
                             f"registered: {sorted(self.aggregators)}")

    def _matching_states(self, aggregator: str,
                         filters: Mapping[str, object] | None,
                         interval: tuple[float, float] | None
                         ) -> list[AggregatorState]:
        self._check_aggregator(aggregator)
        positions = self._filter_positions(filters)
        states = []
        for segment in self._scanned_segments(interval):
            for key, cell in segment.cells.items():
                if all(key[pos] == value for pos, value in positions.items()):
                    states.append(cell[aggregator])
        return states

    def _matching_packed_rows(self, aggregator: str,
                              filters: Mapping[str, object] | None,
                              interval: tuple[float, float] | None
                              ) -> list[tuple[PackedSketchStore, np.ndarray]]:
        """Per-segment (store, matching row indices) pairs for a scan."""
        self._check_aggregator(aggregator)
        positions = self._filter_positions(filters)
        refs = []
        for segment in self._scanned_segments(interval):
            store = segment.packed.get(aggregator)
            if store is None:
                continue
            rows = segment.packed_rows[aggregator]
            if positions:
                matching = np.fromiter(
                    (row for key, row in rows.items()
                     if all(key[pos] == value
                            for pos, value in positions.items())),
                    dtype=np.intp)
            else:
                matching = np.fromiter(rows.values(), dtype=np.intp)
            if matching.size:
                refs.append((store, matching))
        return refs

    @staticmethod
    def fold_packed_refs(refs: list[tuple[PackedSketchStore, np.ndarray]]
                         ) -> MomentsSketch | None:
        """Left-fold per-segment packed reductions (``None`` if empty).

        The one fold order shared by the broker adapter and the cluster
        layer's per-shard partials: each segment's rows reduce with one
        vectorized ``batch_merge`` and the per-segment partials merge
        sequentially in ``refs`` order.  Bit-exactness guarantees across
        those layers depend on both using exactly this fold.
        """
        if not refs:
            return None
        sketch = refs[0][0].batch_merge(refs[0][1])
        for store, rows in refs[1:]:
            sketch.merge(store.batch_merge(rows))
        return sketch

    def _wrap_packed(self, aggregator: str, sketch: MomentsSketch
                     ) -> AggregatorState:
        """Wrap a merged sketch in the aggregator's state type."""
        state = self.aggregators[aggregator].create()
        assert isinstance(state, SummaryState)
        state.summary.sketch = sketch
        return state

    def query(self, aggregator: str, q: float | None = None,
              filters: Mapping[str, object] | None = None,
              interval: tuple[float, float] | None = None, *,
              phi: float | None = None) -> QueryResult:
        """Scan matching cells, merge states, finalize (the Eq. 2 plan).

        Thin shim over the unified query API: builds a ``quantile``
        :class:`~repro.api.QuerySpec` and executes it through
        :class:`~repro.api.QueryService`, so the packed vectorized path,
        the loop path, and all timing fields are exactly the ones every
        other entry point gets.  ``q`` reaches the aggregator's
        ``finalize`` (quantile aggregators use it; ``sum`` ignores it);
        the ``phi=`` keyword is deprecated.
        """
        from ..api import QuerySpec, QueryService
        q = normalize_q(q, phi, default=0.5)
        spec = QuerySpec(kind="quantile", quantiles=(q,), measure=aggregator,
                         filters=filters or {}, interval=interval)
        response = QueryService(druid=self).execute(spec)
        timings = response.timings
        return QueryResult(value=response.value,
                           cells_scanned=response.cells_scanned,
                           merge_seconds=timings.merge_seconds,
                           finalize_seconds=timings.solve_seconds,
                           planner_seconds=timings.planner_seconds,
                           solve_route=timings.solve_route)

    def _merge_states(self, states: list[AggregatorState]) -> AggregatorState:
        def fold(shard: list[AggregatorState]) -> AggregatorState:
            aggregate = shard[0].copy()
            for state in shard[1:]:
                aggregate.merge(state)
            return aggregate

        if self.processing_threads == 1 or len(states) < 2 * self.processing_threads:
            return fold(states)
        shard_size = (len(states) + self.processing_threads - 1) // self.processing_threads
        shards = [states[i:i + shard_size]
                  for i in range(0, len(states), shard_size)]
        with ThreadPoolExecutor(max_workers=self.processing_threads) as pool:
            partials = list(pool.map(fold, shards))
        return fold(partials)

    def group_states(self, aggregator: str, dimension: str,
                     filters: Mapping[str, object] | None = None,
                     profile: dict | None = None
                     ) -> dict[object, AggregatorState]:
        """Merged aggregator state per distinct value of ``dimension``.

        The shared machinery behind groupBy and topN.  Packed moments
        aggregators merge each segment's rows group-wise with vectorized
        reductions and fold the per-segment partial sketches.

        ``profile``, when given, receives ``locate_seconds`` (row/group
        selection — planner work) and ``merge_seconds`` (the group-wise
        reductions) so callers can split phase accounting.
        """
        self._check_aggregator(aggregator)
        if dimension not in self.dimensions:
            raise QueryError(f"unknown dimension {dimension!r}")
        position = self.dimensions.index(dimension)
        positions = self._filter_positions(filters)
        if aggregator in self._packed_names:
            locate_seconds = merge_seconds = 0.0
            sketches: dict[object, MomentsSketch] = {}
            for segment in self.segments.values():
                store = segment.packed.get(aggregator)
                if store is None:
                    continue
                start = time.perf_counter()
                rows: list[int] = []
                group_keys: list[object] = []
                for key, row in segment.packed_rows[aggregator].items():
                    if not all(key[pos] == value
                               for pos, value in positions.items()):
                        continue
                    rows.append(row)
                    group_keys.append(key[position])
                locate_seconds += time.perf_counter() - start
                if not rows:
                    continue
                start = time.perf_counter()
                for value, sketch in store.batch_merge_by(
                        rows, group_keys).items():
                    existing = sketches.get(value)
                    if existing is None:
                        sketches[value] = sketch
                    else:
                        existing.merge(sketch)
                merge_seconds += time.perf_counter() - start
            if profile is not None:
                profile["locate_seconds"] = locate_seconds
                profile["merge_seconds"] = merge_seconds
            return {value: self._wrap_packed(aggregator, sketch)
                    for value, sketch in sketches.items()}
        start = time.perf_counter()
        groups: dict[object, AggregatorState] = {}
        for segment in self.segments.values():
            for key, cell in segment.cells.items():
                if not all(key[pos] == value
                           for pos, value in positions.items()):
                    continue
                value = key[position]
                if value in groups:
                    groups[value].merge(cell[aggregator])
                else:
                    groups[value] = cell[aggregator].copy()
        if profile is not None:
            # The object-state loop fuses selection and merging; report
            # it all as merge work.
            profile["locate_seconds"] = 0.0
            profile["merge_seconds"] = time.perf_counter() - start
        return groups

    def group_by(self, aggregator: str, dimension: str,
                 q: float | None = None,
                 filters: Mapping[str, object] | None = None, *,
                 phi: float | None = None) -> dict[object, float]:
        """Per-dimension-value finalized results (Druid groupBy query).

        Shim over the unified API's ``group_by`` kind: the per-segment
        packed reductions produce one merged sketch per group and the
        service then solves *all* groups with one batched max-entropy
        pass (``timings.solve_calls == 1``) instead of one Newton loop
        per group.  The ``phi=`` keyword is deprecated in favor of
        ``q``.
        """
        from ..api import QuerySpec, QueryService, qkey
        q = normalize_q(q, phi, default=0.5)
        spec = QuerySpec(kind="group_by", quantiles=(q,), measure=aggregator,
                         group_dimension=dimension, filters=filters or {})
        response = QueryService(druid=self).execute(spec)
        key = qkey(q)
        return {value: payload[key]
                for value, payload in (response.groups or {}).items()}


def top_n_by_quantile(engine: DruidEngine, aggregator: str, dimension: str,
                      n: int, q: float | None = None,
                      filters: Mapping[str, object] | None = None, *,
                      phi: float | None = None) -> list[tuple[object, float]]:
    """Druid-style topN: the n dimension values with the largest q-quantile.

    Shim over the unified API's ``top_n`` kind, which keeps the
    bounds-before-estimates pruning (RTT rank-bound brackets discard
    groups that cannot make the list before any max-entropy solve — see
    :meth:`repro.api.QueryService._top_n`) and, on the default batched
    route, runs the bracket bisection and the surviving candidates'
    solves as stacked vectorized passes with identical decisions.  The
    ``phi=`` keyword is deprecated in favor of ``q``.

    Returns (dimension value, quantile estimate) pairs, best first.
    """
    from ..api import QuerySpec, QueryService
    q = normalize_q(q, phi, default=0.99)
    spec = QuerySpec(kind="top_n", quantiles=(q,), measure=aggregator,
                     group_dimension=dimension, n=n, filters=filters or {})
    response = QueryService(druid=engine).execute(spec)
    return [(value, estimate) for value, estimate in (response.top or [])]


def _quantile_bracket(sketch, q: float, bound_fn) -> tuple[float, float]:
    """[lower, upper] interval guaranteed to contain the q-quantile.

    Bisects on the threshold t: F(t) bounds from the moment inequalities
    tell us whether the q-quantile must lie above or below t.
    """
    lo, hi = sketch.min, sketch.max
    target = q * sketch.count
    for _ in range(20):
        mid = 0.5 * (lo + hi)
        bounds = bound_fn(sketch, mid)
        if bounds.upper < target:
            lo = mid          # quantile certainly above mid
        elif bounds.lower > target:
            hi = mid          # quantile certainly below mid
        else:
            break             # undecidable: the bracket is [lo, hi]
    # Conservative expansion: the undecided region around mid belongs to
    # both sides, so return the outer bracket.
    return lo, hi
