"""Druid-like analytics engine with pluggable aggregators (Section 7.1)."""

from .aggregators import (
    AggregatorFactory, AggregatorState, DoubleSumAggregator,
    MomentsSketchAggregator, StreamingHistogramAggregator, registry,
)
from .engine import DruidEngine, QueryResult, Segment, top_n_by_quantile

__all__ = [
    "AggregatorFactory", "AggregatorState", "DoubleSumAggregator",
    "MomentsSketchAggregator", "StreamingHistogramAggregator", "registry",
    "DruidEngine", "QueryResult", "Segment", "top_n_by_quantile",
]
