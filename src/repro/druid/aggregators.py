"""Druid-style aggregator plug-ins (Section 7.1).

Druid extensions register *aggregator factories*; at ingestion each cube
cell gets an aggregator state fed with raw rows, and at query time the
broker merges states across matching cells and *finalizes* the result.
The paper integrates the moments sketch as exactly such a user-defined
aggregation and compares it against Druid's bundled approximate-histogram
aggregator (S-Hist) and a native ``doubleSum``.

States here wrap this repository's summaries so the simulated engine
exercises the same merge/estimate code paths as the microbenchmarks.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from ..core.errors import QueryError
from ..core.params import normalize_q
from ..summaries import MomentsSummary, StreamingHistogramSummary
from ..summaries.base import QuantileSummary


class AggregatorState(abc.ABC):
    """Mutable per-cell aggregation state."""

    @abc.abstractmethod
    def aggregate(self, values: np.ndarray) -> None: ...

    @abc.abstractmethod
    def merge(self, other: "AggregatorState") -> None: ...

    @abc.abstractmethod
    def finalize(self, **params) -> float: ...

    @abc.abstractmethod
    def copy(self) -> "AggregatorState": ...


class AggregatorFactory(abc.ABC):
    """Named factory, the unit Druid configuration refers to."""

    name: str

    @abc.abstractmethod
    def create(self) -> AggregatorState: ...


# ----------------------------------------------------------------------
# Native sum (the paper's best-case baseline in Figure 11)
# ----------------------------------------------------------------------

class SumState(AggregatorState):
    def __init__(self):
        self.total = 0.0

    def aggregate(self, values: np.ndarray) -> None:
        self.total += float(np.sum(values))

    def merge(self, other: "AggregatorState") -> None:
        if not isinstance(other, SumState):
            raise QueryError("cannot merge sum with non-sum state")
        self.total += other.total

    def finalize(self, **params) -> float:
        return self.total

    def copy(self) -> "SumState":
        out = SumState()
        out.total = self.total
        return out


class DoubleSumAggregator(AggregatorFactory):
    """Druid's native ``doubleSum``: a lower bound on query time."""

    name = "sum"

    def create(self) -> SumState:
        return SumState()


# ----------------------------------------------------------------------
# Quantile-summary aggregators
# ----------------------------------------------------------------------

class SummaryState(AggregatorState):
    """Aggregator state backed by any mergeable quantile summary."""

    def __init__(self, summary: QuantileSummary):
        self.summary = summary

    def aggregate(self, values: np.ndarray) -> None:
        self.summary.accumulate(values)

    def merge(self, other: "AggregatorState") -> None:
        if not isinstance(other, SummaryState):
            raise QueryError("cannot merge summary state with non-summary state")
        self.summary.merge(other.summary)

    def finalize(self, q: float | None = None, *, phi: float | None = None,
                 **params) -> float:
        """Finalization = quantile estimation (Druid "post-aggregation").

        ``q`` is the canonical quantile keyword; ``phi=`` keeps working
        at this public plug-in entry point but is deprecated
        (:func:`repro.core.params.normalize_q`).
        """
        return self.summary.quantile(normalize_q(q, phi, default=0.5))

    def copy(self) -> "SummaryState":
        return SummaryState(self.summary.copy())


class MomentsSketchAggregator(AggregatorFactory):
    """The paper's user-defined moments-sketch aggregation extension."""

    def __init__(self, k: int = 10):
        self.k = k
        self.name = f"momentsSketch@{k}"

    def create(self) -> SummaryState:
        return SummaryState(MomentsSummary(k=self.k))


class StreamingHistogramAggregator(AggregatorFactory):
    """Druid's bundled approximate histogram [12] ("S-Hist@bins")."""

    def __init__(self, max_bins: int = 100):
        self.max_bins = max_bins
        self.name = f"S-Hist@{max_bins}"

    def create(self) -> SummaryState:
        return SummaryState(StreamingHistogramSummary(max_bins=self.max_bins))


def registry(moment_orders: Iterable[int] = (10,),
             histogram_bins: Iterable[int] = (10, 100, 1000)) -> dict[str, AggregatorFactory]:
    """The Figure 11 aggregator lineup keyed by display name."""
    factories: dict[str, AggregatorFactory] = {"sum": DoubleSumAggregator()}
    for k in moment_orders:
        factory = MomentsSketchAggregator(k=k)
        factories[factory.name] = factory
    for bins in histogram_bins:
        factory = StreamingHistogramAggregator(max_bins=bins)
        factories[factory.name] = factory
    return factories
