"""Sliding-window threshold queries with turnstile semantics (Section 7.2.2)."""

from .sliding import (
    Pane, TurnstileWindowProcessor, WindowAlert, WindowQueryResult,
    build_panes, inject_spikes, remerge_windows,
)
from .streaming import MonitorState, StreamingWindowMonitor

__all__ = [
    "Pane", "TurnstileWindowProcessor", "WindowAlert", "WindowQueryResult",
    "build_panes", "inject_spikes", "remerge_windows",
    "MonitorState", "StreamingWindowMonitor",
]
