"""Sliding-window threshold queries with turnstile semantics (Section 7.2.2)."""

from .sliding import (
    Pane, TurnstileWindowProcessor, WindowAlert, WindowQueryResult,
    build_panes, inject_spikes, pack_panes, remerge_windows,
    remerge_windows_packed,
)
from .streaming import MonitorState, StreamingWindowMonitor

__all__ = [
    "Pane", "TurnstileWindowProcessor", "WindowAlert", "WindowQueryResult",
    "build_panes", "inject_spikes", "pack_panes", "remerge_windows",
    "remerge_windows_packed", "MonitorState", "StreamingWindowMonitor",
]
