"""Sliding-window threshold queries with turnstile semantics (Section 7.2.2).

The workload: data pre-aggregated into fixed-duration *panes* (the paper
uses 10 minutes); a query asks for every window of ``w`` consecutive panes
whose phi-quantile exceeds a threshold.

Two execution strategies, matching Figure 14:

* :class:`TurnstileWindowProcessor` — the moments sketch's power sums and
  counts subtract exactly, so sliding one pane costs one ``subtract`` plus
  one ``merge``.  The window's min/max are maintained from the per-pane
  extrema kept alongside each pane (min/max cannot be un-merged; the pane
  deque makes the recomputation exact).  The cascade then screens windows
  against the threshold.
* :func:`remerge_windows` — the strategy any non-subtractable summary is
  stuck with: re-merge all ``w`` panes at every slide (used for the
  Merge12 baseline bar).

Both strategies keep the pane ring as a
:class:`~repro.store.PackedSketchStore` (:func:`pack_panes`): the
turnstile processor builds its initial window with one vectorized
reduction, and :func:`remerge_windows_packed` turns every window
re-merge — the Merge12-style baseline cost — into a single
``batch_merge`` reduction instead of ``w`` Python-level merges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.cascade import ThresholdCascade
from ..core.params import normalize_q
from ..core.sketch import MomentsSketch
from ..core.solver import SolverConfig
from ..store import PackedSketchStore
from ..summaries.base import QuantileSummary
from ..summaries.moments_summary import MomentsSummary


@dataclass(frozen=True)
class Pane:
    """One pre-aggregated time pane: a sketch plus its exact extrema."""

    index: int
    sketch: MomentsSketch
    min: float
    max: float
    count: float


def build_panes(values: np.ndarray, pane_size: int, k: int = 10) -> list[Pane]:
    """Chunk a stream into panes of ``pane_size`` rows (time-ordered)."""
    values = np.asarray(values, dtype=float)
    panes = []
    for index, start in enumerate(range(0, values.size, pane_size)):
        chunk = values[start:start + pane_size]
        if chunk.size == 0:
            continue
        sketch = MomentsSketch.from_data(chunk, k=k)
        panes.append(Pane(index=index, sketch=sketch,
                          min=float(chunk.min()), max=float(chunk.max()),
                          count=float(chunk.size)))
    return panes


def pack_panes(panes: Sequence[Pane]) -> PackedSketchStore:
    """Pack pane sketches into one columnar store, row i = pane position i."""
    if not panes:
        raise ValueError("no panes to pack")
    first = panes[0].sketch
    store = PackedSketchStore(k=first.k, track_log=first.track_log,
                              capacity=len(panes))
    for pane in panes:
        store.append(pane.sketch)
    return store


@dataclass(frozen=True)
class WindowAlert:
    """A window whose quantile estimate exceeded the threshold."""

    start_pane: int
    end_pane: int
    stage: str


@dataclass(frozen=True)
class WindowQueryResult:
    alerts: list[WindowAlert]
    windows_checked: int
    merge_seconds: float
    estimation_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.merge_seconds + self.estimation_seconds


class TurnstileWindowProcessor:
    """Slides a moments-sketch window via subtract/merge (turnstile)."""

    def __init__(self, panes: Sequence[Pane], window_panes: int,
                 cascade_stages: tuple[str, ...] = ("simple", "markov", "rtt"),
                 config: SolverConfig | None = None):
        if window_panes < 1:
            raise ValueError("window must span at least one pane")
        if len(panes) < window_panes:
            raise ValueError("not enough panes for one window")
        self.panes = list(panes)
        self.window_panes = window_panes
        self.config = config or SolverConfig()
        self.cascade = ThresholdCascade(config=self.config,
                                        enabled_stages=cascade_stages)
        # Columnar pane ring: the initial window build (and any re-merge)
        # is one vectorized reduction instead of a merge loop.
        self.store = pack_panes(self.panes)

    def rebuild_window(self, position: int) -> MomentsSketch:
        """Re-merge the window starting at ``position`` in one reduction.

        Bit-for-bit identical to the sequential copy+merge fold over the
        same panes; useful to cancel subtract-induced float drift on very
        long streams and as the packed Merge12-style baseline step.
        """
        return self.store.batch_merge(
            np.arange(position, position + self.window_panes))

    def query(self, threshold: float, q: float | None = None, *,
              phi: float | None = None) -> WindowQueryResult:
        """Find all windows with ``quantile(q) > threshold``.

        The ``phi=`` keyword is deprecated in favor of ``q``.
        """
        q = normalize_q(q, phi, default=0.99)
        alerts: list[WindowAlert] = []
        w = self.window_panes
        merge_seconds = 0.0
        estimation_seconds = 0.0

        start = time.perf_counter()
        window = self.rebuild_window(0)
        merge_seconds += time.perf_counter() - start

        position = 0
        while True:
            in_window = self.panes[position:position + w]
            start = time.perf_counter()
            outcome = self.cascade.evaluate(window, threshold, q)
            estimation_seconds += time.perf_counter() - start
            if outcome.result:
                alerts.append(WindowAlert(start_pane=in_window[0].index,
                                          end_pane=in_window[-1].index,
                                          stage=outcome.stage))
            if position + w >= len(self.panes):
                break
            start = time.perf_counter()
            outgoing = self.panes[position]
            incoming = self.panes[position + w]
            surviving = self.panes[position + 1:position + w + 1]
            window.merge(incoming.sketch)
            window.subtract(outgoing.sketch,
                            new_min=min(p.min for p in surviving),
                            new_max=max(p.max for p in surviving))
            merge_seconds += time.perf_counter() - start
            position += 1
        return WindowQueryResult(alerts=alerts,
                                 windows_checked=len(self.panes) - w + 1,
                                 merge_seconds=merge_seconds,
                                 estimation_seconds=estimation_seconds)


def remerge_windows(pane_summaries: Sequence[QuantileSummary], window_panes: int,
                    threshold: float, q: float | None = None, *,
                    phi: float | None = None) -> WindowQueryResult:
    """Baseline for non-subtractable summaries: re-merge every window.

    The ``phi=`` keyword is deprecated in favor of ``q``.
    """
    q = normalize_q(q, phi, default=0.99)
    if len(pane_summaries) < window_panes:
        raise ValueError("not enough panes for one window")
    alerts: list[WindowAlert] = []
    merge_seconds = 0.0
    estimation_seconds = 0.0
    for position in range(len(pane_summaries) - window_panes + 1):
        start = time.perf_counter()
        window = pane_summaries[position].copy()
        for summary in pane_summaries[position + 1:position + window_panes]:
            window.merge(summary)
        merge_seconds += time.perf_counter() - start
        start = time.perf_counter()
        estimate = window.quantile(q)
        estimation_seconds += time.perf_counter() - start
        if estimate > threshold:
            alerts.append(WindowAlert(start_pane=position,
                                      end_pane=position + window_panes - 1,
                                      stage="estimate"))
    return WindowQueryResult(alerts=alerts,
                             windows_checked=len(pane_summaries) - window_panes + 1,
                             merge_seconds=merge_seconds,
                             estimation_seconds=estimation_seconds)


def remerge_windows_packed(panes: Sequence[Pane], window_panes: int,
                           threshold: float, q: float | None = None,
                           config: SolverConfig | None = None, *,
                           phi: float | None = None) -> WindowQueryResult:
    """Re-merge strategy over a packed pane ring: one reduction per window.

    The same plan as :func:`remerge_windows` (re-merge all ``w`` panes at
    every slide — what a non-subtractable summary is forced to do), but
    with the pane ring packed columnar so each window's merge is a single
    ``batch_merge`` reduction.  Alerts match the loop-based re-merge
    exactly: the merged sketches are bit-for-bit identical.

    The ``phi=`` keyword is deprecated in favor of ``q``.
    """
    q = normalize_q(q, phi, default=0.99)
    if window_panes < 1:
        raise ValueError("window must span at least one pane")
    if len(panes) < window_panes:
        raise ValueError("not enough panes for one window")
    config = config or SolverConfig()
    store = pack_panes(panes)
    alerts: list[WindowAlert] = []
    merge_seconds = 0.0
    estimation_seconds = 0.0
    for position in range(len(panes) - window_panes + 1):
        start = time.perf_counter()
        merged = store.batch_merge(
            np.arange(position, position + window_panes))
        merge_seconds += time.perf_counter() - start
        start = time.perf_counter()
        summary = MomentsSummary(k=merged.k, track_log=merged.track_log,
                                 config=config)
        summary.sketch = merged
        estimate = summary.quantile(q)
        estimation_seconds += time.perf_counter() - start
        if estimate > threshold:
            alerts.append(WindowAlert(
                start_pane=panes[position].index,
                end_pane=panes[position + window_panes - 1].index,
                stage="estimate"))
    return WindowQueryResult(alerts=alerts,
                             windows_checked=len(panes) - window_panes + 1,
                             merge_seconds=merge_seconds,
                             estimation_seconds=estimation_seconds)


def inject_spikes(values: np.ndarray, pane_size: int, spike_panes: Sequence[int],
                  spike_value: float, spike_fraction: float = 0.1,
                  seed: int = 0) -> np.ndarray:
    """Add hypothetical anomaly spikes to a stream (the Section 7.2.2 setup:
    each spike contributes ``spike_fraction`` more data at ``spike_value``
    across the given panes)."""
    rng = np.random.default_rng(seed)
    values = np.asarray(values, dtype=float).copy()
    for pane in spike_panes:
        start = pane * pane_size
        end = min(start + pane_size, values.size)
        if start >= values.size:
            continue
        count = max(int((end - start) * spike_fraction), 1)
        positions = rng.integers(start, end, size=count)
        values[positions] = spike_value
    return values
